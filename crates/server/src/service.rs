//! The request router and endpoint handlers — pure functions from a
//! parsed [`Request`] to a [`Response`], shared by every worker thread.
//!
//! See the crate docs for the endpoint table. All handlers speak the
//! serde DTOs of `abbd_core::session` ([`SessionRequest`] /
//! [`SessionReport`]) plus the thin wire envelopes defined here.

use crate::codec;
use crate::error::ApiError;
use crate::http::{Request, Response};
use crate::net::NetStats;
use crate::registry::{ModelInfo, ModelRegistry};
use crate::store::{ServedSession, SessionStore, StoreStats};
use abbd_core::fleet::VersionInfo;
use abbd_core::{
    Candidate, CompiledModel, DeductionPolicy, DiagnosisSession, HierarchicalSession, Observation,
    SessionRequest, StoppingPolicy,
};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Serving counters, all monotonic (reported by `GET /v1/stats`).
#[derive(Debug, Default)]
pub struct ServiceStats {
    /// HTTP requests routed (including errors).
    pub requests: AtomicU64,
    /// Stateful decision rounds served (`/v1/sessions/{id}/round`).
    pub rounds: AtomicU64,
    /// Stateless decision rounds served (`/v1/models/{name}/serve`).
    pub stateless_rounds: AtomicU64,
    /// Individual evidence sets diagnosed through the batch endpoint.
    pub batch_items: AtomicU64,
    /// Error responses (status ≥ 400) answered.
    pub errors: AtomicU64,
    /// Junction-tree compilations observed on worker threads — pinned at
    /// **zero** by the integration tests: serving must never compile.
    pub worker_compiles: AtomicU64,
}

/// Everything the handlers share: the frozen registry, the session
/// store, the counters and the batch fan-out width.
#[derive(Debug)]
pub struct ServiceState {
    /// Named compiled models (immutable after startup).
    pub registry: Arc<ModelRegistry>,
    /// Live sessions with TTL + LRU lifecycle.
    pub store: SessionStore,
    /// Serving counters.
    pub stats: ServiceStats,
    /// Connection-layer counters, maintained by the event loop.
    pub net: NetStats,
    /// Worker-pool width, which also caps batch fan-out.
    pub workers: usize,
    /// Server start time (feeds `uptime_secs` in `/v1/stats`).
    pub started: Instant,
}

/// `GET /healthz` body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthReport {
    /// Always `"ok"` when the listener answers.
    pub status: String,
    /// Registered models.
    pub models: usize,
    /// Live sessions (idle + busy).
    pub sessions: usize,
}

/// `GET /v1/models` body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelsReport {
    /// Registry rows, in name order.
    pub models: Vec<ModelInfo>,
}

/// `POST /v1/models/{name}/sessions` reply.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpenSessionReply {
    /// The id all `/v1/sessions/{id}/...` endpoints address.
    pub session_id: String,
    /// The registry name of the model the session serves off.
    pub model: String,
}

/// `DELETE /v1/sessions/{id}` reply.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CloseSessionReply {
    /// `true` when the id referred to a live session.
    pub closed: bool,
}

/// `POST /v1/models/{name}/diagnose_batch` body: N independent evidence
/// sets to diagnose (no ranking — the batch path is the
/// posterior-plus-deduction kernel fanned across the worker pool).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchRequest {
    /// One observation per device under diagnosis.
    pub observations: Vec<Observation>,
    /// Deduction-policy override applied to every item (compiled default
    /// when absent).
    #[serde(default)]
    pub deduction: Option<DeductionPolicy>,
}

/// One device's diagnosis in a batch reply.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchDiagnosis {
    /// Posterior state distributions for every model variable.
    pub posteriors: Vec<(String, Vec<f64>)>,
    /// `(latent, posterior fault mass)`, in name order.
    pub fault_mass: Vec<(String, f64)>,
    /// Ranked fail candidates.
    pub candidates: Vec<Candidate>,
    /// The top fail candidate, if any.
    pub top_candidate: Option<String>,
    /// `ln P(observation)` under the model.
    pub log_likelihood: f64,
}

/// One slot of a batch reply: exactly one of `ok`/`error` is set, so a
/// bad evidence set fails alone instead of poisoning the whole batch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchEntry {
    /// The diagnosis, when the item succeeded.
    #[serde(default)]
    pub ok: Option<BatchDiagnosis>,
    /// The per-item error, when it did not.
    #[serde(default)]
    pub error: Option<ApiError>,
}

/// `POST /v1/models/{name}/diagnose_batch` reply, item-aligned with the
/// request's `observations`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchReply {
    /// One entry per requested observation, same order.
    pub reports: Vec<BatchEntry>,
}

/// `GET /v1/models/{name}/versions` body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VersionsReport {
    /// The lifecycle's model name.
    pub model: String,
    /// The version new sessions currently open against.
    pub active_version: u32,
    /// Every retained version, oldest first.
    pub versions: Vec<VersionInfo>,
}

/// `POST /v1/models/{name}/activate` body: which retained version
/// becomes the default (rollback or roll-forward).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivateRequest {
    /// 1-based version number to activate.
    pub version: u32,
}

/// `POST /v1/models/{name}/activate` reply.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivateReply {
    /// The lifecycle's model name.
    pub model: String,
    /// The default version after the switch.
    pub active_version: u32,
}

/// One model's serving and lifecycle counters in `/v1/stats`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelStats {
    /// Registry name (hierarchies report under their board name, with
    /// children's rounds pooled in).
    pub name: String,
    /// The lifecycle's current default version; `null` for hierarchies,
    /// which are not lifecycle-managed.
    #[serde(default)]
    pub active_version: Option<u32>,
    /// Decision rounds served against this model (stored + stateless,
    /// all versions).
    pub rounds: u64,
    /// Completed traces folded into the model's learning aggregate.
    pub traces_aggregated: u64,
    /// Refit attempts (background or endpoint-triggered).
    pub refits_run: u64,
    /// Refit attempts the conformance gate rejected.
    pub refits_rejected: u64,
}

/// `GET /v1/stats` body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsReport {
    /// HTTP requests routed.
    pub requests: u64,
    /// Stateful decision rounds served.
    pub rounds: u64,
    /// Stateless decision rounds served.
    pub stateless_rounds: u64,
    /// Evidence sets diagnosed via the batch endpoint.
    pub batch_items: u64,
    /// Error responses answered.
    pub errors: u64,
    /// Junction-tree compilations on worker threads (must stay 0).
    pub worker_compiles: u64,
    /// Live sessions.
    pub sessions_live: usize,
    /// Sessions ever opened.
    pub sessions_opened: u64,
    /// Sessions reaped by TTL.
    pub sessions_expired: u64,
    /// Sessions evicted by LRU pressure.
    pub sessions_evicted: u64,
    /// Connections ever accepted.
    pub connections_accepted: u64,
    /// Currently open connections (gauge).
    pub connections_open: u64,
    /// Open connections with no request in flight right now (gauge).
    pub connections_idle: u64,
    /// Open connections with a request in flight right now (gauge).
    pub connections_active: u64,
    /// Requests waiting for a worker right now (gauge).
    pub queue_depth: u64,
    /// Requests answered `503` because the worker queue was full.
    pub queue_full_rejections: u64,
    /// Idle connections reaped by the per-connection timeout.
    pub idle_timeouts: u64,
    /// Compiled models resident: flat models, hierarchy roots, and
    /// lazily compiled hierarchy children (gauge).
    #[serde(default)]
    pub models_compiled: u64,
    /// Hierarchy sub-models compiled lazily since startup — bounded by
    /// the total block count, because each block compiles at most once
    /// (gauge).
    #[serde(default)]
    pub submodels_compiled_lazy: u64,
    /// Whole seconds since the server started.
    #[serde(default)]
    pub uptime_secs: u64,
    /// Completed traces folded into learning aggregates, summed over
    /// every lifecycle-managed model.
    #[serde(default)]
    pub traces_aggregated: u64,
    /// Refit attempts, summed over every lifecycle-managed model.
    #[serde(default)]
    pub refits_run: u64,
    /// Rejected refit attempts, summed over every lifecycle-managed
    /// model.
    #[serde(default)]
    pub refits_rejected: u64,
    /// Per-model round and lifecycle counters: lifecycle-managed flat
    /// models first (name order), then hierarchies (board name order).
    #[serde(default)]
    pub models: Vec<ModelStats>,
}

fn parse_json<T: Deserialize>(body: &[u8]) -> Result<T, ApiError> {
    let text = std::str::from_utf8(body).map_err(|_| ApiError::bad_request("body is not UTF-8"))?;
    serde_json::from_str(text)
        .map_err(|e| ApiError::bad_request(format!("body does not parse: {e}")))
}

fn json_response(status: u16, value: &impl Serialize) -> Response {
    match serde_json::to_string(value) {
        Ok(body) => Response::json(status, body),
        Err(e) => {
            ApiError::new(500, "internal", format!("response encoding failed: {e}")).into_response()
        }
    }
}

/// `true` when the request *body* is the compact binary codec
/// (`content-type: application/x-abbd-binary`, parameters ignored).
fn binary_body(request: &Request) -> bool {
    request.content_type.as_deref().is_some_and(|value| {
        let media = value.split(';').next().unwrap_or("").trim();
        media.eq_ignore_ascii_case(codec::CONTENT_TYPE)
    })
}

/// `true` when the client asked for a binary *reply* (`accept` lists the
/// codec's media type). Errors stay JSON regardless — a client that
/// cannot parse its own failure is debugging blind.
fn binary_reply(request: &Request) -> bool {
    request
        .accept
        .as_deref()
        .is_some_and(|value| value.to_ascii_lowercase().contains(codec::CONTENT_TYPE))
}

/// Decodes the request body in whichever format the headers declare.
fn parse_body<T: Deserialize>(request: &Request) -> Result<T, ApiError> {
    if binary_body(request) {
        codec::from_frame(&request.body)
            .map_err(|e| ApiError::bad_request(format!("body does not parse: {e}")))
    } else {
        parse_json(&request.body)
    }
}

/// Encodes a success reply in whichever format the request negotiated.
fn reply(request: &Request, status: u16, value: &impl Serialize) -> Response {
    if binary_reply(request) {
        Response::binary(status, codec::to_frame(value))
    } else {
        json_response(status, value)
    }
}

/// Routes one request. Never panics: every failure path is a structured
/// error response.
pub fn handle(state: &ServiceState, request: &Request) -> Response {
    state.stats.requests.fetch_add(1, Ordering::Relaxed);
    let response = route(state, request).unwrap_or_else(ApiError::into_response);
    if response.status >= 400 {
        state.stats.errors.fetch_add(1, Ordering::Relaxed);
    }
    response
}

fn route(state: &ServiceState, request: &Request) -> Result<Response, ApiError> {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    let method = request.method.as_str();
    match (method, segments.as_slice()) {
        ("GET", ["healthz"]) => Ok(reply(
            request,
            200,
            &HealthReport {
                status: "ok".to_string(),
                models: state.registry.len(),
                sessions: state.store.stats().live,
            },
        )),
        ("GET", ["v1", "models"]) => Ok(reply(
            request,
            200,
            &ModelsReport {
                models: state.registry.list(),
            },
        )),
        ("GET", ["v1", "stats"]) => Ok(reply(request, 200, &stats_report(state))),
        ("POST", ["v1", "models", name, "sessions"]) => open_session(state, name, request),
        ("POST", ["v1", "models", name, "serve"]) => serve_stateless(state, name, request),
        ("POST", ["v1", "models", name, "diagnose_batch"]) => diagnose_batch(state, name, request),
        ("POST", ["v1", "models", name, "refit"]) => refit_model(state, name, request),
        ("GET", ["v1", "models", name, "versions"]) => model_versions(state, name, request),
        ("POST", ["v1", "models", name, "activate"]) => activate_model(state, name, request),
        // Hierarchy children live under `{board}/{block}` — one extra
        // path segment on every model endpoint.
        ("POST", ["v1", "models", board, block, "sessions"]) => {
            open_session(state, &format!("{board}/{block}"), request)
        }
        ("POST", ["v1", "models", board, block, "serve"]) => {
            serve_stateless(state, &format!("{board}/{block}"), request)
        }
        ("POST", ["v1", "models", board, block, "diagnose_batch"]) => {
            diagnose_batch(state, &format!("{board}/{block}"), request)
        }
        ("POST", ["v1", "sessions", id, "round"]) => session_round(state, id, request),
        ("DELETE", ["v1", "sessions", id]) => Ok(reply(
            request,
            200,
            &CloseSessionReply {
                closed: state.store.close(id),
            },
        )),
        // A known path shape with the wrong verb is 405, not 404.
        (_, ["healthz"] | ["v1", "models"] | ["v1", "stats"])
        | (
            _,
            ["v1", "models", _, "sessions" | "serve" | "diagnose_batch" | "refit" | "versions" | "activate"],
        )
        | (_, ["v1", "models", _, _, "sessions" | "serve" | "diagnose_batch"])
        | (_, ["v1", "sessions", _, "round"] | ["v1", "sessions", _]) => {
            Err(ApiError::method_not_allowed(method, &request.path))
        }
        _ => Err(ApiError::not_found(&request.path)),
    }
}

fn stats_report(state: &ServiceState) -> StatsReport {
    let StoreStats {
        live,
        opened,
        expired,
        evicted,
    } = state.store.stats();
    let open = state.net.open.load(Ordering::Relaxed);
    let active = state.net.active.load(Ordering::Relaxed);
    let mut traces_aggregated = 0;
    let mut refits_run = 0;
    let mut refits_rejected = 0;
    let mut models: Vec<ModelStats> = state
        .registry
        .lifecycles()
        .map(|(name, lifecycle)| {
            traces_aggregated += lifecycle.traces_aggregated();
            refits_run += lifecycle.refits_run();
            refits_rejected += lifecycle.refits_rejected();
            ModelStats {
                name: name.to_string(),
                active_version: Some(lifecycle.active_version()),
                rounds: lifecycle.rounds(),
                traces_aggregated: lifecycle.traces_aggregated(),
                refits_run: lifecycle.refits_run(),
                refits_rejected: lifecycle.refits_rejected(),
            }
        })
        .collect();
    models.extend(
        state
            .registry
            .hierarchy_round_counts()
            .map(|(name, rounds)| ModelStats {
                name: name.to_string(),
                active_version: None,
                rounds,
                traces_aggregated: 0,
                refits_run: 0,
                refits_rejected: 0,
            }),
    );
    StatsReport {
        requests: state.stats.requests.load(Ordering::Relaxed),
        rounds: state.stats.rounds.load(Ordering::Relaxed),
        stateless_rounds: state.stats.stateless_rounds.load(Ordering::Relaxed),
        batch_items: state.stats.batch_items.load(Ordering::Relaxed),
        errors: state.stats.errors.load(Ordering::Relaxed),
        worker_compiles: state.stats.worker_compiles.load(Ordering::Relaxed),
        sessions_live: live,
        sessions_opened: opened,
        sessions_expired: expired,
        sessions_evicted: evicted,
        connections_accepted: state.net.accepted.load(Ordering::Relaxed),
        connections_open: open,
        connections_idle: open.saturating_sub(active),
        connections_active: active,
        queue_depth: state.net.queue_depth.load(Ordering::Relaxed),
        queue_full_rejections: state.net.queue_full_rejections.load(Ordering::Relaxed),
        idle_timeouts: state.net.idle_timeouts.load(Ordering::Relaxed),
        models_compiled: state.registry.compiled_models(),
        submodels_compiled_lazy: state.registry.lazy_submodel_compiles(),
        uptime_secs: state.started.elapsed().as_secs(),
        traces_aggregated,
        refits_run,
        refits_rejected,
        models,
    }
}

/// Resolves `name` to its model lifecycle, turning hierarchy names into
/// a `422` — boards re-learn through their flat source model, not
/// through the compiled abstraction.
fn lifecycle_of<'a>(
    state: &'a ServiceState,
    name: &str,
) -> Result<&'a Arc<abbd_core::fleet::ModelLifecycle>, ApiError> {
    if state.registry.hierarchy(name).is_some() {
        return Err(ApiError::new(
            422,
            "invalid_request",
            format!(
                "model `{name}` is a compiled hierarchy; lifecycle endpoints address flat models"
            ),
        ));
    }
    state.registry.lifecycle(name)
}

fn refit_model(state: &ServiceState, name: &str, request: &Request) -> Result<Response, ApiError> {
    let lifecycle = Arc::clone(lifecycle_of(state, name)?);
    // EM and junction-tree compilation run on a dedicated thread, never
    // inline on the worker: the worker loop samples its *thread-local*
    // compile counter around every request, and a refit must not show up
    // there — the zero-compile serving invariant holds even while models
    // re-learn.
    let report = std::thread::scope(|scope| {
        scope
            .spawn(|| lifecycle.refit())
            .join()
            .map_err(|_| ApiError::new(500, "internal", "refit thread panicked"))
    })?;
    Ok(reply(request, 200, &report))
}

fn model_versions(
    state: &ServiceState,
    name: &str,
    request: &Request,
) -> Result<Response, ApiError> {
    let lifecycle = lifecycle_of(state, name)?;
    Ok(reply(
        request,
        200,
        &VersionsReport {
            model: lifecycle.name().to_string(),
            active_version: lifecycle.active_version(),
            versions: lifecycle.versions(),
        },
    ))
}

fn activate_model(
    state: &ServiceState,
    name: &str,
    request: &Request,
) -> Result<Response, ApiError> {
    let body: ActivateRequest = parse_body(request)?;
    let lifecycle = lifecycle_of(state, name)?;
    lifecycle
        .activate(body.version)
        .map_err(|e| ApiError::new(422, "invalid_request", e.to_string()))?;
    Ok(reply(
        request,
        200,
        &ActivateReply {
            model: lifecycle.name().to_string(),
            active_version: lifecycle.active_version(),
        },
    ))
}

// The open body is intentionally empty (send nothing or `{}`): every
// piece of round configuration — stopping policy, strategy, costs, the
// deduction-policy override — travels in each `SessionRequest`, exactly
// as it does on the stateless endpoint. That symmetry is what keeps a
// stored round byte-identical to `CompiledModel::serve`; open-time knobs
// would be silently superseded by the first round and are refused a
// place in the protocol rather than left as a trap.
fn open_session(state: &ServiceState, name: &str, request: &Request) -> Result<Response, ApiError> {
    // A board name opens a *hierarchical* session — the store round then
    // threads descent through: once a block's fault mass crosses the
    // tree's threshold, subsequent rounds answer from the block
    // sub-model. Flat models (and explicit `{board}/{block}` children)
    // get an ordinary session.
    let session: ServedSession = if let Some(hierarchy) = state.registry.hierarchy(name) {
        HierarchicalSession::new(Arc::clone(hierarchy), StoppingPolicy::default())
            .map_err(|e| ApiError::from_core(&e))?
            .into()
    } else {
        let compiled = state.registry.resolve(name)?;
        DiagnosisSession::new(compiled, StoppingPolicy::default())
            .map_err(|e| ApiError::from_core(&e))?
            .into()
    };
    let session_id = state.store.open(name, session)?;
    Ok(reply(
        request,
        201,
        &OpenSessionReply {
            session_id,
            model: name.to_string(),
        },
    ))
}

fn serve_stateless(
    state: &ServiceState,
    name: &str,
    request: &Request,
) -> Result<Response, ApiError> {
    let compiled = state.registry.resolve(name)?;
    let round: SessionRequest = parse_body(request)?;
    let report = compiled
        .serve(&round)
        .map_err(|e| ApiError::from_core(&e))?;
    state.stats.stateless_rounds.fetch_add(1, Ordering::Relaxed);
    state.registry.note_round(name);
    if let Ok(lifecycle) = state.registry.lifecycle(name) {
        // A stateless round is its own whole session: the observation is
        // a complete trace when the round reaches a stop, and a
        // cost-sample source either way.
        if report.stop.is_some() {
            lifecycle
                .aggregator()
                .record(&round.observation, &round.timings);
        } else {
            lifecycle.aggregator().record_timings(&round.timings);
        }
    }
    Ok(reply(request, 200, &report))
}

fn session_round(state: &ServiceState, id: &str, request: &Request) -> Result<Response, ApiError> {
    // Parse before checkout so malformed bodies never toggle the busy
    // marker.
    let round_request: SessionRequest = parse_body(request)?;
    let mut stored = state.store.checkout(id)?;
    // `serve_round` rolls the session back on any failure, so checking
    // it back in after an error hands the client a clean retry; a panic
    // in the kernels instead aborts the session outright — a possibly
    // half-mutated session must not serve again, and the busy marker
    // must not wedge the slot forever.
    let round = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        stored.session.serve_round(&round_request)
    }));
    match round {
        Ok(result) => {
            let result = result.map_err(|e| ApiError::from_core(&e));
            if let Ok(report) = &result {
                stored.rounds += 1;
                state.stats.rounds.fetch_add(1, Ordering::Relaxed);
                state.registry.note_round(&stored.model);
                if let Ok(lifecycle) = state.registry.lifecycle(&stored.model) {
                    // Fold the session's cumulative observation into the
                    // model's learning aggregate exactly once, on the
                    // first terminal round; non-terminal rounds only
                    // contribute their measurement timings (an empty-
                    // slice no-op on the common hot path).
                    if report.stop.is_some() && !stored.trace_recorded {
                        stored.trace_recorded = lifecycle
                            .aggregator()
                            .record(stored.session.observation(), &round_request.timings);
                    } else {
                        lifecycle
                            .aggregator()
                            .record_timings(&round_request.timings);
                    }
                }
            }
            state.store.checkin(id, stored);
            Ok(reply(request, 200, &result?))
        }
        Err(_) => {
            drop(stored);
            state.store.abort(id);
            Err(ApiError::new(
                500,
                "internal",
                format!("panic during round; session `{id}` was discarded"),
            ))
        }
    }
}

fn diagnose_batch(
    state: &ServiceState,
    name: &str,
    request: &Request,
) -> Result<Response, ApiError> {
    let compiled = state.registry.resolve(name)?;
    let batch = if binary_body(request) {
        parse_batch_binary(&request.body)?
    } else {
        parse_json(&request.body)?
    };
    let policy = match batch.deduction {
        Some(p) => {
            p.validate().map_err(|e| ApiError::from_core(&e))?;
            p
        }
        None => *compiled.policy(),
    };
    let reports = fan_out(
        &compiled,
        &batch.observations,
        &policy,
        state.workers,
        &state.stats.worker_compiles,
    );
    state
        .stats
        .batch_items
        .fetch_add(batch.observations.len() as u64, Ordering::Relaxed);
    if let Ok(lifecycle) = state.registry.lifecycle(name) {
        // Each successfully diagnosed batch row is one complete device
        // datalog — exactly the learning shape the paper fits from.
        for (observation, entry) in batch.observations.iter().zip(&reports) {
            if entry.ok.is_some() {
                lifecycle.aggregator().record(observation, &[]);
            }
        }
    }
    if binary_reply(request) {
        // Row-oriented streaming reply: one frame per entry, in input
        // order, concatenated — a client can decode (and act on) each
        // device's diagnosis as it arrives.
        let mut body = Vec::new();
        for entry in &reports {
            codec::frame_into(entry, &mut body);
        }
        Ok(Response::binary(200, body))
    } else {
        Ok(json_response(200, &BatchReply { reports }))
    }
}

/// Header frame of a binary (streaming) batch request: the batch-wide
/// knobs, followed on the wire by one [`Observation`] frame per row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct BatchHeader {
    /// Deduction-policy override applied to every row.
    #[serde(default)]
    deduction: Option<DeductionPolicy>,
}

/// Decodes a binary `diagnose_batch` body: one header frame, then one
/// observation frame per row. Rows decode frame by frame — no giant
/// intermediate array value.
fn parse_batch_binary(body: &[u8]) -> Result<BatchRequest, ApiError> {
    let mut pos = 0;
    let header: BatchHeader = codec::decode_frame(body, &mut pos)
        .map_err(|e| ApiError::bad_request(format!("batch header does not parse: {e}")))?;
    let mut observations = Vec::new();
    while pos < body.len() {
        let observation: Observation = codec::decode_frame(body, &mut pos).map_err(|e| {
            ApiError::bad_request(format!(
                "batch row {} does not parse: {e}",
                observations.len()
            ))
        })?;
        observations.push(observation);
    }
    Ok(BatchRequest {
        observations,
        deduction: header.deduction,
    })
}

/// Fans `observations` across up to `workers` scoped threads, one
/// preallocated propagation workspace per thread (the same
/// one-workspace-per-worker shape as
/// [`abbd_core::DiagnosticEngine::diagnose_batch`]), and stitches the
/// per-item results back in request order. Each scoped thread reports
/// its (thread-local) junction-tree compile delta into `compiles` —
/// the counter is per-thread, so the connection worker's own sampling
/// cannot see what happens here.
///
/// Identical rows are identical work: ATE fan-outs routinely carry many
/// devices whose discretised signatures coincide (the observation
/// alphabet is small), so rows are first grouped by their exact
/// encoding and each distinct evidence vector is diagnosed **once**;
/// the entry is then replicated per duplicate row. Duplicates share
/// the same bytes they would have computed independently — same input,
/// same kernel, same output — so the reply is indistinguishable from
/// the row-by-row run, at the cost of one diagnosis per *distinct*
/// signature instead of one per device.
fn fan_out(
    compiled: &Arc<CompiledModel>,
    observations: &[Observation],
    policy: &DeductionPolicy,
    workers: usize,
    compiles: &AtomicU64,
) -> Vec<BatchEntry> {
    if observations.is_empty() {
        return Vec::new();
    }
    // Group by the canonical JSON rendering — unambiguous, and
    // conservative: rows listing the same pairs in a different order
    // stay separate, so a grouped row replays the exact compute path
    // its own encoding would have taken.
    let mut slot_of_key: HashMap<String, usize> = HashMap::new();
    let mut unique: Vec<&Observation> = Vec::new();
    let mut slot_of_row: Vec<usize> = Vec::with_capacity(observations.len());
    for observation in observations {
        let key = serde_json::to_string(observation).expect("observation encodes");
        let next = unique.len();
        let slot = *slot_of_key.entry(key).or_insert(next);
        if slot == next {
            unique.push(observation);
        }
        slot_of_row.push(slot);
    }
    let threads = workers.clamp(1, unique.len());
    let chunk_len = unique.len().div_ceil(threads);
    let mut entries = Vec::with_capacity(unique.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = unique
            .chunks(chunk_len)
            .map(|chunk| {
                scope.spawn(move || {
                    let before = abbd_bbn::jointree_compile_count();
                    let mut ws = compiled.make_workspace();
                    let entries = chunk
                        .iter()
                        .map(|obs| diagnose_one(compiled, &mut ws, obs, policy))
                        .collect::<Vec<_>>();
                    let delta = abbd_bbn::jointree_compile_count() - before;
                    if delta > 0 {
                        compiles.fetch_add(delta, Ordering::Relaxed);
                    }
                    entries
                })
            })
            .collect();
        for handle in handles {
            entries.extend(handle.join().expect("batch worker never panics"));
        }
    });
    slot_of_row
        .into_iter()
        .map(|slot| entries[slot].clone())
        .collect()
}

fn diagnose_one(
    compiled: &CompiledModel,
    ws: &mut abbd_bbn::PropagationWorkspace,
    observation: &Observation,
    policy: &DeductionPolicy,
) -> BatchEntry {
    let diagnosed = compiled
        .evidence_from(observation)
        .and_then(|evidence| compiled.diagnose_with_policy_in(ws, observation, &evidence, policy));
    match diagnosed {
        Ok(diagnosis) => BatchEntry {
            ok: Some(BatchDiagnosis {
                posteriors: diagnosis.posteriors().to_vec(),
                fault_mass: diagnosis
                    .fault_mass()
                    .iter()
                    .map(|(n, &m)| (n.clone(), m))
                    .collect(),
                candidates: diagnosis.candidates().to_vec(),
                top_candidate: diagnosis.top_candidate().map(str::to_string),
                log_likelihood: diagnosis.log_likelihood(),
            }),
            error: None,
        },
        Err(e) => BatchEntry {
            ok: None,
            error: Some(ApiError::from_core(&e)),
        },
    }
}
