//! The request router and endpoint handlers — pure functions from a
//! parsed [`Request`] to a [`Response`], shared by every worker thread.
//!
//! See the crate docs for the endpoint table. All handlers speak the
//! serde DTOs of `abbd_core::session` ([`SessionRequest`] /
//! [`SessionReport`]) plus the thin wire envelopes defined here.

use crate::error::ApiError;
use crate::http::{Request, Response};
use crate::registry::{ModelInfo, ModelRegistry};
use crate::store::{SessionStore, StoreStats};
use abbd_core::{
    Candidate, CompiledModel, DeductionPolicy, DiagnosisSession, Observation, SessionRequest,
    StoppingPolicy,
};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Serving counters, all monotonic (reported by `GET /v1/stats`).
#[derive(Debug, Default)]
pub struct ServiceStats {
    /// HTTP requests routed (including errors).
    pub requests: AtomicU64,
    /// Stateful decision rounds served (`/v1/sessions/{id}/round`).
    pub rounds: AtomicU64,
    /// Stateless decision rounds served (`/v1/models/{name}/serve`).
    pub stateless_rounds: AtomicU64,
    /// Individual evidence sets diagnosed through the batch endpoint.
    pub batch_items: AtomicU64,
    /// Error responses (status ≥ 400) answered.
    pub errors: AtomicU64,
    /// Junction-tree compilations observed on worker threads — pinned at
    /// **zero** by the integration tests: serving must never compile.
    pub worker_compiles: AtomicU64,
}

/// Everything the handlers share: the frozen registry, the session
/// store, the counters and the batch fan-out width.
#[derive(Debug)]
pub struct ServiceState {
    /// Named compiled models (immutable after startup).
    pub registry: Arc<ModelRegistry>,
    /// Live sessions with TTL + LRU lifecycle.
    pub store: SessionStore,
    /// Serving counters.
    pub stats: ServiceStats,
    /// Worker-pool width, which also caps batch fan-out.
    pub workers: usize,
}

/// `GET /healthz` body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthReport {
    /// Always `"ok"` when the listener answers.
    pub status: String,
    /// Registered models.
    pub models: usize,
    /// Live sessions (idle + busy).
    pub sessions: usize,
}

/// `GET /v1/models` body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelsReport {
    /// Registry rows, in name order.
    pub models: Vec<ModelInfo>,
}

/// `POST /v1/models/{name}/sessions` reply.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpenSessionReply {
    /// The id all `/v1/sessions/{id}/...` endpoints address.
    pub session_id: String,
    /// The registry name of the model the session serves off.
    pub model: String,
}

/// `DELETE /v1/sessions/{id}` reply.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CloseSessionReply {
    /// `true` when the id referred to a live session.
    pub closed: bool,
}

/// `POST /v1/models/{name}/diagnose_batch` body: N independent evidence
/// sets to diagnose (no ranking — the batch path is the
/// posterior-plus-deduction kernel fanned across the worker pool).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchRequest {
    /// One observation per device under diagnosis.
    pub observations: Vec<Observation>,
    /// Deduction-policy override applied to every item (compiled default
    /// when absent).
    #[serde(default)]
    pub deduction: Option<DeductionPolicy>,
}

/// One device's diagnosis in a batch reply.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchDiagnosis {
    /// Posterior state distributions for every model variable.
    pub posteriors: Vec<(String, Vec<f64>)>,
    /// `(latent, posterior fault mass)`, in name order.
    pub fault_mass: Vec<(String, f64)>,
    /// Ranked fail candidates.
    pub candidates: Vec<Candidate>,
    /// The top fail candidate, if any.
    pub top_candidate: Option<String>,
    /// `ln P(observation)` under the model.
    pub log_likelihood: f64,
}

/// One slot of a batch reply: exactly one of `ok`/`error` is set, so a
/// bad evidence set fails alone instead of poisoning the whole batch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchEntry {
    /// The diagnosis, when the item succeeded.
    #[serde(default)]
    pub ok: Option<BatchDiagnosis>,
    /// The per-item error, when it did not.
    #[serde(default)]
    pub error: Option<ApiError>,
}

/// `POST /v1/models/{name}/diagnose_batch` reply, item-aligned with the
/// request's `observations`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchReply {
    /// One entry per requested observation, same order.
    pub reports: Vec<BatchEntry>,
}

/// `GET /v1/stats` body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsReport {
    /// HTTP requests routed.
    pub requests: u64,
    /// Stateful decision rounds served.
    pub rounds: u64,
    /// Stateless decision rounds served.
    pub stateless_rounds: u64,
    /// Evidence sets diagnosed via the batch endpoint.
    pub batch_items: u64,
    /// Error responses answered.
    pub errors: u64,
    /// Junction-tree compilations on worker threads (must stay 0).
    pub worker_compiles: u64,
    /// Live sessions.
    pub sessions_live: usize,
    /// Sessions ever opened.
    pub sessions_opened: u64,
    /// Sessions reaped by TTL.
    pub sessions_expired: u64,
    /// Sessions evicted by LRU pressure.
    pub sessions_evicted: u64,
}

fn parse_json<T: Deserialize>(body: &[u8]) -> Result<T, ApiError> {
    let text = std::str::from_utf8(body).map_err(|_| ApiError::bad_request("body is not UTF-8"))?;
    serde_json::from_str(text)
        .map_err(|e| ApiError::bad_request(format!("body does not parse: {e}")))
}

fn json_response(status: u16, value: &impl Serialize) -> Response {
    match serde_json::to_string(value) {
        Ok(body) => Response::json(status, body),
        Err(e) => {
            ApiError::new(500, "internal", format!("response encoding failed: {e}")).into_response()
        }
    }
}

/// Routes one request. Never panics: every failure path is a structured
/// error response.
pub fn handle(state: &ServiceState, request: &Request) -> Response {
    state.stats.requests.fetch_add(1, Ordering::Relaxed);
    let response = route(state, request).unwrap_or_else(ApiError::into_response);
    if response.status >= 400 {
        state.stats.errors.fetch_add(1, Ordering::Relaxed);
    }
    response
}

fn route(state: &ServiceState, request: &Request) -> Result<Response, ApiError> {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    let method = request.method.as_str();
    match (method, segments.as_slice()) {
        ("GET", ["healthz"]) => Ok(json_response(
            200,
            &HealthReport {
                status: "ok".to_string(),
                models: state.registry.len(),
                sessions: state.store.stats().live,
            },
        )),
        ("GET", ["v1", "models"]) => Ok(json_response(
            200,
            &ModelsReport {
                models: state.registry.list(),
            },
        )),
        ("GET", ["v1", "stats"]) => Ok(json_response(200, &stats_report(state))),
        ("POST", ["v1", "models", name, "sessions"]) => open_session(state, name, &request.body),
        ("POST", ["v1", "models", name, "serve"]) => serve_stateless(state, name, &request.body),
        ("POST", ["v1", "models", name, "diagnose_batch"]) => {
            diagnose_batch(state, name, &request.body)
        }
        ("POST", ["v1", "sessions", id, "round"]) => session_round(state, id, &request.body),
        ("DELETE", ["v1", "sessions", id]) => Ok(json_response(
            200,
            &CloseSessionReply {
                closed: state.store.close(id),
            },
        )),
        // A known path shape with the wrong verb is 405, not 404.
        (_, ["healthz"] | ["v1", "models"] | ["v1", "stats"])
        | (_, ["v1", "models", _, "sessions" | "serve" | "diagnose_batch"])
        | (_, ["v1", "sessions", _, "round"] | ["v1", "sessions", _]) => {
            Err(ApiError::method_not_allowed(method, &request.path))
        }
        _ => Err(ApiError::not_found(&request.path)),
    }
}

fn stats_report(state: &ServiceState) -> StatsReport {
    let StoreStats {
        live,
        opened,
        expired,
        evicted,
    } = state.store.stats();
    StatsReport {
        requests: state.stats.requests.load(Ordering::Relaxed),
        rounds: state.stats.rounds.load(Ordering::Relaxed),
        stateless_rounds: state.stats.stateless_rounds.load(Ordering::Relaxed),
        batch_items: state.stats.batch_items.load(Ordering::Relaxed),
        errors: state.stats.errors.load(Ordering::Relaxed),
        worker_compiles: state.stats.worker_compiles.load(Ordering::Relaxed),
        sessions_live: live,
        sessions_opened: opened,
        sessions_expired: expired,
        sessions_evicted: evicted,
    }
}

// The open body is intentionally empty (send nothing or `{}`): every
// piece of round configuration — stopping policy, strategy, costs, the
// deduction-policy override — travels in each `SessionRequest`, exactly
// as it does on the stateless endpoint. That symmetry is what keeps a
// stored round byte-identical to `CompiledModel::serve`; open-time knobs
// would be silently superseded by the first round and are refused a
// place in the protocol rather than left as a trap.
fn open_session(state: &ServiceState, name: &str, _body: &[u8]) -> Result<Response, ApiError> {
    let compiled = state.registry.get(name)?;
    let session = DiagnosisSession::new(Arc::clone(compiled), StoppingPolicy::default())
        .map_err(|e| ApiError::from_core(&e))?;
    let session_id = state.store.open(name, session)?;
    Ok(json_response(
        201,
        &OpenSessionReply {
            session_id,
            model: name.to_string(),
        },
    ))
}

fn serve_stateless(state: &ServiceState, name: &str, body: &[u8]) -> Result<Response, ApiError> {
    let compiled = state.registry.get(name)?;
    let request: SessionRequest = parse_json(body)?;
    let report = compiled
        .serve(&request)
        .map_err(|e| ApiError::from_core(&e))?;
    state.stats.stateless_rounds.fetch_add(1, Ordering::Relaxed);
    Ok(json_response(200, &report))
}

fn session_round(state: &ServiceState, id: &str, body: &[u8]) -> Result<Response, ApiError> {
    // Parse before checkout so malformed bodies never toggle the busy
    // marker.
    let request: SessionRequest = parse_json(body)?;
    let mut stored = state.store.checkout(id)?;
    // `serve_round` rolls the session back on any failure, so checking
    // it back in after an error hands the client a clean retry; a panic
    // in the kernels instead aborts the session outright — a possibly
    // half-mutated session must not serve again, and the busy marker
    // must not wedge the slot forever.
    let round = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        stored.session.serve_round(&request)
    }));
    match round {
        Ok(result) => {
            let result = result.map_err(|e| ApiError::from_core(&e));
            if result.is_ok() {
                stored.rounds += 1;
                state.stats.rounds.fetch_add(1, Ordering::Relaxed);
            }
            state.store.checkin(id, stored);
            Ok(json_response(200, &result?))
        }
        Err(_) => {
            drop(stored);
            state.store.abort(id);
            Err(ApiError::new(
                500,
                "internal",
                format!("panic during round; session `{id}` was discarded"),
            ))
        }
    }
}

fn diagnose_batch(state: &ServiceState, name: &str, body: &[u8]) -> Result<Response, ApiError> {
    let compiled = state.registry.get(name)?;
    let batch: BatchRequest = parse_json(body)?;
    let policy = match batch.deduction {
        Some(p) => {
            p.validate().map_err(|e| ApiError::from_core(&e))?;
            p
        }
        None => *compiled.policy(),
    };
    let reports = fan_out(
        compiled,
        &batch.observations,
        &policy,
        state.workers,
        &state.stats.worker_compiles,
    );
    state
        .stats
        .batch_items
        .fetch_add(batch.observations.len() as u64, Ordering::Relaxed);
    Ok(json_response(200, &BatchReply { reports }))
}

/// Fans `observations` across up to `workers` scoped threads, one
/// preallocated propagation workspace per thread (the same
/// one-workspace-per-worker shape as
/// [`abbd_core::DiagnosticEngine::diagnose_batch`]), and stitches the
/// per-item results back in request order. Each scoped thread reports
/// its (thread-local) junction-tree compile delta into `compiles` —
/// the counter is per-thread, so the connection worker's own sampling
/// cannot see what happens here.
fn fan_out(
    compiled: &Arc<CompiledModel>,
    observations: &[Observation],
    policy: &DeductionPolicy,
    workers: usize,
    compiles: &AtomicU64,
) -> Vec<BatchEntry> {
    if observations.is_empty() {
        return Vec::new();
    }
    let threads = workers.clamp(1, observations.len());
    let chunk_len = observations.len().div_ceil(threads);
    let mut reports = Vec::with_capacity(observations.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = observations
            .chunks(chunk_len)
            .map(|chunk| {
                scope.spawn(move || {
                    let before = abbd_bbn::jointree_compile_count();
                    let mut ws = compiled.make_workspace();
                    let entries = chunk
                        .iter()
                        .map(|obs| diagnose_one(compiled, &mut ws, obs, policy))
                        .collect::<Vec<_>>();
                    let delta = abbd_bbn::jointree_compile_count() - before;
                    if delta > 0 {
                        compiles.fetch_add(delta, Ordering::Relaxed);
                    }
                    entries
                })
            })
            .collect();
        for handle in handles {
            reports.extend(handle.join().expect("batch worker never panics"));
        }
    });
    reports
}

fn diagnose_one(
    compiled: &CompiledModel,
    ws: &mut abbd_bbn::PropagationWorkspace,
    observation: &Observation,
    policy: &DeductionPolicy,
) -> BatchEntry {
    let diagnosed = compiled
        .evidence_from(observation)
        .and_then(|evidence| compiled.diagnose_with_policy_in(ws, observation, &evidence, policy));
    match diagnosed {
        Ok(diagnosis) => BatchEntry {
            ok: Some(BatchDiagnosis {
                posteriors: diagnosis.posteriors().to_vec(),
                fault_mass: diagnosis
                    .fault_mass()
                    .iter()
                    .map(|(n, &m)| (n.clone(), m))
                    .collect(),
                candidates: diagnosis.candidates().to_vec(),
                top_candidate: diagnosis.top_candidate().map(str::to_string),
                log_likelihood: diagnosis.log_likelihood(),
            }),
            error: None,
        },
        Err(e) => BatchEntry {
            ok: None,
            error: Some(ApiError::from_core(&e)),
        },
    }
}
