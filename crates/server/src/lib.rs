//! # abbd-server — the diagnosis service
//!
//! A multi-threaded HTTP/1.1 diagnosis server over the unified session
//! API of `abbd_core::session`: one process hosts a [`ModelRegistry`] of
//! named, compile-once [`abbd_core::CompiledModel`]s, a [`SessionStore`]
//! of live per-device [`abbd_core::DiagnosisSession`]s (TTL + LRU), and
//! a readiness-driven connection layer (`net`, epoll-based) feeding a
//! fixed pool of diagnosis workers. The build environment is offline, so
//! the HTTP layer is a small, strict in-tree implementation ([`http`])
//! in the spirit of the workspace's `shims/` — no tokio, no hyper.
//!
//! One event-loop thread owns every socket: it accepts, reads, parses
//! and writes without blocking, and hands only *complete* requests to
//! the workers through a bounded queue. An idle keep-alive connection
//! therefore costs a socket and a few buffers — not a worker thread —
//! so a 4-worker server holds thousands of idle connections (the
//! `scaling` integration test drives hundreds concurrently; `abbd-
//! loadgen --idle-soak` holds 1000+). When the queue is full the event
//! loop answers `503` with a `retry-after` header itself: overload is
//! explicit backpressure, never unbounded memory.
//!
//! Serving never compiles: every junction tree is triangulated at
//! registration time, worker threads propagate through shared compiled
//! schedules, and `/v1/stats` exposes the worker-side compile counter so
//! the integration suite can pin it at zero. The one deliberate
//! exception is hierarchy children ([`ModelRegistry::insert_hierarchy`]):
//! a board registered as a compiled [`abbd_core::HierarchicalModel`]
//! serves its abstract root under the board name and each block
//! sub-model under `{board}/{block}`, compiled lazily on first use —
//! at most once per block, counted by the
//! `submodels_compiled_lazy` gauge in `/v1/stats` (and `models_compiled`
//! tracks every resident compiled artifact). A stored session opened on
//! a board name is *hierarchical*: its rounds serve from the abstract
//! root until some block's posterior fault mass crosses the tree's
//! descend threshold, then descend into the block sub-model server-side
//! and keep answering from there, lifting the session's accumulated
//! board evidence down. `GET /v1/models` lists the parent/child
//! relationships (`parent`, `children` fields).
//!
//! ## Model lifecycle
//!
//! Every flat registry entry is a versioned [`ModelLifecycle`] (see
//! [`abbd_core::fleet`]), which closes the paper's learning loop at
//! serving time. Completed traces feed the model's
//! [`abbd_core::fleet::TraceAggregator`]: a stored session's cumulative
//! observation is folded in once, on its first terminal round; a
//! stateless round that reaches a stop contributes itself; every
//! successfully diagnosed `diagnose_batch` row counts as one device
//! datalog. Per-measurement wall costs ride along in
//! [`SessionRequest`]'s optional `timings` field (`[variable, seconds]`
//! pairs) and become learned [`abbd_core::CostModel`] prices.
//!
//! A refit — triggered by `POST /v1/models/{name}/refit`, or by the
//! background refitter when [`ServerConfig::refit_interval`] is set and
//! enough rows accumulated — snapshots the aggregate, re-fits the CPTs
//! with the incumbent's parameters as prior, and runs the candidate
//! through the conformance gate (reference-scenario replay + recent-
//! trace holdout scoring). Promotion appends `name@vN` and atomically
//! repoints the bare name; in-flight sessions finish on the compile
//! they opened with, and `POST …/activate` rolls the default back to
//! any retained version. A bare model name always serves the active
//! version; `name@vN` pins one explicitly (sessions, serve, batch).
//! Rejections are structured ([`GateRejection`] inside the
//! [`RefitReport`]), and `/v1/stats` carries the loop's counters:
//! `traces_aggregated`, `refits_run`, `refits_rejected`, per-model
//! rounds and active versions. Refit compiles run on dedicated
//! threads, so the `worker_compiles` invariant (zero) survives the
//! whole loop.
//!
//! ## Endpoints
//!
//! | method & path | body → reply | semantics |
//! |---------------|--------------|-----------|
//! | `GET /healthz` | — → [`HealthReport`] | liveness plus model/session counts |
//! | `GET /v1/models` | — → [`ModelsReport`] | the registry rows |
//! | `GET /v1/stats` | — → [`StatsReport`] | serving + connection-layer counters |
//! | `POST /v1/models/{name}/sessions` | — → [`OpenSessionReply`] | open a stored session (`201`; body ignored — configuration travels per round) |
//! | `POST /v1/models/{name}/serve` | [`SessionRequest`] → [`SessionReport`] | one **stateless** decision round (fresh session per call) |
//! | `POST /v1/models/{name}/diagnose_batch` | [`BatchRequest`] → [`BatchReply`] | fan N evidence sets across the worker pool (diagnosis only) |
//! | `POST /v1/sessions/{id}/round` | [`SessionRequest`] → [`SessionReport`] | one **stateful** decision round on the stored session |
//! | `DELETE /v1/sessions/{id}` | — → [`CloseSessionReply`] | close a stored session |
//! | `POST /v1/models/{name}/refit` | — → [`RefitReport`] | snapshot the trace aggregate, re-fit, gate, and (on a pass) hot-swap the default version |
//! | `GET /v1/models/{name}/versions` | — → [`VersionsReport`] | every retained version with its provenance |
//! | `POST /v1/models/{name}/activate` | [`ActivateRequest`] → [`ActivateReply`] | repoint the default at a retained version (rollback / roll-forward) |
//!
//! [`SessionRequest`]: abbd_core::SessionRequest
//! [`SessionReport`]: abbd_core::SessionReport
//!
//! Errors are structured JSON (`{"error":{"status":…,"code":…,"message":…}}`,
//! see [`ApiError`]): `400` for bytes that are not HTTP, JSON or valid
//! binary frames, `404` for unknown models/sessions/routes, `405` for
//! wrong verbs, `409` for concurrent rounds on one session, `413` for
//! oversized bodies, `422` for well-formed requests the model rejects
//! (unknown variables, out-of-range states, impossible evidence,
//! malformed policies, delta rounds contradicting stored evidence),
//! `503` with `retry-after` when the request queue or session store is
//! full. Junk bytes on the socket never take the server down — the
//! connection is answered (when possible) and dropped.
//!
//! ## Wire protocol
//!
//! Every endpoint speaks two bodies over plain HTTP/1.1:
//!
//! * **JSON** (default): `content-type: application/json`. Human-
//!   readable, stable field names, what every example above shows.
//! * **Compact binary** ([`codec`]): `content-type:
//!   application/x-abbd-binary`. A versioned, length-prefixed frame —
//!   magic `aB`, version byte, `u32` little-endian payload length, then
//!   a tagged tree of null/bool/f64/string/array/object values with
//!   LEB128 length prefixes. Decoding either body yields the *same*
//!   in-memory request (the `codec` proptests pin byte-for-byte decode
//!   equality), so the formats are interchangeable per request.
//!
//! Negotiation is per message direction and per request:
//!
//! * Send a binary **body** by setting `content-type:
//!   application/x-abbd-binary` on the request.
//! * Ask for a binary **reply** by listing that type in `accept`.
//! * Anything else (or nothing) means JSON. Error responses are always
//!   JSON — a client that cannot parse its own failure is debugging
//!   blind.
//!
//! On `POST …/diagnose_batch` the binary request body streams row by
//! row: one header frame (`{"deduction": …}`) followed by one frame per
//! observation, concatenated. The server decodes rows without
//! materialising a giant JSON array, and a binary reply is the
//! concatenated per-row [`BatchEntry`] frames in input order.
//!
//! Wire limits and number/string conventions, identical in both codecs:
//!
//! * Bodies are capped at 2 MiB (`413` beyond that) and container
//!   nesting at [`codec::MAX_DEPTH`] (128) levels — a deeper payload is
//!   a structured `400`, never a stack overflow, no matter where in the
//!   document the nesting hides.
//! * JSON numbers are shortest-roundtrip doubles: whole values below
//!   `9e15` print as bare integer digits (every one exact — the
//!   threshold sits under 2⁵³), `-0.0` keeps its sign, and non-finite
//!   values cross as the marker strings `"NaN"`, `"inf"` and `"-inf"`
//!   (`null` also reads back as NaN, for datalog gaps).
//! * JSON strings are UTF-8; `\uXXXX` surrogate pairs decode to one
//!   scalar and lone surrogate halves are a parse error, so a decoded
//!   string is always valid UTF-8.
//!
//! Both directions serialize *directly* between DTOs and wire bytes
//! (the `serde` shim's streaming `write_json`/`write_binary`/`read_from`
//! paths); the `Value`-tree fallback remains for generic payloads and is
//! pinned byte-identical by the `codec` proptests.
//!
//! **Delta rounds** cut the upload side: a [`SessionRequest`] with
//! `"delta": true` sends only *new* observations for a stored session —
//! the session merges them into its accumulated evidence. Re-observing
//! a variable at its stored state is an idempotent no-op; contradicting
//! the stored state is refused with `422 inconsistent_delta` and the
//! session is untouched. Control fields (`actions`, `strategy`,
//! `policy`, `cost`, `deduction`) still apply per round; a delta round
//! can omit observations entirely and just re-plan.
//!
//! Connection behaviour: keep-alive by default (HTTP/1.1), per-
//! connection idle timeout ([`ServerConfig::idle_timeout`]) and request
//! budget ([`ServerConfig::max_requests_per_conn`]), one in-flight
//! request per connection (pipelined bytes wait server-side), `503` +
//! `retry-after` under queue pressure.
//!
//! ## Session lifecycle
//!
//! 1. `POST /v1/models/regulator/sessions` → `{"session_id":"s0000000a",…}`.
//!    The session allocates its propagation workspaces **once**.
//! 2. Repeat `POST /v1/sessions/s0000000a/round` with a
//!    [`SessionRequest`]: new observations accumulate, the reply carries
//!    posteriors, fail candidates and the ranked next actions. Because
//!    the workspaces are reused, a stored round costs the scoring
//!    kernels alone — the fresh-session setup the stateless endpoint
//!    re-pays every round is amortised away (the `server_throughput`
//!    bench group prices both paths), and the device gets exclusive,
//!    conflict-checked access to its own evidence. Send binary delta
//!    rounds to also amortise the wire: only new observations travel.
//! 3. Stop when the reply's `stop` field is non-null (isolated /
//!    exhausted / gain below threshold), then `DELETE` the session —
//!    or walk away: TTL expiry reaps it, and LRU eviction frees the
//!    oldest idle session under capacity pressure.
//!
//! A round request example (whitespace optional):
//!
//! ```json
//! {"observation": {"pairs": [["pin", 1], ["out1", 0]], "failing": ["out1"]},
//!  "actions": [], "strategy": "Myopic",
//!  "policy": {"fault_mass_threshold": 0.9, "max_steps": 32, "min_gain": 0.001},
//!  "cost": {"test_seconds": 1.0, "suite_switch_seconds": 0.0, "probe_seconds": 1.0,
//!           "overrides": [], "suite_of": [], "current_suite": null},
//!  "deduction": null, "delta": false}
//! ```
//!
//! and the reply mirrors [`abbd_core::SessionReport`] — `posteriors`,
//! `fault_mass`, `candidates`, `top_candidate`, `log_likelihood`,
//! `ranked` (best action first), `stop`.
//!
//! ## Example
//!
//! ```
//! use abbd_server::{Client, ModelRegistry, Server, ServerConfig};
//!
//! let registry = ModelRegistry::new()
//!     .insert("toy", abbd_core::fixtures::toy_compiled_model())
//!     .freeze();
//! let server = Server::start(registry, ServerConfig::default()).unwrap();
//! let mut client = Client::connect(server.addr()).unwrap();
//! let (status, body) = client.get("/healthz").unwrap();
//! assert_eq!(status, 200);
//! assert!(body.contains("\"ok\""));
//! server.shutdown();
//! ```

#![deny(unsafe_code)] // `forbid` until PR 6; `net::sys` now scopes the epoll FFI
#![deny(missing_docs)]

pub mod client;
pub mod codec;
mod error;
pub mod http;
mod net;
mod registry;
mod service;
mod store;

pub use client::Client;
pub use error::{ApiError, ErrorBody};
pub use net::NetStats;
pub use registry::{BundleBlock, BundlePartition, ModelBundle, ModelInfo, ModelRegistry};
pub use service::{
    ActivateReply, ActivateRequest, BatchDiagnosis, BatchEntry, BatchReply, BatchRequest,
    CloseSessionReply, HealthReport, ModelStats, ModelsReport, OpenSessionReply, ServiceState,
    ServiceStats, StatsReport, VersionsReport,
};
pub use store::{ServedSession, SessionStore, StoreStats, StoredSession};

// The lifecycle DTOs that cross the wire on the refit/versions
// endpoints, re-exported from `abbd_core::fleet` so wire clients need
// only this crate.
pub use abbd_core::fleet::{GateRejection, ModelLifecycle, RefitPolicy, RefitReport, VersionInfo};

// The service boundary DTOs, re-exported so wire clients need only this
// crate.
pub use abbd_core::{SessionReport, SessionRequest};

use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port `0` picks an ephemeral port (tests, benches).
    pub addr: String,
    /// Diagnosis worker threads (also the batch fan-out width). Workers
    /// only ever see complete requests — connections, idle or flooding,
    /// are the event loop's problem — so size this to core count, not to
    /// the number of concurrent clients.
    pub workers: usize,
    /// Idle time after which a stored session is reaped.
    pub session_ttl: Duration,
    /// Maximum live sessions; beyond it the LRU idle session is evicted.
    pub session_capacity: usize,
    /// Complete requests waiting for a worker, beyond which further
    /// requests are answered `503` with `retry-after` (the connection
    /// survives) — overload gets a defined failure mode instead of
    /// unbounded queue build-up.
    pub queue_depth: usize,
    /// Per-connection idle deadline: a keep-alive connection with no
    /// request in flight and no traffic for this long is closed and
    /// counted in [`StatsReport::idle_timeouts`].
    pub idle_timeout: Duration,
    /// Requests served on one connection before the server answers the
    /// last one with `connection: close` — bounds how long a single
    /// keep-alive connection can pin server-side state.
    pub max_requests_per_conn: u64,
    /// Poll interval of the background [`abbd_core::fleet::Refitter`]
    /// over the registry's model lifecycles; `None` (the default)
    /// disables background refits — `POST /v1/models/{name}/refit`
    /// still triggers them on demand.
    pub refit_interval: Option<Duration>,
}

impl Default for ServerConfig {
    /// Loopback on an ephemeral port, 4 workers, 15-minute TTL, 1024
    /// session slots, 256-request queue, 60-second idle timeout, 100k
    /// requests per connection.
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            session_ttl: Duration::from_secs(15 * 60),
            session_capacity: 1024,
            queue_depth: 256,
            idle_timeout: Duration::from_secs(60),
            max_requests_per_conn: 100_000,
            refit_interval: None,
        }
    }
}

/// The running service. Construct with [`Server::start`]; the value is a
/// handle — dropping it (or calling [`Server::shutdown`]) stops the
/// event loop and joins every thread.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    state: Arc<ServiceState>,
    stop: Arc<AtomicBool>,
    wake: Arc<net::WakeFd>,
    queue: Arc<net::JobQueue>,
    event_loop: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    refitter: Option<abbd_core::fleet::Refitter>,
}

impl Server {
    /// Binds the listener, builds the epoll set, spawns the event-loop
    /// thread and the diagnosis worker pool, and returns once the socket
    /// is live (its actual address is [`Server::addr`]).
    ///
    /// # Errors
    ///
    /// Propagates socket bind and epoll/eventfd setup errors.
    pub fn start(registry: Arc<ModelRegistry>, config: ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let workers = config.workers.max(1);
        let state = Arc::new(ServiceState {
            registry,
            store: SessionStore::new(config.session_ttl, config.session_capacity),
            stats: ServiceStats::default(),
            net: NetStats::default(),
            workers,
            started: std::time::Instant::now(),
        });
        // The background refitter is its own thread: EM and junction-
        // tree compilation for candidate models never run on (or count
        // against) the serving workers.
        let refitter = config.refit_interval.map(|interval| {
            let lifecycles = state
                .registry
                .lifecycles()
                .map(|(_, lc)| Arc::clone(lc))
                .collect();
            abbd_core::fleet::Refitter::spawn(lifecycles, interval)
        });
        let stop = Arc::new(AtomicBool::new(false));
        let wake = Arc::new(net::WakeFd::new()?);
        let queue = Arc::new(net::JobQueue::new(config.queue_depth));
        let completions = Arc::new(net::CompletionQueue::new(Arc::clone(&wake)));
        let event_loop = net::EventLoop::new(
            listener,
            Arc::clone(&state),
            Arc::clone(&queue),
            Arc::clone(&completions),
            Arc::clone(&wake),
            Arc::clone(&stop),
            net::EventLoopConfig {
                idle_timeout: config.idle_timeout.max(Duration::from_millis(1)),
                max_requests_per_conn: config.max_requests_per_conn.max(1),
            },
        )?;
        let worker_handles: Vec<JoinHandle<()>> = (0..workers)
            .map(|_| {
                let queue = Arc::clone(&queue);
                let completions = Arc::clone(&completions);
                let state = Arc::clone(&state);
                std::thread::spawn(move || net::worker_loop(&queue, &completions, &state))
            })
            .collect();
        let event_loop = std::thread::spawn(move || event_loop.run());
        Ok(Server {
            addr,
            state,
            stop,
            wake,
            queue,
            event_loop: Some(event_loop),
            workers: worker_handles,
            refitter,
        })
    }

    /// The bound socket address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared serving state (registry, store, counters) — for
    /// in-process inspection by tests and benches.
    pub fn state(&self) -> &Arc<ServiceState> {
        &self.state
    }

    /// Stops the event loop (closing the listener and every connection),
    /// drains queued requests through the workers and joins every
    /// thread. Responses already computed but not yet flushed when the
    /// loop stops are discarded with their connections.
    pub fn shutdown(mut self) {
        self.stop_threads();
    }

    fn stop_threads(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Stop the refitter first: a refit in flight finishes (promotion
        // is atomic either way), but no new cycle starts while the
        // serving threads wind down.
        if let Some(mut refitter) = self.refitter.take() {
            refitter.stop();
        }
        // The waker pulls the event loop out of `epoll_wait`; it then
        // observes the flag and exits, dropping listener and sockets.
        self.wake.wake();
        if let Some(event_loop) = self.event_loop.take() {
            let _ = event_loop.join();
        }
        // Closing the queue drains the workers (jobs already queued are
        // still computed; their connections are gone, so the completions
        // fall on the floor).
        self.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_threads();
    }
}

// Re-exported for the doc example above; `Response` is part of the
// public `http` module either way.
#[doc(hidden)]
pub use http::Request as HttpRequest;
#[doc(hidden)]
pub use http::Response as HttpResponse;

#[cfg(test)]
mod tests {
    use super::*;
    use abbd_core::fixtures::toy_compiled_model;

    #[test]
    fn server_starts_answers_and_shuts_down() {
        let registry = ModelRegistry::new()
            .insert("toy", toy_compiled_model())
            .freeze();
        let server = Server::start(registry, ServerConfig::default()).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        let (status, body) = client.get("/healthz").unwrap();
        assert_eq!(status, 200);
        let health: HealthReport = serde_json::from_str(&body).unwrap();
        assert_eq!(health.status, "ok");
        assert_eq!(health.models, 1);
        let addr = server.addr();
        server.shutdown();
        // The listener is gone after shutdown (a fresh connect can no
        // longer complete a request).
        let mut dead = None;
        for _ in 0..10 {
            match Client::connect(addr) {
                Ok(mut c) => {
                    if c.get("/healthz").is_err() {
                        dead = Some(true);
                        break;
                    }
                }
                Err(_) => {
                    dead = Some(true);
                    break;
                }
            }
        }
        assert_eq!(dead, Some(true), "server kept serving after shutdown");
    }

    #[test]
    fn many_idle_connections_coexist_with_a_tiny_worker_pool() {
        let registry = ModelRegistry::new()
            .insert("toy", toy_compiled_model())
            .freeze();
        let server = Server::start(
            registry,
            ServerConfig {
                workers: 1,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        // Far more open connections than workers: under the old thread-
        // per-connection layer these would starve each other.
        let mut idle: Vec<Client> = (0..64)
            .map(|_| Client::connect(server.addr()).unwrap())
            .collect();
        let mut active = Client::connect(server.addr()).unwrap();
        let (status, body) = active.get("/v1/stats").unwrap();
        assert_eq!(status, 200);
        let stats: StatsReport = serde_json::from_str(&body).unwrap();
        assert!(
            stats.connections_open >= 65,
            "expected 65+ open connections, saw {}",
            stats.connections_open
        );
        // Every idle connection still works.
        for client in &mut idle {
            let (status, _) = client.get("/healthz").unwrap();
            assert_eq!(status, 200);
        }
        server.shutdown();
    }
}
