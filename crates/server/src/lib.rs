//! # abbd-server — the diagnosis service
//!
//! A multi-threaded HTTP/1.1 diagnosis server over the unified session
//! API of `abbd_core::session`: one process hosts a [`ModelRegistry`] of
//! named, compile-once [`abbd_core::CompiledModel`]s, a [`SessionStore`]
//! of live per-device [`abbd_core::DiagnosisSession`]s (TTL + LRU), and
//! a fixed pool of worker threads serving JSON over
//! [`std::net::TcpListener`]. The build environment is offline, so the
//! HTTP layer is a small, strict in-tree implementation ([`http`]) in
//! the spirit of the workspace's `shims/` — no tokio, no hyper.
//!
//! Serving never compiles: every junction tree is triangulated at
//! registration time, worker threads propagate through shared compiled
//! schedules, and `/v1/stats` exposes the worker-side compile counter so
//! the integration suite can pin it at zero.
//!
//! ## Endpoints
//!
//! | method & path | body → reply | semantics |
//! |---------------|--------------|-----------|
//! | `GET /healthz` | — → [`HealthReport`] | liveness plus model/session counts |
//! | `GET /v1/models` | — → [`ModelsReport`] | the registry rows |
//! | `GET /v1/stats` | — → [`StatsReport`] | serving counters (rounds, errors, compiles, store lifecycle) |
//! | `POST /v1/models/{name}/sessions` | — → [`OpenSessionReply`] | open a stored session (`201`; body ignored — configuration travels per round) |
//! | `POST /v1/models/{name}/serve` | [`SessionRequest`] → [`SessionReport`] | one **stateless** decision round (fresh session per call) |
//! | `POST /v1/models/{name}/diagnose_batch` | [`BatchRequest`] → [`BatchReply`] | fan N evidence sets across the worker pool (diagnosis only) |
//! | `POST /v1/sessions/{id}/round` | [`SessionRequest`] → [`SessionReport`] | one **stateful** decision round on the stored session |
//! | `DELETE /v1/sessions/{id}` | — → [`CloseSessionReply`] | close a stored session |
//!
//! [`SessionRequest`]: abbd_core::SessionRequest
//! [`SessionReport`]: abbd_core::SessionReport
//!
//! Errors are structured JSON (`{"error":{"status":…,"code":…,"message":…}}`,
//! see [`ApiError`]): `400` for bytes that are not HTTP or JSON, `404`
//! for unknown models/sessions/routes, `405` for wrong verbs, `409` for
//! concurrent rounds on one session, `413` for oversized bodies, `422`
//! for well-formed requests the model rejects (unknown variables,
//! out-of-range states, impossible evidence, malformed policies), `503`
//! when the session store is full of busy sessions. Junk bytes on the
//! socket never take a worker down — the connection is answered (when
//! possible) and dropped.
//!
//! ## Session lifecycle
//!
//! 1. `POST /v1/models/regulator/sessions` → `{"session_id":"s0000000a",…}`.
//!    The session allocates its propagation workspaces **once**.
//! 2. Repeat `POST /v1/sessions/s0000000a/round` with a
//!    [`SessionRequest`]: new observations accumulate, the reply carries
//!    posteriors, fail candidates and the ranked next actions. Because
//!    the workspaces are reused, a stored round costs the scoring
//!    kernels alone — the fresh-session setup the stateless endpoint
//!    re-pays every round is amortised away (the `server_throughput`
//!    bench group prices both paths), and the device gets exclusive,
//!    conflict-checked access to its own evidence.
//! 3. Stop when the reply's `stop` field is non-null (isolated /
//!    exhausted / gain below threshold), then `DELETE` the session —
//!    or walk away: TTL expiry reaps it, and LRU eviction frees the
//!    oldest idle session under capacity pressure.
//!
//! A round request example (whitespace optional):
//!
//! ```json
//! {"observation": {"pairs": [["pin", 1], ["out1", 0]], "failing": ["out1"]},
//!  "actions": [], "strategy": "Myopic",
//!  "policy": {"fault_mass_threshold": 0.9, "max_steps": 32, "min_gain": 0.001},
//!  "cost": {"test_seconds": 1.0, "suite_switch_seconds": 0.0, "probe_seconds": 1.0,
//!           "overrides": [], "suite_of": [], "current_suite": null},
//!  "deduction": null}
//! ```
//!
//! and the reply mirrors [`abbd_core::SessionReport`] — `posteriors`,
//! `fault_mass`, `candidates`, `top_candidate`, `log_likelihood`,
//! `ranked` (best action first), `stop`.
//!
//! ## Example
//!
//! ```
//! use abbd_server::{Client, ModelRegistry, Server, ServerConfig};
//!
//! let registry = ModelRegistry::new()
//!     .insert("toy", abbd_core::fixtures::toy_compiled_model())
//!     .freeze();
//! let server = Server::start(registry, ServerConfig::default()).unwrap();
//! let mut client = Client::connect(server.addr()).unwrap();
//! let (status, body) = client.get("/healthz").unwrap();
//! assert_eq!(status, 200);
//! assert!(body.contains("\"ok\""));
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod client;
mod error;
pub mod http;
mod registry;
mod service;
mod store;

pub use client::Client;
pub use error::{ApiError, ErrorBody};
pub use registry::{ModelBundle, ModelInfo, ModelRegistry};
pub use service::{
    BatchDiagnosis, BatchEntry, BatchReply, BatchRequest, CloseSessionReply, HealthReport,
    ModelsReport, OpenSessionReply, ServiceState, ServiceStats, StatsReport,
};
pub use store::{SessionStore, StoreStats, StoredSession};

// The service boundary DTOs, re-exported so wire clients need only this
// crate.
pub use abbd_core::{SessionReport, SessionRequest};

use crate::http::ParseError;
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port `0` picks an ephemeral port (tests, benches).
    pub addr: String,
    /// Worker threads serving connections (also the batch fan-out
    /// width). A keep-alive connection occupies its worker until the
    /// client closes or goes idle past [`ServerConfig::read_timeout`],
    /// so size this to the expected number of *concurrent clients*, not
    /// to core count — threads parked in socket reads are cheap.
    pub workers: usize,
    /// Idle time after which a stored session is reaped.
    pub session_ttl: Duration,
    /// Maximum live sessions; beyond it the LRU idle session is evicted.
    pub session_capacity: usize,
    /// Per-connection socket read timeout (a stalled client frees its
    /// worker after this long).
    pub read_timeout: Duration,
    /// Accepted connections waiting for a free worker, beyond which new
    /// connections are answered `503` and dropped — overload gets a
    /// defined failure mode instead of unbounded socket build-up.
    pub accept_backlog: usize,
}

impl Default for ServerConfig {
    /// Loopback on an ephemeral port, 4 workers, 15-minute TTL, 1024
    /// session slots, 10-second read timeout, 256-connection backlog.
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            session_ttl: Duration::from_secs(15 * 60),
            session_capacity: 1024,
            read_timeout: Duration::from_secs(10),
            accept_backlog: 256,
        }
    }
}

/// Live connection sockets, so shutdown can unblock workers parked in
/// keep-alive reads instead of waiting out their read timeouts.
#[derive(Debug, Default)]
struct ConnTracker {
    next_id: std::sync::atomic::AtomicU64,
    conns: Mutex<Vec<(u64, TcpStream)>>,
}

impl ConnTracker {
    fn register(&self, stream: &TcpStream) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            self.conns
                .lock()
                .expect("conn tracker lock")
                .push((id, clone));
        }
        id
    }

    fn unregister(&self, id: u64) {
        let mut conns = self.conns.lock().expect("conn tracker lock");
        conns.retain(|(conn_id, _)| *conn_id != id);
    }

    fn shutdown_all(&self) {
        let conns = self.conns.lock().expect("conn tracker lock");
        for (_, stream) in conns.iter() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
    }
}

/// The running service. Construct with [`Server::start`]; the value is a
/// handle — dropping it (or calling [`Server::shutdown`]) stops the
/// listener and joins every worker.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    state: Arc<ServiceState>,
    stop: Arc<AtomicBool>,
    conns: Arc<ConnTracker>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds the listener, spawns the accept thread and the worker pool,
    /// and returns once the socket is live (its actual address is
    /// [`Server::addr`]).
    ///
    /// # Errors
    ///
    /// Propagates socket bind errors.
    pub fn start(registry: Arc<ModelRegistry>, config: ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let workers = config.workers.max(1);
        let state = Arc::new(ServiceState {
            registry,
            store: SessionStore::new(config.session_ttl, config.session_capacity),
            stats: ServiceStats::default(),
            workers,
        });
        let stop = Arc::new(AtomicBool::new(false));
        let conns = Arc::new(ConnTracker::default());
        let (tx, rx) = mpsc::sync_channel::<TcpStream>(config.accept_backlog.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let worker_handles: Vec<JoinHandle<()>> = (0..workers)
            .map(|_| {
                let rx = Arc::clone(&rx);
                let state = Arc::clone(&state);
                let conns = Arc::clone(&conns);
                let stop = Arc::clone(&stop);
                let read_timeout = config.read_timeout;
                std::thread::spawn(move || worker_loop(&rx, &state, &conns, &stop, read_timeout))
            })
            .collect();
        let accept = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || accept_loop(&listener, &tx, &stop))
        };
        Ok(Server {
            addr,
            state,
            stop,
            conns,
            accept: Some(accept),
            workers: worker_handles,
        })
    }

    /// The bound socket address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared serving state (registry, store, counters) — for
    /// in-process inspection by tests and benches.
    pub fn state(&self) -> &Arc<ServiceState> {
        &self.state
    }

    /// Stops accepting, drains the workers and joins every thread.
    /// In-flight connections finish their current request.
    pub fn shutdown(mut self) {
        self.stop_threads();
    }

    fn stop_threads(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the blocking `accept` so the accept thread observes the
        // stop flag; ignore failure (the listener may already be gone).
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // Unblock workers parked in keep-alive reads.
        self.conns.shutdown_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_threads();
    }
}

/// Accepts connections until the stop flag trips, handing each stream to
/// the worker pool's bounded queue. A full queue answers the connection
/// `503` and drops it (overload has a defined failure mode); dropping
/// `tx` on exit is what drains the workers.
fn accept_loop(listener: &TcpListener, tx: &SyncSender<TcpStream>, stop: &AtomicBool) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        match tx.try_send(stream) {
            Ok(()) => {}
            Err(TrySendError::Full(mut stream)) => {
                let mut response = ApiError::new(503, "overloaded", "connection queue full; retry")
                    .into_response();
                response.keep_alive = false;
                let _ = response.write_to(&mut stream);
            }
            Err(TrySendError::Disconnected(_)) => break,
        }
    }
}

/// One worker: pull connections off the shared queue until the channel
/// closes, tallying any junction-tree compilations it (never) performs.
/// Connections still queued when the stop flag trips are dropped
/// unserved, so shutdown never waits on work nobody started.
fn worker_loop(
    rx: &Mutex<Receiver<TcpStream>>,
    state: &ServiceState,
    conns: &ConnTracker,
    stop: &AtomicBool,
    read_timeout: Duration,
) {
    loop {
        let next = {
            let guard = rx.lock().expect("worker queue lock");
            guard.recv()
        };
        let Ok(stream) = next else { break };
        if stop.load(Ordering::SeqCst) {
            continue; // drain the queue without serving
        }
        let conn_id = conns.register(&stream);
        let before = abbd_bbn::jointree_compile_count();
        // A panic anywhere in parsing/routing/diagnosis costs its own
        // connection, never the worker thread: an unguarded unwind here
        // would silently shrink the pool until the server accepts but
        // never serves.
        if std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            handle_connection(stream, state, stop, read_timeout);
        }))
        .is_err()
        {
            state.stats.errors.fetch_add(1, Ordering::Relaxed);
        }
        conns.unregister(conn_id);
        let compiled = abbd_bbn::jointree_compile_count() - before;
        if compiled > 0 {
            state
                .stats
                .worker_compiles
                .fetch_add(compiled, Ordering::Relaxed);
        }
    }
}

/// Serves one connection: parse → route → respond, keep-alive until the
/// client closes, errors out, asks for `Connection: close`, or the
/// server is shutting down (each in-flight request finishes; the
/// connection just does not outlive it). Malformed bytes get a final
/// structured error response; IO failures just drop the connection.
/// Never panics.
fn handle_connection(
    stream: TcpStream,
    state: &ServiceState,
    stop: &AtomicBool,
    read_timeout: Duration,
) {
    let _ = stream.set_read_timeout(Some(read_timeout));
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    // The registration in `worker_loop` happens before this point, so a
    // stop that was set before registration is caught here and one set
    // after is caught by `ConnTracker::shutdown_all` breaking the read.
    if stop.load(Ordering::SeqCst) {
        return;
    }
    loop {
        match http::read_request(&mut reader) {
            Ok(None) => break,
            Ok(Some(request)) => {
                let keep_alive = request.keep_alive && !stop.load(Ordering::SeqCst);
                let mut response = service::handle(state, &request);
                response.keep_alive = keep_alive;
                if response.write_to(&mut writer).is_err() || !keep_alive {
                    break;
                }
            }
            Err(ParseError::Io(_)) => break,
            Err(ParseError::Malformed(reason)) => {
                state.stats.errors.fetch_add(1, Ordering::Relaxed);
                let mut response =
                    ApiError::bad_request(format!("malformed request: {reason}")).into_response();
                response.keep_alive = false;
                let _ = response.write_to(&mut writer);
                break;
            }
            Err(ParseError::BodyTooLarge) => {
                state.stats.errors.fetch_add(1, Ordering::Relaxed);
                let mut response = ApiError::new(
                    413,
                    "payload_too_large",
                    format!("body exceeds {} bytes", http::MAX_BODY),
                )
                .into_response();
                response.keep_alive = false;
                let _ = response.write_to(&mut writer);
                break;
            }
        }
    }
}

// Re-exported for the doc example above; `Response` is part of the
// public `http` module either way.
#[doc(hidden)]
pub use http::Request as HttpRequest;
#[doc(hidden)]
pub use http::Response as HttpResponse;

#[cfg(test)]
mod tests {
    use super::*;
    use abbd_core::fixtures::toy_compiled_model;

    #[test]
    fn server_starts_answers_and_shuts_down() {
        let registry = ModelRegistry::new()
            .insert("toy", toy_compiled_model())
            .freeze();
        let server = Server::start(registry, ServerConfig::default()).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        let (status, body) = client.get("/healthz").unwrap();
        assert_eq!(status, 200);
        let health: HealthReport = serde_json::from_str(&body).unwrap();
        assert_eq!(health.status, "ok");
        assert_eq!(health.models, 1);
        let addr = server.addr();
        server.shutdown();
        // The listener is gone after shutdown (a fresh connect can no
        // longer complete a request).
        let mut dead = None;
        for _ in 0..10 {
            match Client::connect(addr) {
                Ok(mut c) => {
                    if c.get("/healthz").is_err() {
                        dead = Some(true);
                        break;
                    }
                }
                Err(_) => {
                    dead = Some(true);
                    break;
                }
            }
        }
        assert_eq!(dead, Some(true), "server kept serving after shutdown");
    }
}
