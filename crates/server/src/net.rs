//! The readiness-driven connection layer: one event-loop thread owns
//! every socket, parses complete requests out of per-connection state
//! machines, and hands them to the fixed diagnosis worker pool through a
//! bounded queue.
//!
//! The shape replaces PR 5's thread-per-keep-alive-connection accept
//! loop, where an *idle* client pinned a whole worker thread until its
//! read timeout. Here an idle connection costs its socket plus a few
//! hundred bytes of buffers, so one process holds 10k+ keep-alive
//! connections over a handful of workers:
//!
//! ```text
//!            epoll (readiness)                bounded JobQueue
//! sockets ──► event loop ── complete requests ──► worker pool ──► service::handle
//!    ▲            │                                   │
//!    └── writes ──┴◄─── CompletionQueue + eventfd ◄───┘
//! ```
//!
//! * **Backpressure is explicit**: when the job queue is full the event
//!   loop itself answers `503` with `retry-after`, the connection stays
//!   usable, and `queue_full_rejections` counts the shed load.
//! * **Flow control**: one request per connection is in flight at a
//!   time — the parser is gated while a worker holds the request, so
//!   pipelined bytes wait in the connection buffer (the steady-state
//!   round costs no `epoll_ctl` traffic). Past `PIPELINE_BUF_CAP` of
//!   unparsed backlog the loop drops read interest and lets TCP
//!   throttle the flooding client.
//! * **Idle timeouts** reap connections that sit quiet past the
//!   configured deadline, and `max_requests_per_conn` bounds how long
//!   one keep-alive connection can monopolise state.
//!
//! The build environment is offline (no tokio, no libc crate), so the
//! `sys` module binds the four `epoll`/`eventfd` symbols directly from
//! the C library std already links — the only `unsafe` in the crate,
//! scoped to that module.

use crate::error::ApiError;
use crate::http::{self, ParseError, Request, Response};
use crate::service::{self, ServiceState};
use std::collections::VecDeque;
use std::io::{self, Read as _, Write as _};
use std::net::{TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Raw `epoll`/`eventfd` bindings against the C library symbols the
/// standard library already links (the workspace builds offline, so no
/// `libc` crate). Everything `unsafe` in `abbd-server` lives here,
/// wrapped into safe, error-returning functions.
#[allow(unsafe_code)]
mod sys {
    use std::io;
    use std::os::fd::RawFd;

    /// Mirror of `struct epoll_event` (packed on x86-64).
    #[derive(Clone, Copy)]
    #[repr(C, packed)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_MOD: i32 = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    const EPOLL_CLOEXEC: i32 = 0x80000;
    const EFD_CLOEXEC: i32 = 0x80000;
    const EFD_NONBLOCK: i32 = 0x800;

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
        fn read(fd: i32, buf: *mut core::ffi::c_void, count: usize) -> isize;
        fn write(fd: i32, buf: *const core::ffi::c_void, count: usize) -> isize;
        fn close(fd: i32) -> i32;
    }

    pub fn create_epoll() -> io::Result<RawFd> {
        // SAFETY: plain syscall, no pointers.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(fd)
    }

    pub fn ctl(epfd: RawFd, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut event = EpollEvent {
            events,
            data: token,
        };
        // SAFETY: `event` outlives the call; the kernel copies it.
        if unsafe { epoll_ctl(epfd, op, fd, &mut event) } < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    pub fn wait(epfd: RawFd, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        // SAFETY: the buffer is valid for `events.len()` entries.
        let n = unsafe { epoll_wait(epfd, events.as_mut_ptr(), events.len() as i32, timeout_ms) };
        if n < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(e);
        }
        Ok(n as usize)
    }

    pub fn create_eventfd() -> io::Result<RawFd> {
        // SAFETY: plain syscall, no pointers.
        let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(fd)
    }

    pub fn eventfd_write(fd: RawFd) {
        let one: u64 = 1;
        // SAFETY: 8 valid bytes; an EAGAIN (counter saturated) still
        // leaves the fd readable, which is all a wakeup needs.
        let _ = unsafe { write(fd, (&raw const one).cast(), 8) };
    }

    pub fn eventfd_drain(fd: RawFd) {
        let mut counter = [0u8; 8];
        // SAFETY: 8 valid bytes; EFD_NONBLOCK makes an empty counter
        // return EAGAIN instead of blocking.
        let _ = unsafe { read(fd, counter.as_mut_ptr().cast(), 8) };
    }

    pub fn close_fd(fd: RawFd) {
        // SAFETY: the callers own `fd` and never use it again.
        let _ = unsafe { close(fd) };
    }
}

/// Connection-layer counters, reported by `GET /v1/stats` next to the
/// serving counters (gauges are point-in-time, the rest are monotonic).
#[derive(Debug, Default)]
pub struct NetStats {
    /// Connections ever accepted.
    pub accepted: AtomicU64,
    /// Currently open connections (gauge).
    pub open: AtomicU64,
    /// Connections with a request in flight right now (gauge).
    pub active: AtomicU64,
    /// Requests waiting in the worker queue right now (gauge).
    pub queue_depth: AtomicU64,
    /// Requests answered `503` because the worker queue was full.
    pub queue_full_rejections: AtomicU64,
    /// Idle connections reaped by the per-connection timeout.
    pub idle_timeouts: AtomicU64,
}

/// One complete request on its way to the worker pool, carrying the
/// connection's recycled encode buffer so the response bytes land in
/// storage the connection already owns.
#[derive(Debug)]
pub(crate) struct Job {
    conn_index: usize,
    conn_id: u64,
    request: Request,
    keep_alive: bool,
    buf: Vec<u8>,
}

/// One encoded response on its way back to the event loop.
pub(crate) struct Completion {
    conn_index: usize,
    conn_id: u64,
    buf: Vec<u8>,
    keep_alive: bool,
}

/// The bounded hand-off from the event loop to the worker pool. A full
/// queue refuses the push (the event loop answers `503 + retry-after`);
/// closing it drains the workers.
#[derive(Debug)]
pub(crate) struct JobQueue {
    inner: Mutex<QueueInner>,
    takers: Condvar,
    capacity: usize,
}

#[derive(Debug)]
struct QueueInner {
    jobs: VecDeque<Job>,
    closed: bool,
}

impl JobQueue {
    pub(crate) fn new(capacity: usize) -> Self {
        JobQueue {
            inner: Mutex::new(QueueInner {
                jobs: VecDeque::new(),
                closed: false,
            }),
            takers: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues unless full or closed; returns the depth after the push.
    /// `Err` hands the whole job back so the event loop can turn it
    /// into a `503` reply on the owning connection.
    #[allow(clippy::result_large_err)]
    fn try_push(&self, job: Job) -> Result<usize, Job> {
        let mut inner = self.inner.lock().expect("job queue lock");
        if inner.closed || inner.jobs.len() >= self.capacity {
            return Err(job);
        }
        inner.jobs.push_back(job);
        let depth = inner.jobs.len();
        drop(inner);
        self.takers.notify_one();
        Ok(depth)
    }

    /// Blocks for the next job; `None` once the queue is closed and
    /// drained (jobs queued before the close are still served).
    fn pop(&self) -> Option<(Job, usize)> {
        let mut inner = self.inner.lock().expect("job queue lock");
        loop {
            if let Some(job) = inner.jobs.pop_front() {
                let depth = inner.jobs.len();
                return Some((job, depth));
            }
            if inner.closed {
                return None;
            }
            inner = self.takers.wait(inner).expect("job queue lock");
        }
    }

    pub(crate) fn close(&self) {
        self.inner.lock().expect("job queue lock").closed = true;
        self.takers.notify_all();
    }
}

/// The eventfd the workers ring to pull the event loop out of
/// `epoll_wait` when a completion (or shutdown) is ready.
pub(crate) struct WakeFd {
    fd: RawFd,
}

impl WakeFd {
    pub(crate) fn new() -> io::Result<Self> {
        Ok(WakeFd {
            fd: sys::create_eventfd()?,
        })
    }

    pub(crate) fn wake(&self) {
        sys::eventfd_write(self.fd);
    }

    fn drain(&self) {
        sys::eventfd_drain(self.fd);
    }
}

impl Drop for WakeFd {
    fn drop(&mut self) {
        sys::close_fd(self.fd);
    }
}

impl std::fmt::Debug for WakeFd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "WakeFd({})", self.fd)
    }
}

/// Responses travelling back from the workers to the event loop.
pub(crate) struct CompletionQueue {
    slots: Mutex<Vec<Completion>>,
    wake: Arc<WakeFd>,
}

impl CompletionQueue {
    pub(crate) fn new(wake: Arc<WakeFd>) -> Self {
        CompletionQueue {
            slots: Mutex::new(Vec::new()),
            wake,
        }
    }

    fn push(&self, completion: Completion) {
        self.slots
            .lock()
            .expect("completion queue lock")
            .push(completion);
        self.wake.wake();
    }

    fn drain_into(&self, into: &mut Vec<Completion>) {
        let mut slots = self.slots.lock().expect("completion queue lock");
        std::mem::swap(&mut *slots, into);
    }
}

/// One worker thread: pull complete requests, run the service handler
/// (panic-isolated), encode the whole HTTP response into the job's
/// recycled buffer, and ring the completion bell. Exits when the queue
/// closes.
pub(crate) fn worker_loop(queue: &JobQueue, completions: &CompletionQueue, state: &ServiceState) {
    while let Some((job, depth)) = queue.pop() {
        state.net.queue_depth.store(depth as u64, Ordering::Relaxed);
        let before = abbd_bbn::jointree_compile_count();
        let lazy_before = state.registry.lazy_submodel_compiles();
        // A panic anywhere in routing/diagnosis costs its own request,
        // never the worker thread: an unguarded unwind would silently
        // shrink the pool until the server accepts but never serves.
        let handled = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            service::handle(state, &job.request)
        }));
        let mut response = match handled {
            Ok(response) => response,
            Err(_) => {
                state.stats.errors.fetch_add(1, Ordering::Relaxed);
                ApiError::new(500, "internal", "panic while serving the request").into_response()
            }
        };
        // Hierarchy descent is the one sanctioned serve-time compile
        // (at most once per block, tracked by its own gauge) — subtract
        // it so `worker_compiles` keeps pinning the *unsanctioned* kind.
        // The lazy counter is global while the jointree counter is
        // thread-local, so a concurrent descent on another worker can
        // over-subtract here; saturating keeps that harmless.
        let lazy_delta = state.registry.lazy_submodel_compiles() - lazy_before;
        let compiled = (abbd_bbn::jointree_compile_count() - before).saturating_sub(lazy_delta);
        if compiled > 0 {
            state
                .stats
                .worker_compiles
                .fetch_add(compiled, Ordering::Relaxed);
        }
        response.keep_alive = job.keep_alive;
        let mut buf = job.buf;
        buf.clear();
        response.write_into(&mut buf);
        completions.push(Completion {
            conn_index: job.conn_index,
            conn_id: job.conn_id,
            buf,
            keep_alive: job.keep_alive,
        });
    }
}

/// Event-loop tuning, split off [`crate::ServerConfig`].
pub(crate) struct EventLoopConfig {
    pub idle_timeout: Duration,
    pub max_requests_per_conn: u64,
}

/// One connection's state machine: buffered reads, the parse cursor, the
/// in-flight marker and the write side with its recycled spare buffer.
struct Conn {
    /// Generation id, so a completion for a connection that died while
    /// its request was in the workers cannot be written to a later
    /// connection reusing the same slot.
    id: u64,
    stream: TcpStream,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    write_pos: usize,
    /// Recycled encode buffer: rides along inside the [`Job`], comes
    /// back as the response's storage, and is reused for the next
    /// response on this connection.
    spare: Vec<u8>,
    interest: u32,
    in_flight: bool,
    close_after_write: bool,
    /// The peer shut its write side down (EOF on read). Requests already
    /// buffered are still parsed and answered — a client may legitimately
    /// half-close after its final request — but nothing more will arrive.
    peer_closed: bool,
    last_activity: Instant,
    served: u64,
}

const LISTENER_TOKEN: u64 = u64::MAX;
const WAKE_TOKEN: u64 = u64::MAX - 1;
/// Read chunk size; also the initial spare-buffer guess.
const READ_CHUNK: usize = 16 * 1024;
/// How much unparsed pipeline a connection may buffer while a request
/// is in flight before the event loop stops reading from it and lets
/// TCP throttle the peer.
const PIPELINE_BUF_CAP: usize = 256 * 1024;

enum Flush {
    Done,
    Pending,
    Closed,
}

/// The event loop: owns the listener, the epoll set and every
/// connection. Built on the main thread (so bind/epoll errors surface
/// from [`crate::Server::start`]) and then moved into its thread.
pub(crate) struct EventLoop {
    epoll_fd: RawFd,
    listener: TcpListener,
    state: Arc<ServiceState>,
    queue: Arc<JobQueue>,
    completions: Arc<CompletionQueue>,
    wake: Arc<WakeFd>,
    stop: Arc<AtomicBool>,
    config: EventLoopConfig,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    freed_this_round: Vec<usize>,
    next_conn_id: u64,
    scratch: Vec<u8>,
}

impl EventLoop {
    pub(crate) fn new(
        listener: TcpListener,
        state: Arc<ServiceState>,
        queue: Arc<JobQueue>,
        completions: Arc<CompletionQueue>,
        wake: Arc<WakeFd>,
        stop: Arc<AtomicBool>,
        config: EventLoopConfig,
    ) -> io::Result<Self> {
        listener.set_nonblocking(true)?;
        let epoll_fd = sys::create_epoll()?;
        let registered = sys::ctl(
            epoll_fd,
            sys::EPOLL_CTL_ADD,
            listener.as_raw_fd(),
            sys::EPOLLIN,
            LISTENER_TOKEN,
        )
        .and_then(|()| {
            sys::ctl(
                epoll_fd,
                sys::EPOLL_CTL_ADD,
                wake.fd,
                sys::EPOLLIN,
                WAKE_TOKEN,
            )
        });
        if let Err(e) = registered {
            sys::close_fd(epoll_fd);
            return Err(e);
        }
        Ok(EventLoop {
            epoll_fd,
            listener,
            state,
            queue,
            completions,
            wake,
            stop,
            config,
            conns: Vec::new(),
            free: Vec::new(),
            freed_this_round: Vec::new(),
            next_conn_id: 0,
            scratch: vec![0u8; READ_CHUNK],
        })
    }

    /// Runs until the stop flag trips (the waker gets it out of
    /// `epoll_wait`). Dropping `self` afterwards closes every socket.
    pub(crate) fn run(mut self) {
        let mut events = vec![sys::EpollEvent { events: 0, data: 0 }; 1024];
        // Reap granularity: a quarter of the idle timeout, clamped to
        // [25 ms, 250 ms] — cheap to scan, precise enough for second-
        // scale deadlines.
        let tick = (self.config.idle_timeout / 4)
            .clamp(Duration::from_millis(25), Duration::from_millis(250));
        let mut completed = Vec::new();
        let mut last_reap = Instant::now();
        while let Ok(ready) = sys::wait(self.epoll_fd, &mut events, tick.as_millis() as i32) {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            for event in &events[..ready] {
                // Copies, not references: the struct is packed.
                let (bits, token) = (event.events, event.data);
                match token {
                    LISTENER_TOKEN => self.accept_ready(),
                    WAKE_TOKEN => self.wake.drain(),
                    index => self.conn_ready(index as usize, bits),
                }
            }
            self.completions.drain_into(&mut completed);
            for completion in completed.drain(..) {
                self.apply_completion(completion);
            }
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            if last_reap.elapsed() >= tick {
                self.reap_idle();
                last_reap = Instant::now();
            }
            // Slots freed this round become reusable only now, so a
            // stale readiness event later in the same batch can never
            // land on a connection that replaced the dead one.
            self.free.append(&mut self.freed_this_round);
        }
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    self.register(stream);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // Transient accept failures (EMFILE under fd pressure,
                // aborted handshakes): give up this readiness round
                // rather than spinning.
                Err(_) => break,
            }
        }
    }

    fn register(&mut self, stream: TcpStream) {
        let fd = stream.as_raw_fd();
        let index = match self.free.pop() {
            Some(index) => index,
            None => {
                self.conns.push(None);
                self.conns.len() - 1
            }
        };
        let id = self.next_conn_id;
        self.next_conn_id += 1;
        if sys::ctl(
            self.epoll_fd,
            sys::EPOLL_CTL_ADD,
            fd,
            sys::EPOLLIN,
            index as u64,
        )
        .is_err()
        {
            // Registration failed; the slot goes straight back (no
            // readiness event can reference it).
            self.free.push(index);
            return;
        }
        self.conns[index] = Some(Conn {
            id,
            stream,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            write_pos: 0,
            spare: Vec::new(),
            interest: sys::EPOLLIN,
            in_flight: false,
            close_after_write: false,
            peer_closed: false,
            last_activity: Instant::now(),
            served: 0,
        });
        let net = &self.state.net;
        net.accepted.fetch_add(1, Ordering::Relaxed);
        net.open.fetch_add(1, Ordering::Relaxed);
    }

    fn conn(&mut self, index: usize) -> Option<&mut Conn> {
        self.conns.get_mut(index).and_then(Option::as_mut)
    }

    fn close_conn(&mut self, index: usize) {
        let Some(slot) = self.conns.get_mut(index) else {
            return;
        };
        let Some(conn) = slot.take() else {
            return;
        };
        let net = &self.state.net;
        net.open.fetch_sub(1, Ordering::Relaxed);
        if conn.in_flight {
            net.active.fetch_sub(1, Ordering::Relaxed);
        }
        // Dropping the stream closes the fd, which also removes it from
        // the epoll set.
        drop(conn);
        self.freed_this_round.push(index);
    }

    fn set_interest(&mut self, index: usize, events: u32) {
        let epoll_fd = self.epoll_fd;
        let Some(conn) = self.conn(index) else {
            return;
        };
        if conn.interest == events {
            return;
        }
        let fd = conn.stream.as_raw_fd();
        if sys::ctl(epoll_fd, sys::EPOLL_CTL_MOD, fd, events, index as u64).is_ok() {
            if let Some(conn) = self.conn(index) {
                conn.interest = events;
            }
        } else {
            self.close_conn(index);
        }
    }

    fn conn_ready(&mut self, index: usize, bits: u32) {
        if bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0 {
            self.close_conn(index);
            return;
        }
        if bits & sys::EPOLLIN != 0 && !self.read_ready(index) {
            return;
        }
        self.drive(index);
    }

    /// Reads everything currently available; `false` means the
    /// connection was closed here.
    fn read_ready(&mut self, index: usize) -> bool {
        loop {
            let Some(conn) = self.conns.get_mut(index).and_then(Option::as_mut) else {
                return false;
            };
            match conn.stream.read(&mut self.scratch) {
                Ok(0) => {
                    // EOF: the peer half-closed. Buffered requests still
                    // get parsed and answered (`drive` closes once the
                    // buffer runs dry), but the read side is done — drop
                    // read interest so a level-triggered EOF cannot spin
                    // the loop.
                    conn.peer_closed = true;
                    self.set_interest(index, 0);
                    return true;
                }
                Ok(n) => {
                    conn.read_buf.extend_from_slice(&self.scratch[..n]);
                    conn.last_activity = Instant::now();
                    // Backpressure for pipelining floods: while a request
                    // is in flight (or a response is still flushing) the
                    // parser is gated, so an aggressive client could grow
                    // this buffer without bound. Past the cap, drop read
                    // interest and let TCP throttle the peer; the parse
                    // path re-arms `EPOLLIN` once the backlog drains.
                    if conn.read_buf.len() > PIPELINE_BUF_CAP
                        && (conn.in_flight || !conn.write_buf.is_empty())
                    {
                        let events = conn.interest & !sys::EPOLLIN;
                        self.set_interest(index, events);
                        return true;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(index);
                    return false;
                }
            }
        }
    }

    /// Advances a connection's state machine as far as it will go
    /// without new readiness: flush pending writes, then parse-and-
    /// dispatch buffered requests, iteratively (never recursively, so a
    /// pipelined flood cannot grow the stack).
    fn drive(&mut self, index: usize) {
        loop {
            match self.flush_step(index) {
                Flush::Pending | Flush::Closed => return,
                Flush::Done => {}
            }
            if !self.parse_step(index) {
                return;
            }
        }
    }

    /// Writes as much of the pending response as the socket takes.
    fn flush_step(&mut self, index: usize) -> Flush {
        loop {
            let Some(conn) = self.conn(index) else {
                return Flush::Closed;
            };
            if conn.write_pos >= conn.write_buf.len() {
                if !conn.write_buf.is_empty() {
                    // Response fully written: recycle the allocation.
                    let mut buf = std::mem::take(&mut conn.write_buf);
                    buf.clear();
                    conn.write_pos = 0;
                    conn.last_activity = Instant::now();
                    if conn.spare.capacity() < buf.capacity() {
                        conn.spare = buf;
                    }
                    if conn.close_after_write {
                        self.close_conn(index);
                        return Flush::Closed;
                    }
                }
                return Flush::Done;
            }
            let pending = &conn.write_buf[conn.write_pos..];
            match conn.stream.write(pending) {
                Ok(0) => {
                    self.close_conn(index);
                    return Flush::Closed;
                }
                Ok(n) => {
                    if let Some(conn) = self.conn(index) {
                        conn.write_pos += n;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.set_interest(index, sys::EPOLLOUT);
                    return Flush::Pending;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(index);
                    return Flush::Closed;
                }
            }
        }
    }

    /// Tries to parse-and-dispatch one request off the read buffer.
    /// Returns `true` when it made progress worth another `drive` turn
    /// (a response was staged for flushing).
    fn parse_step(&mut self, index: usize) -> bool {
        let stopping = self.stop.load(Ordering::SeqCst);
        let max_requests = self.config.max_requests_per_conn;
        let Some(conn) = self.conn(index) else {
            return false;
        };
        if conn.in_flight || !conn.write_buf.is_empty() {
            return false;
        }
        if conn.read_buf.is_empty() {
            if conn.peer_closed {
                // Orderly close: every buffered request was answered and
                // no more can arrive.
                self.close_conn(index);
            } else {
                self.set_interest(index, sys::EPOLLIN);
            }
            return false;
        }
        match http::parse_request(&conn.read_buf) {
            Ok(None) => {
                if conn.peer_closed {
                    // A truncated request that can never complete.
                    self.close_conn(index);
                } else {
                    self.set_interest(index, sys::EPOLLIN);
                }
                false
            }
            Ok(Some((request, consumed))) => {
                conn.read_buf.drain(..consumed);
                conn.served += 1;
                conn.last_activity = Instant::now();
                let keep_alive = request.keep_alive
                    && conn.served < max_requests
                    && !stopping
                    && !conn.peer_closed;
                let job = Job {
                    conn_index: index,
                    conn_id: conn.id,
                    request,
                    keep_alive,
                    buf: std::mem::take(&mut conn.spare),
                };
                conn.in_flight = true;
                let net = &self.state.net;
                net.active.fetch_add(1, Ordering::Relaxed);
                match self.queue.try_push(job) {
                    Ok(depth) => {
                        net.queue_depth.store(depth as u64, Ordering::Relaxed);
                        // Read interest stays armed while the request is
                        // in flight: the `in_flight` gate above keeps a
                        // pipelined follow-up buffered-but-unparsed, and
                        // a well-behaved keep-alive round therefore costs
                        // zero `epoll_ctl` calls. A flooding client is
                        // paused by the `PIPELINE_BUF_CAP` check in
                        // `read_ready` instead.
                        true
                    }
                    Err(job) => {
                        // Queue full (or the server is draining): shed
                        // this request, keep the connection.
                        net.active.fetch_sub(1, Ordering::Relaxed);
                        net.queue_full_rejections.fetch_add(1, Ordering::Relaxed);
                        self.state.stats.errors.fetch_add(1, Ordering::Relaxed);
                        if let Some(conn) = self.conn(index) {
                            conn.in_flight = false;
                            conn.spare = job.buf;
                        }
                        let mut response =
                            ApiError::new(503, "overloaded", "request queue full; retry")
                                .into_response();
                        response.retry_after = Some(1);
                        response.keep_alive = keep_alive;
                        self.stage_response(index, &response);
                        true
                    }
                }
            }
            Err(error) => {
                self.state.stats.errors.fetch_add(1, Ordering::Relaxed);
                let mut response = match error {
                    ParseError::Malformed(reason) => {
                        ApiError::bad_request(format!("malformed request: {reason}"))
                            .into_response()
                    }
                    ParseError::BodyTooLarge => ApiError::new(
                        413,
                        "payload_too_large",
                        format!("body exceeds {} bytes", http::MAX_BODY),
                    )
                    .into_response(),
                };
                response.keep_alive = false;
                if let Some(conn) = self.conn(index) {
                    // The cursor is lost after a framing error; whatever
                    // else the client sent is unusable.
                    conn.read_buf.clear();
                }
                self.stage_response(index, &response);
                true
            }
        }
    }

    /// Encodes an event-loop-authored response (parse errors,
    /// backpressure) into the connection's recycled buffer; the next
    /// `drive` turn flushes it.
    fn stage_response(&mut self, index: usize, response: &Response) {
        let Some(conn) = self.conn(index) else {
            return;
        };
        let mut buf = std::mem::take(&mut conn.spare);
        buf.clear();
        response.write_into(&mut buf);
        conn.write_buf = buf;
        conn.write_pos = 0;
        if !response.keep_alive {
            conn.close_after_write = true;
        }
    }

    /// Lands a worker's response on its connection — unless the
    /// connection died (or was replaced) while the request was in
    /// flight, in which case the response is discarded.
    fn apply_completion(&mut self, completion: Completion) {
        let Some(conn) = self.conn(completion.conn_index) else {
            return;
        };
        if conn.id != completion.conn_id || !conn.in_flight {
            return;
        }
        conn.in_flight = false;
        conn.write_buf = completion.buf;
        conn.write_pos = 0;
        if !completion.keep_alive {
            conn.close_after_write = true;
        }
        self.state.net.active.fetch_sub(1, Ordering::Relaxed);
        self.drive(completion.conn_index);
    }

    /// Closes connections idle past the deadline. A connection with a
    /// request in flight (or bytes still to flush) is active by
    /// definition and never reaped.
    fn reap_idle(&mut self) {
        let deadline = self.config.idle_timeout;
        let mut expired = Vec::new();
        for (index, slot) in self.conns.iter().enumerate() {
            if let Some(conn) = slot {
                if !conn.in_flight
                    && conn.write_buf.is_empty()
                    && conn.last_activity.elapsed() > deadline
                {
                    expired.push(index);
                }
            }
        }
        for index in expired {
            self.state.net.idle_timeouts.fetch_add(1, Ordering::Relaxed);
            self.close_conn(index);
        }
    }
}

impl Drop for EventLoop {
    fn drop(&mut self) {
        sys::close_fd(self.epoll_fd);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_queue_bounds_and_drains() {
        let queue = JobQueue::new(2);
        let job = |i: usize| Job {
            conn_index: i,
            conn_id: i as u64,
            request: Request {
                method: "GET".into(),
                path: "/healthz".into(),
                body: Vec::new(),
                keep_alive: true,
                content_type: None,
                accept: None,
            },
            keep_alive: true,
            buf: Vec::new(),
        };
        assert_eq!(queue.try_push(job(0)).map_err(|_| ()), Ok(1));
        assert!(queue.try_push(job(1)).is_ok());
        assert!(queue.try_push(job(2)).is_err(), "third push exceeds cap");
        let (first, _) = queue.pop().expect("first job");
        assert_eq!(first.conn_index, 0);
        queue.close();
        let (second, _) = queue.pop().expect("queued jobs drain after close");
        assert_eq!(second.conn_index, 1);
        assert!(queue.pop().is_none(), "closed and empty");
    }

    #[test]
    fn wake_fd_rings_and_drains() {
        let wake = WakeFd::new().expect("eventfd");
        wake.wake();
        wake.wake();
        wake.drain();
        // Draining an already-empty fd must not block (EFD_NONBLOCK).
        wake.drain();
    }
}
