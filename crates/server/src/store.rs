//! The stateful session store: live [`DiagnosisSession`]s keyed by
//! opaque ids, with TTL expiry and LRU eviction.
//!
//! A stored session keeps its accumulated evidence and its preallocated
//! propagation workspaces between rounds, so a decision round costs the
//! scoring kernels alone instead of re-paying the fresh-session setup
//! every time (`server_throughput` in `BENCH_inference.json` prices the
//! stored round against the stateless `serve_request_round` path) — and,
//! as important, it gives each device-under-diagnosis an exclusive,
//! bounded-lifetime home on the server.
//!
//! Concurrency model: a round **checks the session out** of the store
//! (holding the store lock only for the map operation), runs the
//! diagnosis kernels unlocked, and checks it back in. Two simultaneous
//! rounds on one session therefore never interleave evidence — the
//! second caller gets `409 session_busy` instead. Busy sessions are
//! exempt from TTL expiry and LRU eviction (they still count toward
//! capacity); a session [`SessionStore::close`]d while busy dies at
//! check-in.

use crate::error::ApiError;
use abbd_core::{
    DiagnosisSession, HierarchicalSession, Observation, Result as CoreResult, SessionReport,
    SessionRequest,
};
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A session as the store holds it: flat (one [`DiagnosisSession`]) or
/// hierarchical (a [`HierarchicalSession`] that descends from the board
/// root into a block sub-model server-side, between rounds). Both speak
/// the same [`SessionRequest`] / [`SessionReport`] wire round, so the
/// round handler and the wire format are agnostic to the kind.
#[derive(Debug)]
pub enum ServedSession {
    /// One compiled model, one session.
    Flat(Box<DiagnosisSession>),
    /// A board session over a compiled hierarchy.
    Hierarchical(Box<HierarchicalSession>),
}

impl ServedSession {
    /// Serves one decision round (transactional on error, both kinds).
    ///
    /// # Errors
    ///
    /// Same as the wrapped session's `serve_round`.
    pub fn serve_round(&mut self, request: &SessionRequest) -> CoreResult<SessionReport> {
        match self {
            ServedSession::Flat(session) => session.serve_round(request),
            ServedSession::Hierarchical(session) => session.serve_round(request),
        }
    }

    /// Records one measurement outside a round.
    ///
    /// # Errors
    ///
    /// Same as the wrapped session's `observe`.
    pub fn observe(&mut self, variable: &str, state: usize) -> CoreResult<()> {
        match self {
            ServedSession::Flat(session) => session.observe(variable, state),
            ServedSession::Hierarchical(session) => session.observe(variable, state),
        }
    }

    /// Flags an observed variable as limit-failing.
    pub fn mark_failing(&mut self, variable: &str) {
        match self {
            ServedSession::Flat(session) => session.mark_failing(variable),
            ServedSession::Hierarchical(session) => session.mark_failing(variable),
        }
    }

    /// The accumulated evidence (the board-level record for a
    /// hierarchical session).
    pub fn observation(&self) -> &Observation {
        match self {
            ServedSession::Flat(session) => session.observation(),
            ServedSession::Hierarchical(session) => session.board_observation(),
        }
    }

    /// The block a hierarchical session has descended into (`None` for
    /// flat sessions and boards still at the root).
    pub fn descended_block(&self) -> Option<&str> {
        match self {
            ServedSession::Flat(_) => None,
            ServedSession::Hierarchical(session) => session.descended_block(),
        }
    }
}

impl From<DiagnosisSession> for ServedSession {
    fn from(session: DiagnosisSession) -> Self {
        ServedSession::Flat(Box::new(session))
    }
}

impl From<HierarchicalSession> for ServedSession {
    fn from(session: HierarchicalSession) -> Self {
        ServedSession::Hierarchical(Box::new(session))
    }
}

/// One live session plus its bookkeeping, as held by (or checked out of)
/// the store.
#[derive(Debug)]
pub struct StoredSession {
    /// The diagnosis session itself (evidence + workspaces + ledger).
    pub session: ServedSession,
    /// The registry name of the model the session serves off.
    pub model: String,
    /// Decision rounds completed so far.
    pub rounds: u64,
    /// `true` once the session's cumulative observation has been folded
    /// into the model's trace aggregate (set on the first terminal
    /// round, so a client polling past isolation contributes one row,
    /// not one per poll).
    pub trace_recorded: bool,
}

#[derive(Debug)]
enum Slot {
    /// Parked in the store, evictable. (Boxed: a session is tens of
    /// inline words next to the unit-sized `Busy`/`Doomed` markers.)
    Idle {
        stored: Box<StoredSession>,
        last_used: Instant,
        lru: u64,
    },
    /// Checked out by a round in flight; unevictable.
    Busy,
    /// Closed while checked out; the check-in drops the session.
    Doomed,
}

#[derive(Debug, Default)]
struct Counters {
    opened: u64,
    expired: u64,
    evicted: u64,
}

#[derive(Debug)]
struct Inner {
    slots: HashMap<String, Slot>,
    /// Monotonic recency clock (bumped per touch; ordering, not time).
    lru_tick: u64,
    /// Session-id sequence.
    next_id: u64,
    counters: Counters,
}

/// Session ids with TTL + LRU lifecycle. All public methods take the
/// current time from the caller-facing wrappers; the `*_at` variants
/// exist so lifecycle tests can drive a synthetic clock.
#[derive(Debug)]
pub struct SessionStore {
    ttl: Duration,
    capacity: usize,
    inner: Mutex<Inner>,
}

/// Store occupancy and lifecycle counters, as reported by `/v1/stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Live sessions (idle + busy).
    pub live: usize,
    /// Sessions ever opened.
    pub opened: u64,
    /// Sessions reaped by TTL expiry.
    pub expired: u64,
    /// Sessions evicted by LRU capacity pressure.
    pub evicted: u64,
}

impl SessionStore {
    /// A store reaping idle sessions after `ttl`, holding at most
    /// `capacity` live sessions (LRU-evicting idle ones beyond that).
    pub fn new(ttl: Duration, capacity: usize) -> Self {
        SessionStore {
            ttl,
            capacity: capacity.max(1),
            inner: Mutex::new(Inner {
                slots: HashMap::new(),
                lru_tick: 0,
                next_id: 1,
                counters: Counters::default(),
            }),
        }
    }

    /// Admits a fresh session, returning its id.
    ///
    /// # Errors
    ///
    /// Returns [`ApiError::store_full`] when the store is at capacity and
    /// every resident session is busy.
    pub fn open(&self, model: &str, session: impl Into<ServedSession>) -> Result<String, ApiError> {
        self.open_at(model, session, Instant::now())
    }

    /// [`SessionStore::open`] on an explicit clock.
    ///
    /// # Errors
    ///
    /// Same as [`SessionStore::open`].
    pub fn open_at(
        &self,
        model: &str,
        session: impl Into<ServedSession>,
        now: Instant,
    ) -> Result<String, ApiError> {
        let mut inner = self.inner.lock().expect("store lock");
        inner.reap_expired(self.ttl, now);
        while inner.slots.len() >= self.capacity {
            if !inner.evict_lru() {
                return Err(ApiError::store_full());
            }
        }
        let id = format!("s{:08x}", inner.next_id);
        inner.next_id += 1;
        inner.counters.opened += 1;
        let lru = inner.tick();
        inner.slots.insert(
            id.clone(),
            Slot::Idle {
                stored: Box::new(StoredSession {
                    session: session.into(),
                    model: model.to_string(),
                    rounds: 0,
                    trace_recorded: false,
                }),
                last_used: now,
                lru,
            },
        );
        Ok(id)
    }

    /// Checks a session out for one decision round, leaving a busy
    /// marker behind.
    ///
    /// # Errors
    ///
    /// [`ApiError::unknown_session`] for absent/expired ids,
    /// [`ApiError::session_busy`] when a round is already in flight.
    pub fn checkout(&self, id: &str) -> Result<StoredSession, ApiError> {
        self.checkout_at(id, Instant::now())
    }

    /// [`SessionStore::checkout`] on an explicit clock.
    ///
    /// # Errors
    ///
    /// Same as [`SessionStore::checkout`].
    pub fn checkout_at(&self, id: &str, now: Instant) -> Result<StoredSession, ApiError> {
        let mut inner = self.inner.lock().expect("store lock");
        inner.reap_expired(self.ttl, now);
        match inner.slots.get_mut(id) {
            None | Some(Slot::Doomed) => Err(ApiError::unknown_session(id)),
            Some(Slot::Busy) => Err(ApiError::session_busy(id)),
            Some(slot) => {
                let Slot::Idle { stored, .. } = std::mem::replace(slot, Slot::Busy) else {
                    unreachable!("non-idle arms matched above");
                };
                Ok(*stored)
            }
        }
    }

    /// Returns a checked-out session to the store, refreshing its TTL
    /// and recency. A session closed while busy is dropped here.
    pub fn checkin(&self, id: &str, stored: StoredSession) {
        self.checkin_at(id, stored, Instant::now());
    }

    /// [`SessionStore::checkin`] on an explicit clock.
    pub fn checkin_at(&self, id: &str, stored: StoredSession, now: Instant) {
        let mut inner = self.inner.lock().expect("store lock");
        let lru = inner.tick();
        match inner.slots.get_mut(id) {
            Some(slot @ Slot::Busy) => {
                *slot = Slot::Idle {
                    stored: Box::new(stored),
                    last_used: now,
                    lru,
                };
            }
            Some(Slot::Doomed) => {
                inner.slots.remove(id);
            }
            // Closed (removed) while busy, or never known: drop silently.
            _ => {}
        }
    }

    /// Closes a session, dropping it now (idle) or at check-in (busy).
    /// Returns whether the id referred to a live session.
    pub fn close(&self, id: &str) -> bool {
        let mut inner = self.inner.lock().expect("store lock");
        match inner.slots.get_mut(id) {
            Some(slot @ Slot::Busy) => {
                *slot = Slot::Doomed;
                true
            }
            Some(Slot::Doomed) => false,
            Some(_) => {
                inner.slots.remove(id);
                true
            }
            None => false,
        }
    }

    /// Forcibly removes a session in *any* state, busy included — the
    /// panic-recovery path: a round that unwound mid-mutation must not
    /// leave a wedged `Busy` marker, and the (possibly inconsistent)
    /// session must never serve again.
    pub fn abort(&self, id: &str) {
        let mut inner = self.inner.lock().expect("store lock");
        inner.slots.remove(id);
    }

    /// Occupancy and lifecycle counters. Reaps expired idle sessions
    /// first, so a monitoring poll (`/healthz`, `/v1/stats`) is enough
    /// to keep an otherwise-idle server's memory bounded by the TTL.
    pub fn stats(&self) -> StoreStats {
        let mut inner = self.inner.lock().expect("store lock");
        inner.reap_expired(self.ttl, Instant::now());
        StoreStats {
            live: inner.slots.len(),
            opened: inner.counters.opened,
            expired: inner.counters.expired,
            evicted: inner.counters.evicted,
        }
    }

    /// Reaps expired idle sessions against an explicit clock (the serving
    /// path piggy-backs this on open/checkout; tests call it directly).
    pub fn reap_at(&self, now: Instant) {
        let mut inner = self.inner.lock().expect("store lock");
        inner.reap_expired(self.ttl, now);
    }
}

impl Inner {
    fn tick(&mut self) -> u64 {
        self.lru_tick += 1;
        self.lru_tick
    }

    fn reap_expired(&mut self, ttl: Duration, now: Instant) {
        let before = self.slots.len();
        self.slots.retain(|_, slot| match slot {
            Slot::Idle { last_used, .. } => now.saturating_duration_since(*last_used) < ttl,
            _ => true,
        });
        self.counters.expired += (before - self.slots.len()) as u64;
    }

    /// Evicts the least-recently-used idle session; `false` when every
    /// resident session is busy.
    fn evict_lru(&mut self) -> bool {
        let victim = self
            .slots
            .iter()
            .filter_map(|(id, slot)| match slot {
                Slot::Idle { lru, .. } => Some((*lru, id.clone())),
                _ => None,
            })
            .min();
        match victim {
            Some((_, id)) => {
                self.slots.remove(&id);
                self.counters.evicted += 1;
                true
            }
            None => false,
        }
    }
}
