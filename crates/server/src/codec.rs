//! The compact binary wire codec: versioned, length-prefixed frames
//! over the same data model the JSON codec serialises.
//!
//! JSON stays the service default; a client opts into this codec per
//! request by sending `content-type: application/x-abbd-binary`
//! ([`CONTENT_TYPE`]) for its body and/or `accept:` the same type for
//! the reply. Because both codecs are total maps over the identical
//! value model (and the JSON shim prints floats shortest-roundtrip),
//! **decoding either wire form yields the same value** — the proptest
//! in `tests/codec.rs` pins that equivalence on arbitrary requests and
//! reports.
//!
//! The payload encoding itself lives in [`serde::binary`]; this module
//! adds the frame header and the typed entry points. Encoding streams
//! through [`serde::Serialize::write_binary`] ([`frame_into`] /
//! [`to_frame`]) and decoding through [`serde::binary::BinReader`]
//! ([`decode_frame`] / [`from_frame`]), so report/request DTOs hit the
//! wire without materialising an intermediate [`serde::Value`] tree —
//! the tree forms ([`write_frame`] / [`read_frame`]) remain for
//! callers that really want a `Value`, and both paths emit and accept
//! bit-identical bytes (pinned by `tests/codec.rs`).
//!
//! ## Frame layout
//!
//! ```text
//! frame   := magic("aB", 2 bytes) version(1 byte, = 1) length(u32 LE) payload
//! payload := value
//! value   := 0x00                                 null
//!          | 0x01                                 false
//!          | 0x02                                 true
//!          | 0x03 f64-LE(8 bytes)                 number
//!          | 0x04 varint(n) utf8[n]               string
//!          | 0x05 varint(n) value*n               array
//!          | 0x06 varint(n) (varint(k) utf8[k] value)*n   object
//! ```
//!
//! `varint` is LEB128 (7 bits per byte, little-endian, high bit =
//! continue). The `length` prefix counts payload bytes only, so a
//! reader can frame a stream without decoding it — the streaming
//! row-oriented `diagnose_batch` body is exactly a sequence of these
//! frames, one per row, never one giant document.
//!
//! Decoding is hardened for the fuzz harness: every length is checked
//! against the remaining buffer before allocation, nesting depth is
//! capped at [`MAX_DEPTH`] (shared with the JSON reader), and every
//! failure is an error value — junk frames at worst cost the client a
//! `400`.

use serde::binary::BinReader;
use serde::{Deserialize, Serialize, Value};

/// Hard cap on value nesting (shared with the JSON reader), so
/// adversarial frames cannot overflow the decoder's stack.
pub use serde::MAX_DEPTH;

/// The negotiated media type for this codec.
pub const CONTENT_TYPE: &str = "application/x-abbd-binary";
/// The two magic bytes opening every frame.
pub const MAGIC: [u8; 2] = *b"aB";
/// The codec version this build writes (and the only one it reads).
pub const VERSION: u8 = 1;

/// Why a frame could not be decoded (maps to `400 bad_request` at the
/// service boundary).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(pub String);

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "binary codec: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

fn err<T>(message: impl Into<String>) -> Result<T, CodecError> {
    Err(CodecError(message.into()))
}

/// Appends the binary encoding of `value` (no frame header) to `out`.
pub fn write_value(value: &Value, out: &mut Vec<u8>) {
    serde::binary::write_value(value, out);
}

/// Appends one whole frame (header + encoded `value`) to `out`.
pub fn write_frame(value: &Value, out: &mut Vec<u8>) {
    frame_into(value, out);
}

/// Appends one whole frame (header + payload) to `out`, streaming the
/// payload through [`Serialize::write_binary`] — no intermediate
/// `Value` tree for types with streaming impls.
pub fn frame_into<T: Serialize + ?Sized>(value: &T, out: &mut Vec<u8>) {
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    let length_at = out.len();
    out.extend_from_slice(&[0u8; 4]);
    value.write_binary(out);
    let payload = (out.len() - length_at - 4) as u32;
    out[length_at..length_at + 4].copy_from_slice(&payload.to_le_bytes());
}

/// Validates the frame header at `*pos`, advancing past it; returns
/// the payload's end offset.
fn frame_header(buf: &[u8], pos: &mut usize) -> Result<usize, CodecError> {
    let end = pos.checked_add(7).filter(|&end| end <= buf.len());
    let Some(header_end) = end else {
        return err("length runs past the end of the frame");
    };
    let header = &buf[*pos..header_end];
    if header[..2] != MAGIC {
        return err("bad frame magic");
    }
    if header[2] != VERSION {
        return err(format!("unsupported codec version {}", header[2]));
    }
    let mut raw = [0u8; 4];
    raw.copy_from_slice(&header[3..7]);
    let payload_len = u32::from_le_bytes(raw) as usize;
    *pos = header_end;
    let payload_end = pos.checked_add(payload_len).filter(|&end| end <= buf.len());
    let Some(payload_end) = payload_end else {
        return err("frame length runs past the end of the buffer");
    };
    Ok(payload_end)
}

/// Reads one frame starting at `*pos`, advancing `*pos` past it.
///
/// # Errors
///
/// Fails on a bad magic/version, a length prefix running past the end
/// of `buf`, trailing payload garbage, or a malformed value encoding.
pub fn read_frame(buf: &[u8], pos: &mut usize) -> Result<Value, CodecError> {
    decode_frame(buf, pos)
}

/// Reads one frame starting at `*pos` straight into a
/// serde-deserialisable type (no intermediate `Value` for types with
/// streaming impls), advancing `*pos` past it.
///
/// # Errors
///
/// Fails like [`read_frame`], plus on shape mismatches from the target
/// type's `Deserialize`.
pub fn decode_frame<T: Deserialize>(buf: &[u8], pos: &mut usize) -> Result<T, CodecError> {
    let payload_end = frame_header(buf, pos)?;
    let mut reader = BinReader::new(&buf[*pos..payload_end]);
    let value = T::read_from(&mut reader).map_err(|e| CodecError(e.0))?;
    reader.expect_end().map_err(|e| CodecError(e.0))?;
    *pos = payload_end;
    Ok(value)
}

/// Encodes any serde-serialisable value as one binary frame, streaming
/// through [`frame_into`].
pub fn to_frame<T: Serialize>(value: &T) -> Vec<u8> {
    let mut out = Vec::with_capacity(256);
    frame_into(value, &mut out);
    out
}

/// Decodes exactly one binary frame into a serde-deserialisable value
/// (trailing bytes after the frame are an error — this is the
/// whole-body form; use [`decode_frame`] for streams of frames).
///
/// # Errors
///
/// Propagates [`decode_frame`] failures plus shape mismatches from the
/// target type's `Deserialize`.
pub fn from_frame<T: Deserialize>(bytes: &[u8]) -> Result<T, CodecError> {
    let mut pos = 0usize;
    let value = decode_frame(bytes, &mut pos)?;
    if pos != bytes.len() {
        return err("trailing bytes after the frame");
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::binary::{TAG_ARR, TAG_NULL};

    fn round_trip(value: &Value) -> Value {
        let mut out = Vec::new();
        write_frame(value, &mut out);
        let mut pos = 0;
        let back = read_frame(&out, &mut pos).expect("frame decodes");
        assert_eq!(pos, out.len(), "frame fully consumed");
        back
    }

    #[test]
    fn scalars_and_composites_round_trip() {
        for value in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Num(0.0),
            Value::Num(-1.5),
            Value::Num(f64::MIN_POSITIVE),
            Value::Str(String::new()),
            Value::Str("delta".into()),
            Value::Arr(vec![Value::Num(1.0), Value::Str("x".into()), Value::Null]),
            Value::Obj(vec![
                ("a".into(), Value::Arr(vec![])),
                (
                    "b".into(),
                    Value::Obj(vec![("c".into(), Value::Bool(true))]),
                ),
            ]),
        ] {
            assert_eq!(round_trip(&value), value);
        }
    }

    #[test]
    fn frames_concatenate_into_streams() {
        let mut out = Vec::new();
        write_frame(&Value::Num(1.0), &mut out);
        write_frame(&Value::Str("row".into()), &mut out);
        let mut pos = 0;
        assert_eq!(read_frame(&out, &mut pos).unwrap(), Value::Num(1.0));
        assert_eq!(
            read_frame(&out, &mut pos).unwrap(),
            Value::Str("row".into())
        );
        assert_eq!(pos, out.len());
    }

    #[test]
    fn junk_is_an_error_not_a_panic() {
        for junk in [
            &b""[..],
            b"aB",
            b"xx\x01\x00\x00\x00\x00",
            b"aB\x02\x00\x00\x00\x00",         // wrong version
            b"aB\x01\xff\xff\xff\xff\x00",     // length past the end
            b"aB\x01\x01\x00\x00\x00\x99",     // unknown tag
            b"aB\x01\x02\x00\x00\x00\x00\x00", // trailing payload bytes
            b"aB\x01\x02\x00\x00\x00\x04\xff", // truncated string length
            b"aB\x01\x06\x00\x00\x00\x05\xff\xff\xff\xff\x0f", // huge array count
        ] {
            let mut pos = 0;
            assert!(read_frame(junk, &mut pos).is_err(), "{junk:?}");
        }
    }

    #[test]
    fn deep_nesting_is_capped() {
        // MAX_DEPTH+2 nested single-element arrays: tag+count each.
        let mut payload = Vec::new();
        for _ in 0..(MAX_DEPTH + 2) {
            payload.extend_from_slice(&[TAG_ARR, 1]);
        }
        payload.push(TAG_NULL);
        let mut framed = Vec::new();
        framed.extend_from_slice(&MAGIC);
        framed.push(VERSION);
        framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        framed.extend_from_slice(&payload);
        let mut pos = 0;
        let error = read_frame(&framed, &mut pos).expect_err("depth cap holds");
        assert!(error.0.contains("deep"), "{error}");
    }

    #[test]
    fn streaming_frames_match_the_value_path() {
        let value = Value::Obj(vec![
            ("action".into(), Value::Str("probe".into())),
            ("gain".into(), Value::Num(0.25)),
            ("rows".into(), Value::Arr(vec![Value::Num(1.0)])),
        ]);
        let mut streamed = Vec::new();
        frame_into(&value, &mut streamed);
        let mut via_tree = Vec::new();
        write_frame(&value, &mut via_tree);
        assert_eq!(streamed, via_tree);
        let decoded: Value = from_frame(&streamed).unwrap();
        assert_eq!(decoded, value);
    }
}
