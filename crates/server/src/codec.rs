//! The compact binary wire codec: versioned, length-prefixed frames
//! over the same [`serde::Value`] tree the JSON codec serialises.
//!
//! JSON stays the service default; a client opts into this codec per
//! request by sending `content-type: application/x-abbd-binary`
//! ([`CONTENT_TYPE`]) for its body and/or `accept:` the same type for
//! the reply. Because both codecs are total maps over the identical
//! `Value` tree (and the JSON shim prints floats shortest-roundtrip),
//! **decoding either wire form yields the same value** — the proptest
//! in `tests/codec.rs` pins that equivalence on arbitrary requests and
//! reports.
//!
//! ## Frame layout
//!
//! ```text
//! frame   := magic("aB", 2 bytes) version(1 byte, = 1) length(u32 LE) payload
//! payload := value
//! value   := 0x00                                 null
//!          | 0x01                                 false
//!          | 0x02                                 true
//!          | 0x03 f64-LE(8 bytes)                 number
//!          | 0x04 varint(n) utf8[n]               string
//!          | 0x05 varint(n) value*n               array
//!          | 0x06 varint(n) (varint(k) utf8[k] value)*n   object
//! ```
//!
//! `varint` is LEB128 (7 bits per byte, little-endian, high bit =
//! continue). The `length` prefix counts payload bytes only, so a
//! reader can frame a stream without decoding it — the streaming
//! row-oriented `diagnose_batch` body is exactly a sequence of these
//! frames, one per row, never one giant document.
//!
//! Decoding is hardened for the fuzz harness: every length is checked
//! against the remaining buffer before allocation, nesting depth is
//! capped at [`MAX_DEPTH`], and every failure is an error value — junk
//! frames at worst cost the client a `400`.

use serde::{Deserialize, Serialize, Value};

/// The negotiated media type for this codec.
pub const CONTENT_TYPE: &str = "application/x-abbd-binary";
/// The two magic bytes opening every frame.
pub const MAGIC: [u8; 2] = *b"aB";
/// The codec version this build writes (and the only one it reads).
pub const VERSION: u8 = 1;
/// Hard cap on value-tree nesting, so adversarial frames cannot
/// overflow the decoder's stack.
pub const MAX_DEPTH: usize = 128;

const TAG_NULL: u8 = 0x00;
const TAG_FALSE: u8 = 0x01;
const TAG_TRUE: u8 = 0x02;
const TAG_NUM: u8 = 0x03;
const TAG_STR: u8 = 0x04;
const TAG_ARR: u8 = 0x05;
const TAG_OBJ: u8 = 0x06;

/// Why a frame could not be decoded (maps to `400 bad_request` at the
/// service boundary).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(pub String);

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "binary codec: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

fn err<T>(message: impl Into<String>) -> Result<T, CodecError> {
    Err(CodecError(message.into()))
}

fn write_varint(mut n: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (n & 0x7f) as u8;
        n >>= 7;
        if n == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(buf: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    let mut n = 0u64;
    for shift in (0..64).step_by(7) {
        let Some(&byte) = buf.get(*pos) else {
            return err("truncated varint");
        };
        *pos += 1;
        n |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(n);
        }
    }
    err("varint too long")
}

/// Appends the binary encoding of `value` (no frame header) to `out`.
pub fn write_value(value: &Value, out: &mut Vec<u8>) {
    match value {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(false) => out.push(TAG_FALSE),
        Value::Bool(true) => out.push(TAG_TRUE),
        Value::Num(n) => {
            out.push(TAG_NUM);
            out.extend_from_slice(&n.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            write_varint(s.len() as u64, out);
            out.extend_from_slice(s.as_bytes());
        }
        Value::Arr(items) => {
            out.push(TAG_ARR);
            write_varint(items.len() as u64, out);
            for item in items {
                write_value(item, out);
            }
        }
        Value::Obj(entries) => {
            out.push(TAG_OBJ);
            write_varint(entries.len() as u64, out);
            for (key, item) in entries {
                write_varint(key.len() as u64, out);
                out.extend_from_slice(key.as_bytes());
                write_value(item, out);
            }
        }
    }
}

fn read_exact<'b>(buf: &'b [u8], pos: &mut usize, len: usize) -> Result<&'b [u8], CodecError> {
    let end = pos.checked_add(len).filter(|&end| end <= buf.len());
    let Some(end) = end else {
        return err("length runs past the end of the frame");
    };
    let bytes = &buf[*pos..end];
    *pos = end;
    Ok(bytes)
}

fn read_string(buf: &[u8], pos: &mut usize) -> Result<String, CodecError> {
    let len = read_varint(buf, pos)?;
    let len = usize::try_from(len).map_err(|_| CodecError("string length overflows".into()))?;
    let bytes = read_exact(buf, pos, len)?;
    match std::str::from_utf8(bytes) {
        Ok(s) => Ok(s.to_string()),
        Err(_) => err("non-UTF-8 string bytes"),
    }
}

fn read_value_at(buf: &[u8], pos: &mut usize, depth: usize) -> Result<Value, CodecError> {
    if depth > MAX_DEPTH {
        return err("nesting too deep");
    }
    let Some(&tag) = buf.get(*pos) else {
        return err("truncated value");
    };
    *pos += 1;
    match tag {
        TAG_NULL => Ok(Value::Null),
        TAG_FALSE => Ok(Value::Bool(false)),
        TAG_TRUE => Ok(Value::Bool(true)),
        TAG_NUM => {
            let bytes = read_exact(buf, pos, 8)?;
            let mut raw = [0u8; 8];
            raw.copy_from_slice(bytes);
            Ok(Value::Num(f64::from_bits(u64::from_le_bytes(raw))))
        }
        TAG_STR => Ok(Value::Str(read_string(buf, pos)?)),
        TAG_ARR => {
            let count = read_varint(buf, pos)?;
            let count =
                usize::try_from(count).map_err(|_| CodecError("array length overflows".into()))?;
            // Each element costs ≥ 1 byte, so an honest count never
            // exceeds what is left — refuse it before allocating.
            if count > buf.len() - *pos {
                return err("array length runs past the end of the frame");
            }
            let mut items = Vec::with_capacity(count);
            for _ in 0..count {
                items.push(read_value_at(buf, pos, depth + 1)?);
            }
            Ok(Value::Arr(items))
        }
        TAG_OBJ => {
            let count = read_varint(buf, pos)?;
            let count =
                usize::try_from(count).map_err(|_| CodecError("object length overflows".into()))?;
            if count > buf.len() - *pos {
                return err("object length runs past the end of the frame");
            }
            let mut entries = Vec::with_capacity(count);
            for _ in 0..count {
                let key = read_string(buf, pos)?;
                let item = read_value_at(buf, pos, depth + 1)?;
                entries.push((key, item));
            }
            Ok(Value::Obj(entries))
        }
        other => err(format!("unknown value tag 0x{other:02x}")),
    }
}

/// Appends one whole frame (header + encoded `value`) to `out`.
pub fn write_frame(value: &Value, out: &mut Vec<u8>) {
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    let length_at = out.len();
    out.extend_from_slice(&[0u8; 4]);
    write_value(value, out);
    let payload = (out.len() - length_at - 4) as u32;
    out[length_at..length_at + 4].copy_from_slice(&payload.to_le_bytes());
}

/// Reads one frame starting at `*pos`, advancing `*pos` past it.
///
/// # Errors
///
/// Fails on a bad magic/version, a length prefix running past the end
/// of `buf`, trailing payload garbage, or a malformed value encoding.
pub fn read_frame(buf: &[u8], pos: &mut usize) -> Result<Value, CodecError> {
    let header = read_exact(buf, pos, 3)?;
    if header[..2] != MAGIC {
        return err("bad frame magic");
    }
    if header[2] != VERSION {
        return err(format!("unsupported codec version {}", header[2]));
    }
    let length = read_exact(buf, pos, 4)?;
    let mut raw = [0u8; 4];
    raw.copy_from_slice(length);
    let payload_len = u32::from_le_bytes(raw) as usize;
    let payload_end = pos.checked_add(payload_len).filter(|&end| end <= buf.len());
    let Some(payload_end) = payload_end else {
        return err("frame length runs past the end of the buffer");
    };
    let value = read_value_at(&buf[..payload_end], pos, 0)?;
    if *pos != payload_end {
        return err("trailing bytes after the framed value");
    }
    Ok(value)
}

/// Encodes any serde-serialisable value as one binary frame.
pub fn to_frame<T: Serialize>(value: &T) -> Vec<u8> {
    let mut out = Vec::with_capacity(256);
    write_frame(&value.to_value(), &mut out);
    out
}

/// Decodes exactly one binary frame into a serde-deserialisable value
/// (trailing bytes after the frame are an error — this is the
/// whole-body form; use [`read_frame`] for streams of frames).
///
/// # Errors
///
/// Propagates [`read_frame`] failures plus shape mismatches from the
/// target type's `Deserialize`.
pub fn from_frame<T: Deserialize>(bytes: &[u8]) -> Result<T, CodecError> {
    let mut pos = 0usize;
    let value = read_frame(bytes, &mut pos)?;
    if pos != bytes.len() {
        return err("trailing bytes after the frame");
    }
    T::from_value(&value).map_err(|e| CodecError(e.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(value: &Value) -> Value {
        let mut out = Vec::new();
        write_frame(value, &mut out);
        let mut pos = 0;
        let back = read_frame(&out, &mut pos).expect("frame decodes");
        assert_eq!(pos, out.len(), "frame fully consumed");
        back
    }

    #[test]
    fn scalars_and_composites_round_trip() {
        for value in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Num(0.0),
            Value::Num(-1.5),
            Value::Num(f64::MIN_POSITIVE),
            Value::Str(String::new()),
            Value::Str("delta".into()),
            Value::Arr(vec![Value::Num(1.0), Value::Str("x".into()), Value::Null]),
            Value::Obj(vec![
                ("a".into(), Value::Arr(vec![])),
                (
                    "b".into(),
                    Value::Obj(vec![("c".into(), Value::Bool(true))]),
                ),
            ]),
        ] {
            assert_eq!(round_trip(&value), value);
        }
    }

    #[test]
    fn frames_concatenate_into_streams() {
        let mut out = Vec::new();
        write_frame(&Value::Num(1.0), &mut out);
        write_frame(&Value::Str("row".into()), &mut out);
        let mut pos = 0;
        assert_eq!(read_frame(&out, &mut pos).unwrap(), Value::Num(1.0));
        assert_eq!(
            read_frame(&out, &mut pos).unwrap(),
            Value::Str("row".into())
        );
        assert_eq!(pos, out.len());
    }

    #[test]
    fn junk_is_an_error_not_a_panic() {
        for junk in [
            &b""[..],
            b"aB",
            b"xx\x01\x00\x00\x00\x00",
            b"aB\x02\x00\x00\x00\x00",         // wrong version
            b"aB\x01\xff\xff\xff\xff\x00",     // length past the end
            b"aB\x01\x01\x00\x00\x00\x99",     // unknown tag
            b"aB\x01\x02\x00\x00\x00\x00\x00", // trailing payload bytes
            b"aB\x01\x02\x00\x00\x00\x04\xff", // truncated string length
            b"aB\x01\x06\x00\x00\x00\x05\xff\xff\xff\xff\x0f", // huge array count
        ] {
            let mut pos = 0;
            assert!(read_frame(junk, &mut pos).is_err(), "{junk:?}");
        }
    }

    #[test]
    fn deep_nesting_is_capped() {
        // MAX_DEPTH+2 nested single-element arrays: tag+count each.
        let mut payload = Vec::new();
        for _ in 0..(MAX_DEPTH + 2) {
            payload.extend_from_slice(&[TAG_ARR, 1]);
        }
        payload.push(TAG_NULL);
        let mut framed = Vec::new();
        framed.extend_from_slice(&MAGIC);
        framed.push(VERSION);
        framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        framed.extend_from_slice(&payload);
        let mut pos = 0;
        let error = read_frame(&framed, &mut pos).expect_err("depth cap holds");
        assert!(error.0.contains("deep"), "{error}");
    }
}
