//! The diagnostic engine: evidence in, posteriors and ranked fail
//! candidates out (the paper's "diagnostic mode", with the deduction of
//! §IV-B automated).

use crate::builder::DiagnosticModel;
use crate::deduce::{Candidate, DeductionPolicy, HealthClass};
use crate::error::Result;
use crate::session::CompiledModel;
use abbd_bbn::{Evidence, JunctionTree, PropagationWorkspace};
use abbd_dlog2bbn::NamedCase;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The observed states of controllable and observable blocks for one
/// failing device under one test configuration (a row of paper Table VI).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    pairs: Vec<(String, usize)>,
    failing: Vec<String>,
}

impl Observation {
    /// An empty observation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `variable = state`, replacing any previous entry.
    pub fn set<N: Into<String>>(&mut self, variable: N, state: usize) -> &mut Self {
        let name = variable.into();
        if let Some(slot) = self.pairs.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = state;
        } else {
            self.pairs.push((name, state));
        }
        self
    }

    /// Marks `variable` as having failed its ATE limits. Failing
    /// observables become self-candidates when nothing upstream explains
    /// them.
    pub fn mark_failing<N: Into<String>>(&mut self, variable: N) -> &mut Self {
        let name = variable.into();
        if !self.failing.contains(&name) {
            self.failing.push(name);
        }
        self
    }

    /// The observed state of `variable`, if present.
    pub fn state_of(&self, variable: &str) -> Option<usize> {
        self.pairs
            .iter()
            .find(|(n, _)| n == variable)
            .map(|(_, s)| *s)
    }

    /// Iterates `(variable, state)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, usize)> + '_ {
        self.pairs.iter().map(|(n, s)| (n.as_str(), *s))
    }

    /// The variables marked as failing their measurements.
    pub fn failing(&self) -> &[String] {
        &self.failing
    }

    /// Number of observed variables.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// `true` when nothing is observed.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

impl From<&NamedCase> for Observation {
    fn from(case: &NamedCase) -> Self {
        Observation {
            pairs: case.assignment.clone(),
            failing: case.failing.clone(),
        }
    }
}

impl<N: Into<String>> FromIterator<(N, usize)> for Observation {
    fn from_iter<I: IntoIterator<Item = (N, usize)>>(iter: I) -> Self {
        let mut o = Observation::new();
        for (n, s) in iter {
            o.set(n, s);
        }
        o
    }
}

/// The outcome of diagnosing one observation.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnosis {
    observation: Observation,
    posteriors: Vec<(String, Vec<f64>)>,
    fault_mass: BTreeMap<String, f64>,
    classes: BTreeMap<String, HealthClass>,
    candidates: Vec<Candidate>,
    log_likelihood: f64,
}

impl Diagnosis {
    /// Assembles a diagnosis from the kernel's parts (crate-internal:
    /// only [`CompiledModel::diagnose_in`] builds these).
    pub(crate) fn from_parts(
        observation: Observation,
        posteriors: Vec<(String, Vec<f64>)>,
        fault_mass: BTreeMap<String, f64>,
        classes: BTreeMap<String, HealthClass>,
        candidates: Vec<Candidate>,
        log_likelihood: f64,
    ) -> Self {
        Diagnosis {
            observation,
            posteriors,
            fault_mass,
            classes,
            candidates,
            log_likelihood,
        }
    }

    /// The observation this diagnosis explains.
    pub fn observation(&self) -> &Observation {
        &self.observation
    }

    /// Posterior state distributions for every model variable, in spec
    /// order.
    pub fn posteriors(&self) -> &[(String, Vec<f64>)] {
        &self.posteriors
    }

    /// The posterior distribution of one variable.
    pub fn posterior_of(&self, variable: &str) -> Option<&[f64]> {
        self.posteriors
            .iter()
            .find(|(n, _)| n == variable)
            .map(|(_, d)| d.as_slice())
    }

    /// Posterior fault-state mass per latent variable.
    pub fn fault_mass(&self) -> &BTreeMap<String, f64> {
        &self.fault_mass
    }

    /// Health classification per latent variable.
    pub fn classes(&self) -> &BTreeMap<String, HealthClass> {
        &self.classes
    }

    /// Ranked fail candidates (most suspicious first).
    pub fn candidates(&self) -> &[Candidate] {
        &self.candidates
    }

    /// The top candidate's variable name, if any.
    pub fn top_candidate(&self) -> Option<&str> {
        self.candidates.first().map(|c| c.variable.as_str())
    }

    /// `ln P(observation)` under the fitted model.
    pub fn log_likelihood(&self) -> f64 {
        self.log_likelihood
    }
}

/// A compiled diagnostic engine over a fitted model.
///
/// Compilation happens once; each [`DiagnosticEngine::diagnose`] call is a
/// junction-tree propagation plus the deduction walk.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), abbd_core::Error> {
/// use abbd_core::{CircuitModel, DiagnosticEngine, ModelBuilder, Observation};
/// use abbd_dlog2bbn::{FunctionalType, ModelSpec, StateBand, VariableSpec};
///
/// let spec = ModelSpec::new([
///     VariableSpec {
///         name: "bias".into(),
///         ftype: FunctionalType::Latent,
///         bands: vec![
///             StateBand::new("0", 0.0, 1.0, "non-operational"),
///             StateBand::new("1", 1.0, 1.4, "operational"),
///         ],
///         ckt_ref: None,
///     },
///     VariableSpec {
///         name: "out".into(),
///         ftype: FunctionalType::Observe,
///         bands: vec![
///             StateBand::new("0", 0.0, 4.5, "fail"),
///             StateBand::new("1", 4.5, 5.5, "pass"),
///         ],
///         ckt_ref: None,
///     },
/// ])?;
/// let mut model = CircuitModel::new(spec);
/// model.depends("bias", "out")?;
/// let mut expert = abbd_core::ExpertKnowledge::new(10.0);
/// expert.cpt("bias", [[0.1, 0.9]]);
/// expert.cpt("out", [[0.95, 0.05], [0.1, 0.9]]);
/// let fitted = ModelBuilder::new(model).with_expert(expert).build_expert_only()?;
///
/// let engine = DiagnosticEngine::new(fitted)?;
/// let mut seen = Observation::new();
/// seen.set("out", 0); // the output failed
/// let diagnosis = engine.diagnose(&seen)?;
/// assert_eq!(diagnosis.top_candidate(), Some("bias"));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DiagnosticEngine {
    compiled: Arc<CompiledModel>,
}

impl DiagnosticEngine {
    /// Compiles an engine with the default deduction policy.
    ///
    /// This is now a thin handle over the shareable
    /// [`CompiledModel`] — compile once here, then open any number of
    /// concurrent [`crate::DiagnosisSession`]s on
    /// [`DiagnosticEngine::compiled`]. Cloning the engine shares the
    /// compilation (two reference-count bumps, no recompilation).
    ///
    /// # Errors
    ///
    /// Propagates junction-tree compilation errors.
    pub fn new(model: DiagnosticModel) -> Result<Self> {
        Ok(DiagnosticEngine {
            compiled: CompiledModel::compile(model)?.shared(),
        })
    }

    /// Wraps an already-compiled model (sharing it, not re-compiling).
    pub fn from_compiled(compiled: Arc<CompiledModel>) -> Self {
        DiagnosticEngine { compiled }
    }

    /// The shareable compilation artifact behind the engine: hand clones
    /// of this [`Arc`] to concurrent [`crate::DiagnosisSession`]s.
    pub fn compiled(&self) -> &Arc<CompiledModel> {
        &self.compiled
    }

    /// Replaces the deduction policy.
    ///
    /// When the compilation is already shared with live sessions, they
    /// keep serving off the old policy; this engine re-shares a copy with
    /// the new one (the junction tree itself is never recompiled).
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::InvalidPolicy`] for malformed thresholds.
    pub fn with_policy(mut self, policy: DeductionPolicy) -> Result<Self> {
        policy.validate()?;
        Arc::make_mut(&mut self.compiled).set_policy(policy);
        Ok(self)
    }

    /// The fitted model behind the engine.
    pub fn model(&self) -> &DiagnosticModel {
        self.compiled.model()
    }

    /// The active deduction policy.
    pub fn policy(&self) -> &DeductionPolicy {
        self.compiled.policy()
    }

    /// The compiled junction tree the engine propagates through. Crate
    /// modules (probe ranking, sequential diagnosis) reuse it instead of
    /// recompiling per call.
    pub(crate) fn jt(&self) -> &JunctionTree {
        self.compiled.jt()
    }

    /// The model's baseline ("Init. prob.%" in paper Table VII): state
    /// distributions with no evidence entered.
    ///
    /// # Errors
    ///
    /// Propagates propagation errors.
    pub fn baseline(&self) -> Result<Vec<(String, Vec<f64>)>> {
        self.compiled.baseline()
    }

    /// Converts an observation into network evidence.
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::InvalidObservation`] for unknown variables or
    /// out-of-range states.
    pub fn evidence_from(&self, observation: &Observation) -> Result<Evidence> {
        self.compiled.evidence_from(observation)
    }

    /// Allocates a propagation workspace sized for this engine's compiled
    /// tree; feed it to [`DiagnosticEngine::diagnose_with`] to diagnose a
    /// stream of boards without per-board inference allocations.
    pub fn make_workspace(&self) -> PropagationWorkspace {
        self.compiled.make_workspace()
    }

    /// Diagnoses one observation: posterior update (Bayes theorem over the
    /// whole network) followed by the §IV-B candidate deduction.
    ///
    /// # Errors
    ///
    /// Returns observation-validation errors and
    /// [`abbd_bbn::Error::ImpossibleEvidence`] (wrapped) when the
    /// observation has zero probability under the model.
    pub fn diagnose(&self, observation: &Observation) -> Result<Diagnosis> {
        self.diagnose_with(&mut self.make_workspace(), observation)
    }

    /// [`DiagnosticEngine::diagnose`] with a caller-provided reusable
    /// workspace: the junction-tree propagation runs entirely inside
    /// preallocated buffers, which is what the batch path and long-lived
    /// query loops use.
    ///
    /// # Errors
    ///
    /// Same as [`DiagnosticEngine::diagnose`].
    pub fn diagnose_with(
        &self,
        ws: &mut PropagationWorkspace,
        observation: &Observation,
    ) -> Result<Diagnosis> {
        let evidence = self.evidence_from(observation)?;
        self.diagnose_with_evidence(ws, observation, &evidence)
    }

    /// [`DiagnosticEngine::diagnose_with`] over evidence the caller
    /// already derived from `observation` (and keeps in lockstep with
    /// it). The sequential decision loop calls this every iteration, so
    /// it must not pay for rebuilding the evidence map per diagnosis.
    pub(crate) fn diagnose_with_evidence(
        &self,
        ws: &mut PropagationWorkspace,
        observation: &Observation,
        evidence: &Evidence,
    ) -> Result<Diagnosis> {
        self.compiled.diagnose_in(ws, observation, evidence)
    }

    /// Diagnoses a whole batch of independent observations (one per board
    /// under test) in parallel against this one compiled engine, with a
    /// reused propagation workspace per worker thread.
    ///
    /// Results come back in input order. Each board succeeds or fails
    /// independently — a malformed or impossible observation yields an
    /// `Err` in its slot without poisoning the rest of the batch, matching
    /// how an ATE flow must tolerate individual weird boards.
    pub fn diagnose_batch(&self, observations: &[Observation]) -> Vec<Result<Diagnosis>> {
        observations
            .par_iter()
            .map_init(
                || self.make_workspace(),
                |ws, obs| self.diagnose_with(ws, obs),
            )
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{ExpertKnowledge, ModelBuilder};
    use crate::error::Error;
    use crate::model::CircuitModel;
    use abbd_dlog2bbn::{FunctionalType, ModelSpec, StateBand, VariableSpec};

    /// pin (control) -> bias (latent) -> {out1, out2} (observed);
    /// second latent `load` -> out2 only.
    fn engine() -> DiagnosticEngine {
        let var = |name: &str, ftype| VariableSpec {
            name: name.into(),
            ftype,
            bands: vec![
                StateBand::new("0", 0.0, 1.0, "bad"),
                StateBand::new("1", 1.0, 2.0, "good"),
            ],
            ckt_ref: None,
        };
        let spec = ModelSpec::new([
            var("pin", FunctionalType::Control),
            var("bias", FunctionalType::Latent),
            var("load", FunctionalType::Latent),
            var("out1", FunctionalType::Observe),
            var("out2", FunctionalType::Observe),
        ])
        .unwrap();
        let mut m = CircuitModel::new(spec);
        m.depends("pin", "bias").unwrap();
        m.depends("bias", "out1").unwrap();
        m.depends("bias", "out2").unwrap();
        m.depends("load", "out2").unwrap();

        let mut e = ExpertKnowledge::new(10.0);
        e.cpt("pin", [[0.5, 0.5]]);
        e.cpt("bias", [[0.9, 0.1], [0.05, 0.95]]);
        e.cpt("load", [[0.1, 0.9]]);
        e.cpt("out1", [[0.95, 0.05], [0.05, 0.95]]);
        // parents: bias, load (last fastest)
        e.cpt(
            "out2",
            [[0.97, 0.03], [0.9, 0.1], [0.85, 0.15], [0.02, 0.98]],
        );
        let dm = ModelBuilder::new(m)
            .with_expert(e)
            .build_expert_only()
            .unwrap();
        DiagnosticEngine::new(dm).unwrap()
    }

    #[test]
    fn observation_builders() {
        let mut o = Observation::new();
        assert!(o.is_empty());
        o.set("a", 1).set("b", 0).set("a", 2);
        assert_eq!(o.len(), 2);
        assert_eq!(o.state_of("a"), Some(2));
        assert_eq!(o.state_of("c"), None);
        let o2: Observation = [("x", 1)].into_iter().collect();
        assert_eq!(o2.iter().count(), 1);

        let case = NamedCase {
            device_id: 1,
            suite: "s".into(),
            assignment: vec![("v".into(), 1)],
            failing: vec![],
            truth: vec![],
        };
        let from_case = Observation::from(&case);
        assert_eq!(from_case.state_of("v"), Some(1));
    }

    #[test]
    fn baseline_matches_prior() {
        let eng = engine();
        let baseline = eng.baseline().unwrap();
        let (name, dist) = &baseline[0];
        assert_eq!(name, "pin");
        assert!((dist[0] - 0.5).abs() < 1e-9);
        assert_eq!(baseline.len(), 5);
    }

    #[test]
    fn failing_outputs_implicate_bias() {
        let eng = engine();
        let mut obs = Observation::new();
        obs.set("pin", 1).set("out1", 0).set("out2", 0);
        let d = eng.diagnose(&obs).unwrap();
        assert_eq!(d.top_candidate(), Some("bias"));
        assert!(d.fault_mass()["bias"] > 0.5);
        assert!(d.log_likelihood() < 0.0);
        // Observed variables collapse to point masses.
        assert!((d.posterior_of("out1").unwrap()[0] - 1.0).abs() < 1e-9);
        assert_eq!(d.posterior_of("ghost"), None);
        assert_eq!(d.observation().len(), 3);
        assert!(!d.candidates().is_empty());
        assert!(d.classes().contains_key("bias"));
    }

    #[test]
    fn out2_only_failure_implicates_load() {
        let eng = engine();
        let mut obs = Observation::new();
        obs.set("pin", 1).set("out1", 1).set("out2", 0);
        let d = eng.diagnose(&obs).unwrap();
        assert_eq!(d.top_candidate(), Some("load"));
        assert!(d.fault_mass()["load"] > d.fault_mass()["bias"]);
    }

    #[test]
    fn healthy_device_yields_no_candidates() {
        let eng = engine();
        let mut obs = Observation::new();
        obs.set("pin", 1).set("out1", 1).set("out2", 1);
        let d = eng.diagnose(&obs).unwrap();
        assert!(d.candidates().is_empty(), "got {:?}", d.candidates());
    }

    #[test]
    fn diagnose_batch_matches_sequential_and_isolates_failures() {
        let eng = engine();
        let mut batch: Vec<Observation> = Vec::new();
        for (o1, o2) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
            let mut obs = Observation::new();
            obs.set("pin", 1).set("out1", o1).set("out2", o2);
            batch.push(obs);
        }
        let mut ghost = Observation::new();
        ghost.set("ghost", 0);
        batch.push(ghost);

        let results = eng.diagnose_batch(&batch);
        assert_eq!(results.len(), batch.len());
        for (obs, got) in batch[..4].iter().zip(&results) {
            let sequential = eng.diagnose(obs).unwrap();
            let got = got.as_ref().expect("valid observation");
            assert_eq!(
                got.posteriors(),
                sequential.posteriors(),
                "batch must be exact"
            );
            assert_eq!(got.candidates(), sequential.candidates());
            assert!((got.log_likelihood() - sequential.log_likelihood()).abs() < 1e-15);
        }
        assert!(matches!(results[4], Err(Error::InvalidObservation { .. })));
    }

    #[test]
    fn rejects_bad_observations() {
        let eng = engine();
        let mut ghost = Observation::new();
        ghost.set("ghost", 0);
        assert!(matches!(
            eng.diagnose(&ghost),
            Err(Error::InvalidObservation { .. })
        ));
        let mut oob = Observation::new();
        oob.set("pin", 9);
        assert!(matches!(
            eng.diagnose(&oob),
            Err(Error::InvalidObservation { .. })
        ));
    }

    #[test]
    fn policy_is_replaceable() {
        let eng = engine();
        let strict = DeductionPolicy {
            faulty_threshold: 0.95,
            healthy_threshold: 0.95 - 1e-9,
            seed_with_best_ambiguous: false,
            ..Default::default()
        };
        let eng = eng.with_policy(strict).unwrap();
        assert!((eng.policy().faulty_threshold - 0.95).abs() < 1e-12);
        let bad = DeductionPolicy {
            faulty_threshold: 0.2,
            healthy_threshold: 0.8,
            ..Default::default()
        };
        assert!(engine().with_policy(bad).is_err());
    }
}
