//! The circuit model: model variables (from a [`ModelSpec`]) plus the
//! cause–effect dependency graph — the output of the paper's *BBN structure
//! modelling* step (§III-A.1).

use crate::error::{Error, Result};
use abbd_dlog2bbn::{FunctionalType, ModelSpec};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A structurally modelled analogue circuit: variables, states, functional
/// types (all carried by the [`ModelSpec`]) plus dependency edges and the
/// designer's annotation of which states mean "failing".
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), abbd_core::Error> {
/// use abbd_core::CircuitModel;
/// use abbd_dlog2bbn::{FunctionalType, ModelSpec, StateBand, VariableSpec};
///
/// let spec = ModelSpec::new([
///     VariableSpec {
///         name: "bias".into(),
///         ftype: FunctionalType::Latent,
///         bands: vec![
///             StateBand::new("0", 0.0, 1.0, "non-operational"),
///             StateBand::new("1", 1.0, 1.4, "operational"),
///         ],
///         ckt_ref: None,
///     },
///     VariableSpec {
///         name: "out".into(),
///         ftype: FunctionalType::Observe,
///         bands: vec![
///             StateBand::new("0", 0.0, 4.5, "fail"),
///             StateBand::new("1", 4.5, 5.5, "pass"),
///         ],
///         ckt_ref: None,
///     },
/// ])?;
/// let mut model = CircuitModel::new(spec);
/// model.depends("bias", "out")?;
/// assert_eq!(model.parents_of("out"), vec!["bias"]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CircuitModel {
    spec: ModelSpec,
    edges: Vec<(String, String)>,
    /// Per-variable state indices that mean "the block is failing".
    /// Defaults to `{0}` (the paper's Table II convention: state 0 is
    /// "Non-Operational") for any variable without an explicit entry.
    fault_states: BTreeMap<String, Vec<usize>>,
}

impl CircuitModel {
    /// Wraps a spec with an empty dependency graph.
    pub fn new(spec: ModelSpec) -> Self {
        CircuitModel {
            spec,
            edges: Vec::new(),
            fault_states: BTreeMap::new(),
        }
    }

    /// The underlying model-variable specification.
    pub fn spec(&self) -> &ModelSpec {
        &self.spec
    }

    /// Declares a cause→effect dependency: `parent` influences `child`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownVariable`] or [`Error::DuplicateEdge`].
    /// Cycles are detected when the Bayesian network is built.
    pub fn depends<P: AsRef<str>, C: AsRef<str>>(&mut self, parent: P, child: C) -> Result<()> {
        let parent = parent.as_ref();
        let child = child.as_ref();
        for name in [parent, child] {
            if self.spec.find(name).is_none() {
                return Err(Error::UnknownVariable(name.into()));
            }
        }
        if self.edges.iter().any(|(p, c)| p == parent && c == child) {
            return Err(Error::DuplicateEdge {
                parent: parent.into(),
                child: child.into(),
            });
        }
        self.edges.push((parent.into(), child.into()));
        Ok(())
    }

    /// All dependency edges as `(parent, child)` name pairs.
    pub fn edges(&self) -> &[(String, String)] {
        &self.edges
    }

    /// The declared parents of `child`, in declaration order.
    pub fn parents_of(&self, child: &str) -> Vec<&str> {
        self.edges
            .iter()
            .filter(|(_, c)| c == child)
            .map(|(p, _)| p.as_str())
            .collect()
    }

    /// The declared children of `parent`, in declaration order.
    pub fn children_of(&self, parent: &str) -> Vec<&str> {
        self.edges
            .iter()
            .filter(|(p, _)| p == parent)
            .map(|(_, c)| c.as_str())
            .collect()
    }

    /// Overrides which states of `variable` count as failing (default `{0}`).
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownVariable`] or
    /// [`Error::FaultStateOutOfRange`].
    pub fn set_fault_states<N: AsRef<str>>(&mut self, variable: N, states: &[usize]) -> Result<()> {
        let name = variable.as_ref();
        let var = self
            .spec
            .find(name)
            .ok_or_else(|| Error::UnknownVariable(name.into()))?;
        for &s in states {
            if s >= var.card() {
                return Err(Error::FaultStateOutOfRange {
                    variable: name.into(),
                    state: s,
                });
            }
        }
        self.fault_states.insert(name.into(), states.to_vec());
        Ok(())
    }

    /// The failing-state indices of `variable` (default `{0}`).
    pub fn fault_states(&self, variable: &str) -> Vec<usize> {
        self.fault_states
            .get(variable)
            .cloned()
            .unwrap_or_else(|| vec![0])
    }

    /// Names of all latent variables, in spec order.
    pub fn latents(&self) -> Vec<&str> {
        self.spec
            .variables()
            .iter()
            .filter(|v| v.ftype == FunctionalType::Latent)
            .map(|v| v.name.as_str())
            .collect()
    }

    /// Names of all controllable variables, in spec order.
    pub fn controls(&self) -> Vec<&str> {
        self.spec
            .variables()
            .iter()
            .filter(|v| v.ftype.is_control())
            .map(|v| v.name.as_str())
            .collect()
    }

    /// Names of all observable variables, in spec order.
    pub fn observables(&self) -> Vec<&str> {
        self.spec
            .variables()
            .iter()
            .filter(|v| v.ftype.is_observable())
            .map(|v| v.name.as_str())
            .collect()
    }

    /// Latent-to-latent transitive ancestors of `variable`: the walk stops
    /// at controllable/observable variables, because evidence on those
    /// d-separates the chain (used by the candidate deduction).
    pub fn latent_ancestors(&self, variable: &str) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        let mut stack: Vec<String> = vec![variable.to_string()];
        while let Some(v) = stack.pop() {
            for p in self.parents_of(&v) {
                let Some(pv) = self.spec.find(p) else {
                    continue;
                };
                if pv.ftype == FunctionalType::Latent && !out.iter().any(|o| o == p) {
                    out.push(p.to_string());
                    stack.push(p.to_string());
                }
            }
        }
        out
    }

    /// Renders the dependency graph in Graphviz DOT syntax, with functional
    /// types as node shapes (control = invtriangle, observe = doublecircle,
    /// latent = box).
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph circuit_model {\n  rankdir=TB;\n");
        for v in self.spec.variables() {
            let shape = match v.ftype {
                FunctionalType::Control => "invtriangle",
                FunctionalType::Observe => "doublecircle",
                FunctionalType::ControlObserve => "Mcircle",
                FunctionalType::Latent => "box",
            };
            out.push_str(&format!("  \"{}\" [shape={shape}];\n", v.name));
        }
        for (p, c) in &self.edges {
            out.push_str(&format!("  \"{p}\" -> \"{c}\";\n"));
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abbd_dlog2bbn::{StateBand, VariableSpec};

    fn spec() -> ModelSpec {
        let var = |name: &str, ftype| VariableSpec {
            name: name.into(),
            ftype,
            bands: vec![
                StateBand::new("0", 0.0, 1.0, "non-operational"),
                StateBand::new("1", 1.0, 2.0, "operational"),
                StateBand::new("2", 2.0, 3.0, "overdrive"),
            ],
            ckt_ref: None,
        };
        ModelSpec::new([
            var("pin", FunctionalType::Control),
            var("a", FunctionalType::Latent),
            var("b", FunctionalType::Latent),
            var("c", FunctionalType::Latent),
            var("out", FunctionalType::Observe),
        ])
        .unwrap()
    }

    fn model() -> CircuitModel {
        // pin -> a -> b -> out, a -> c -> out
        let mut m = CircuitModel::new(spec());
        m.depends("pin", "a").unwrap();
        m.depends("a", "b").unwrap();
        m.depends("b", "out").unwrap();
        m.depends("a", "c").unwrap();
        m.depends("c", "out").unwrap();
        m
    }

    #[test]
    fn edges_and_lookups() {
        let m = model();
        assert_eq!(m.edges().len(), 5);
        assert_eq!(m.parents_of("out"), vec!["b", "c"]);
        assert_eq!(m.children_of("a"), vec!["b", "c"]);
        assert_eq!(m.parents_of("pin"), Vec::<&str>::new());
        assert_eq!(m.latents(), vec!["a", "b", "c"]);
        assert_eq!(m.controls(), vec!["pin"]);
        assert_eq!(m.observables(), vec!["out"]);
    }

    #[test]
    fn rejects_bad_edges() {
        let mut m = model();
        assert!(matches!(
            m.depends("ghost", "a"),
            Err(Error::UnknownVariable(_))
        ));
        assert!(matches!(
            m.depends("a", "ghost"),
            Err(Error::UnknownVariable(_))
        ));
        assert!(matches!(
            m.depends("a", "b"),
            Err(Error::DuplicateEdge { .. })
        ));
    }

    #[test]
    fn fault_states_default_and_override() {
        let mut m = model();
        assert_eq!(m.fault_states("a"), vec![0]);
        m.set_fault_states("a", &[0, 2]).unwrap();
        assert_eq!(m.fault_states("a"), vec![0, 2]);
        assert!(matches!(
            m.set_fault_states("a", &[7]),
            Err(Error::FaultStateOutOfRange { .. })
        ));
        assert!(matches!(
            m.set_fault_states("ghost", &[0]),
            Err(Error::UnknownVariable(_))
        ));
    }

    #[test]
    fn latent_ancestors_stop_at_non_latents() {
        let m = model();
        // b's latent ancestors: a (pin is control, excluded).
        assert_eq!(m.latent_ancestors("b"), vec!["a".to_string()]);
        // out's latent ancestors: b, c, a (order: discovery).
        let anc = m.latent_ancestors("out");
        assert_eq!(anc.len(), 3);
        assert!(anc.contains(&"a".to_string()));
        assert!(anc.contains(&"b".to_string()));
        assert!(anc.contains(&"c".to_string()));
        assert!(m.latent_ancestors("pin").is_empty());
    }

    #[test]
    fn dot_contains_shapes_and_edges() {
        let m = model();
        let dot = m.to_dot();
        assert!(dot.contains("invtriangle"));
        assert!(dot.contains("doublecircle"));
        assert!(dot.contains("\"a\" -> \"b\""));
    }
}
