//! Probe planning: which internal block should the paper's *step two*
//! (structural test, FIB/SEM probing) look at first?
//!
//! After block-level diagnosis, several latent blocks may remain plausible
//! (case d1 ends with two candidates). Physically probing an internal
//! block is expensive, so the order matters. This module ranks latent
//! blocks by the **expected reduction in posterior uncertainty** over all
//! other latents if that block's state were observed — a value-of-
//! information computation over the same junction tree the diagnosis used.

use crate::engine::{DiagnosticEngine, Observation};
use crate::error::{Error, Result};
use abbd_bbn::Evidence;
use serde::{Deserialize, Serialize};

/// One ranked probe suggestion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProbeSuggestion {
    /// The latent block to probe.
    pub variable: String,
    /// Expected reduction (in nats) of the summed posterior entropy of the
    /// *other* latent blocks if this block's state were measured.
    pub expected_information_gain: f64,
    /// The block's own posterior entropy (how uncertain its state is).
    pub own_entropy: f64,
}

fn entropy(dist: &[f64]) -> f64 {
    dist.iter().filter(|p| **p > 0.0).map(|p| -p * p.ln()).sum()
}

impl DiagnosticEngine {
    /// Ranks unprobed latent blocks by expected information gain under the
    /// given observation.
    ///
    /// For each latent `p`, the gain is
    /// `Σ_{v≠p} H(v | e)  −  E_{s ~ P(p|e)} Σ_{v≠p} H(v | e, p=s)`,
    /// i.e. how much the remaining latent uncertainty shrinks on average
    /// once the probe answers. Suggestions are sorted by gain, descending.
    ///
    /// # Errors
    ///
    /// Propagates observation-validation and propagation errors.
    pub fn rank_probes(&self, observation: &Observation) -> Result<Vec<ProbeSuggestion>> {
        let evidence = self.evidence_from(observation)?;
        let jt = abbd_bbn::JunctionTree::compile(self.model().network()).map_err(Error::Bbn)?;
        let latents: Vec<String> = self
            .model()
            .circuit_model()
            .latents()
            .iter()
            .map(|s| s.to_string())
            .collect();
        let base = jt.propagate(&evidence).map_err(Error::Bbn)?;
        let base_posteriors: Vec<(String, Vec<f64>)> = latents
            .iter()
            .map(|name| {
                let id = self.model().var(name)?;
                Ok((name.clone(), base.posterior(id).map_err(Error::Bbn)?))
            })
            .collect::<Result<_>>()?;

        let mut suggestions = Vec::with_capacity(latents.len());
        for (probe_name, probe_dist) in &base_posteriors {
            let probe_id = self.model().var(probe_name)?;
            let rest_entropy_before: f64 = base_posteriors
                .iter()
                .filter(|(n, _)| n != probe_name)
                .map(|(_, d)| entropy(d))
                .sum();
            let mut expected_after = 0.0;
            for (state, &p_state) in probe_dist.iter().enumerate() {
                if p_state <= 1e-12 {
                    continue;
                }
                let mut with_probe: Evidence = evidence.clone();
                with_probe.observe(probe_id, state);
                let cal = jt.propagate(&with_probe).map_err(Error::Bbn)?;
                let mut h = 0.0;
                for (name, _) in &base_posteriors {
                    if name == probe_name {
                        continue;
                    }
                    let id = self.model().var(name)?;
                    h += entropy(&cal.posterior(id).map_err(Error::Bbn)?);
                }
                expected_after += p_state * h;
            }
            suggestions.push(ProbeSuggestion {
                variable: probe_name.clone(),
                expected_information_gain: (rest_entropy_before - expected_after).max(0.0),
                own_entropy: entropy(probe_dist),
            });
        }
        suggestions.sort_by(|a, b| {
            b.expected_information_gain
                .partial_cmp(&a.expected_information_gain)
                .expect("gains are finite")
        });
        Ok(suggestions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{ExpertKnowledge, ModelBuilder};
    use crate::model::CircuitModel;
    use abbd_dlog2bbn::{FunctionalType, ModelSpec, StateBand, VariableSpec};

    /// Two latent hypotheses drive one shared symptom; a third latent is
    /// independent noise. Probing either hypothesis block should carry
    /// more information than probing the bystander.
    fn engine() -> DiagnosticEngine {
        let var = |name: &str, ftype| VariableSpec {
            name: name.into(),
            ftype,
            bands: vec![
                StateBand::new("0", 0.0, 1.0, "bad"),
                StateBand::new("1", 1.0, 2.0, "good"),
            ],
            ckt_ref: None,
        };
        let spec = ModelSpec::new([
            var("ha", FunctionalType::Latent),
            var("hb", FunctionalType::Latent),
            var("bystander", FunctionalType::Latent),
            var("symptom", FunctionalType::Observe),
            var("other", FunctionalType::Observe),
        ])
        .unwrap();
        let mut m = CircuitModel::new(spec);
        m.depends("ha", "symptom").unwrap();
        m.depends("hb", "symptom").unwrap();
        m.depends("bystander", "other").unwrap();

        let mut e = ExpertKnowledge::new(10.0);
        e.cpt("ha", [[0.1, 0.9]]);
        e.cpt("hb", [[0.1, 0.9]]);
        e.cpt("bystander", [[0.1, 0.9]]);
        // symptom bad iff ha bad OR hb bad (tight OR of failures).
        e.cpt(
            "symptom",
            [[0.98, 0.02], [0.95, 0.05], [0.95, 0.05], [0.03, 0.97]],
        );
        e.cpt("other", [[0.9, 0.1], [0.1, 0.9]]);
        let dm = ModelBuilder::new(m)
            .with_expert(e)
            .build_expert_only()
            .unwrap();
        DiagnosticEngine::new(dm).unwrap()
    }

    #[test]
    fn ambiguous_hypotheses_rank_above_bystanders() {
        let eng = engine();
        let mut obs = Observation::new();
        obs.set("symptom", 0).set("other", 1);
        let probes = eng.rank_probes(&obs).unwrap();
        assert_eq!(probes.len(), 3);
        let gain = |name: &str| {
            probes
                .iter()
                .find(|p| p.variable == name)
                .unwrap()
                .expected_information_gain
        };
        assert!(gain("ha") > gain("bystander") * 3.0, "{probes:?}");
        assert!(gain("hb") > gain("bystander") * 3.0, "{probes:?}");
        // Top suggestion is one of the two competing hypotheses.
        assert!(probes[0].variable == "ha" || probes[0].variable == "hb");
        assert!(probes[0].own_entropy > 0.0);
    }

    #[test]
    fn resolved_cases_carry_little_information() {
        let eng = engine();
        // Nothing failing: posteriors near-certain, all gains tiny.
        let mut obs = Observation::new();
        obs.set("symptom", 1).set("other", 1);
        let probes = eng.rank_probes(&obs).unwrap();
        for p in &probes {
            assert!(
                p.expected_information_gain < 0.2,
                "unexpectedly informative probe: {p:?}"
            );
        }
    }

    #[test]
    fn gains_are_nonnegative_and_sorted() {
        let eng = engine();
        let mut obs = Observation::new();
        obs.set("symptom", 0);
        let probes = eng.rank_probes(&obs).unwrap();
        for w in probes.windows(2) {
            assert!(w[0].expected_information_gain >= w[1].expected_information_gain);
        }
        for p in &probes {
            assert!(p.expected_information_gain >= 0.0);
        }
    }
}
