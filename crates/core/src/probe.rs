//! Probe planning: which internal block should the paper's *step two*
//! (structural test, FIB/SEM probing) look at first?
//!
//! After block-level diagnosis, several latent blocks may remain plausible
//! (case d1 ends with two candidates). Physically probing an internal
//! block is expensive, so the order matters. This module ranks latent
//! blocks by the **expected reduction in posterior uncertainty** over all
//! other latents if that block's state were observed — the value-of-
//! information kernel of [`crate::voi`], run over the *same* compiled
//! junction tree the diagnosis used (no recompilation, no per-query
//! allocation in the hypothetical inner loop).

use crate::engine::{DiagnosticEngine, Observation};
use crate::error::{Error, Result};
use crate::voi::{self, VoiScratch};
use abbd_bbn::VarId;
use serde::{Deserialize, Serialize};

/// One ranked probe suggestion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProbeSuggestion {
    /// The latent block to probe.
    pub variable: String,
    /// Expected reduction (in nats) of the summed posterior entropy of the
    /// *other* latent blocks if this block's state were measured.
    pub expected_information_gain: f64,
    /// The block's own posterior entropy (how uncertain its state is).
    pub own_entropy: f64,
}

/// Sorts suggestions by gain, descending, with `f64::total_cmp` so a NaN
/// gain (a poisoned posterior) can never panic the comparator mid-serve.
/// Under IEEE total order positive NaN sorts above every finite gain, so a
/// poisoned entry surfaces at the head of the ranking instead of hiding.
pub(crate) fn sort_suggestions(suggestions: &mut [ProbeSuggestion]) {
    suggestions.sort_unstable_by(|a, b| {
        b.expected_information_gain
            .total_cmp(&a.expected_information_gain)
    });
}

impl DiagnosticEngine {
    /// Ranks unprobed latent blocks by expected information gain under the
    /// given observation.
    ///
    /// For each latent `p`, the gain is
    /// `Σ_{v≠p} H(v | e)  −  E_{s ~ P(p|e)} Σ_{v≠p} H(v | e, p=s)`,
    /// i.e. how much the remaining latent uncertainty shrinks on average
    /// once the probe answers. Suggestions are sorted by gain, descending.
    /// Latents the observation already pins are omitted — probing a block
    /// whose state is known carries no information.
    ///
    /// Every hypothetical query runs through the engine's compiled
    /// junction tree with reused workspaces; the call performs no
    /// junction-tree compilation.
    ///
    /// # Errors
    ///
    /// Propagates observation-validation and propagation errors.
    #[deprecated(
        note = "open a DiagnosisSession, set_actions to Action::Probe candidates, and \
                rank_actions — probes and tests now rank in one mixed candidate set"
    )]
    pub fn rank_probes(&self, observation: &Observation) -> Result<Vec<ProbeSuggestion>> {
        let evidence = self.evidence_from(observation)?;
        let latents: Vec<(String, VarId)> = self
            .model()
            .circuit_model()
            .latents()
            .iter()
            .map(|name| Ok((name.to_string(), self.model().var(name)?)))
            .collect::<Result<_>>()?;
        let latent_ids: Vec<VarId> = latents.iter().map(|(_, id)| *id).collect();

        // Base pass: per-latent posteriors and entropies under `e` alone.
        let mut base_ws = self.make_workspace();
        let mut scratch = VoiScratch::new(self.compiled());
        let view = self
            .jt()
            .propagate_in(&mut base_ws, &evidence)
            .map_err(Error::Bbn)?;
        let mut entropies = Vec::with_capacity(latents.len());
        for &(_, id) in &latents {
            entropies.push(view.posterior_entropy(id).map_err(Error::Bbn)?);
        }
        let total_entropy: f64 = entropies.iter().sum();

        let net = self.model().network();
        let mut suggestions = Vec::with_capacity(latents.len());
        for (i, (name, id)) in latents.iter().enumerate() {
            if evidence.mentions(*id) {
                continue;
            }
            let card = net.card(*id);
            view.posterior_into(*id, &mut scratch.dist[..card])
                .map_err(Error::Bbn)?;
            let gain = voi::expected_gain(
                self.jt(),
                &mut scratch.ws,
                &evidence,
                *id,
                &scratch.dist[..card],
                &latent_ids,
                total_entropy - entropies[i],
            )?;
            suggestions.push(ProbeSuggestion {
                variable: name.clone(),
                expected_information_gain: gain,
                own_entropy: entropies[i],
            });
        }
        sort_suggestions(&mut suggestions);
        Ok(suggestions)
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::builder::{ExpertKnowledge, ModelBuilder};
    use crate::model::CircuitModel;
    use abbd_dlog2bbn::{FunctionalType, ModelSpec, StateBand, VariableSpec};

    /// Two latent hypotheses drive one shared symptom; a third latent is
    /// independent noise. Probing either hypothesis block should carry
    /// more information than probing the bystander.
    fn engine() -> DiagnosticEngine {
        let var = |name: &str, ftype| VariableSpec {
            name: name.into(),
            ftype,
            bands: vec![
                StateBand::new("0", 0.0, 1.0, "bad"),
                StateBand::new("1", 1.0, 2.0, "good"),
            ],
            ckt_ref: None,
        };
        let spec = ModelSpec::new([
            var("ha", FunctionalType::Latent),
            var("hb", FunctionalType::Latent),
            var("bystander", FunctionalType::Latent),
            var("symptom", FunctionalType::Observe),
            var("other", FunctionalType::Observe),
        ])
        .unwrap();
        let mut m = CircuitModel::new(spec);
        m.depends("ha", "symptom").unwrap();
        m.depends("hb", "symptom").unwrap();
        m.depends("bystander", "other").unwrap();

        let mut e = ExpertKnowledge::new(10.0);
        e.cpt("ha", [[0.1, 0.9]]);
        e.cpt("hb", [[0.1, 0.9]]);
        e.cpt("bystander", [[0.1, 0.9]]);
        // symptom bad iff ha bad OR hb bad (tight OR of failures).
        e.cpt(
            "symptom",
            [[0.98, 0.02], [0.95, 0.05], [0.95, 0.05], [0.03, 0.97]],
        );
        e.cpt("other", [[0.9, 0.1], [0.1, 0.9]]);
        let dm = ModelBuilder::new(m)
            .with_expert(e)
            .build_expert_only()
            .unwrap();
        DiagnosticEngine::new(dm).unwrap()
    }

    #[test]
    fn ambiguous_hypotheses_rank_above_bystanders() {
        let eng = engine();
        let mut obs = Observation::new();
        obs.set("symptom", 0).set("other", 1);
        let probes = eng.rank_probes(&obs).unwrap();
        assert_eq!(probes.len(), 3);
        let gain = |name: &str| {
            probes
                .iter()
                .find(|p| p.variable == name)
                .unwrap()
                .expected_information_gain
        };
        assert!(gain("ha") > gain("bystander") * 3.0, "{probes:?}");
        assert!(gain("hb") > gain("bystander") * 3.0, "{probes:?}");
        // Top suggestion is one of the two competing hypotheses.
        assert!(probes[0].variable == "ha" || probes[0].variable == "hb");
        assert!(probes[0].own_entropy > 0.0);
    }

    #[test]
    fn resolved_cases_carry_little_information() {
        let eng = engine();
        // Nothing failing: posteriors near-certain, all gains tiny.
        let mut obs = Observation::new();
        obs.set("symptom", 1).set("other", 1);
        let probes = eng.rank_probes(&obs).unwrap();
        for p in &probes {
            assert!(
                p.expected_information_gain < 0.2,
                "unexpectedly informative probe: {p:?}"
            );
        }
    }

    #[test]
    fn gains_are_nonnegative_and_sorted() {
        let eng = engine();
        let mut obs = Observation::new();
        obs.set("symptom", 0);
        let probes = eng.rank_probes(&obs).unwrap();
        for w in probes.windows(2) {
            assert!(w[0].expected_information_gain >= w[1].expected_information_gain);
        }
        for p in &probes {
            assert!(p.expected_information_gain >= 0.0);
        }
    }

    /// The deprecated wrapper and the unified session agree gain for
    /// gain: ranking probe actions in a session *is* `rank_probes`.
    #[test]
    fn session_probe_ranking_matches_rank_probes() {
        use crate::session::{Action, DiagnosisSession, StoppingPolicy};
        use std::sync::Arc;

        let eng = engine();
        let mut obs = Observation::new();
        obs.set("symptom", 0).set("other", 1);
        let legacy = eng.rank_probes(&obs).unwrap();

        let mut session =
            DiagnosisSession::new(Arc::clone(eng.compiled()), StoppingPolicy::default()).unwrap();
        session.observe_all(&obs).unwrap();
        session
            .set_actions(["ha", "hb", "bystander"].map(Action::probe))
            .unwrap();
        let ranked = session.rank_actions().unwrap();
        assert_eq!(ranked.len(), legacy.len());
        for suggestion in &legacy {
            let slot = ranked
                .iter()
                .find(|c| c.name() == suggestion.variable)
                .expect("same candidate set");
            assert_eq!(
                slot.expected_information_gain(),
                suggestion.expected_information_gain,
                "gains must be bit-identical for {}",
                suggestion.variable
            );
            assert!(slot.is_probe());
        }
    }

    /// Regression for the PR 2 bugfix: ranking probes must reuse the
    /// engine's compiled tree, not compile a fresh one per call.
    #[test]
    fn rank_probes_never_recompiles_the_tree() {
        let eng = engine();
        let mut obs = Observation::new();
        obs.set("symptom", 0).set("other", 1);
        eng.rank_probes(&obs).unwrap(); // warm-up outside the window
        let before = abbd_bbn::jointree_compile_count();
        for _ in 0..3 {
            eng.rank_probes(&obs).unwrap();
        }
        assert_eq!(
            abbd_bbn::jointree_compile_count(),
            before,
            "rank_probes compiled a junction tree per call"
        );
    }

    /// Regression for the PR 2 bugfix: a NaN gain (poisoned posterior)
    /// must sort deterministically instead of panicking the comparator.
    #[test]
    fn nan_gains_sort_without_panicking() {
        let sug = |gain: f64| ProbeSuggestion {
            variable: format!("g{gain}"),
            expected_information_gain: gain,
            own_entropy: 0.0,
        };
        let mut suggestions = vec![sug(0.5), sug(f64::NAN), sug(1.5), sug(0.0)];
        sort_suggestions(&mut suggestions);
        // Positive NaN is the IEEE total-order maximum: it surfaces first,
        // then the finite gains descend.
        assert!(suggestions[0].expected_information_gain.is_nan());
        assert_eq!(suggestions[1].expected_information_gain, 1.5);
        assert_eq!(suggestions[2].expected_information_gain, 0.5);
        assert_eq!(suggestions[3].expected_information_gain, 0.0);
    }

    /// Observed latents drop out of the ranking (probing a known block
    /// carries no information).
    #[test]
    fn observed_latents_are_omitted() {
        let eng = engine();
        let mut obs = Observation::new();
        obs.set("symptom", 0).set("ha", 1);
        let probes = eng.rank_probes(&obs).unwrap();
        assert_eq!(probes.len(), 2);
        assert!(probes.iter().all(|p| p.variable != "ha"));
    }
}
