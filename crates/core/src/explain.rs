//! Diagnosis explanation: which finding drove the verdict?
//!
//! A diagnostic report that names a block without saying *why* is hard for
//! a failure analyst to trust. This module quantifies the contribution of
//! every observed finding to a target block's posterior by leave-one-out
//! retraction: drop the finding, re-propagate, and measure how far the
//! target's posterior moves back.

use crate::engine::{DiagnosticEngine, Observation};
use crate::error::{Error, Result};
use serde::{Deserialize, Serialize};

/// The influence of one observed finding on a target variable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FindingImpact {
    /// The observed variable whose finding is being assessed.
    pub variable: String,
    /// The state that was observed.
    pub state: usize,
    /// Total-variation distance between the target's posterior with and
    /// without this finding: `0` means the finding is irrelevant to the
    /// target, `1` means it flips the verdict entirely.
    pub impact: f64,
    /// The target's posterior when this finding is retracted.
    pub posterior_without: Vec<f64>,
}

fn total_variation(a: &[f64], b: &[f64]) -> f64 {
    0.5 * a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>()
}

impl DiagnosticEngine {
    /// Ranks the observation's findings by their leave-one-out influence on
    /// `target`'s posterior (most influential first).
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownVariable`] for an unknown target and
    /// propagates observation-validation and propagation errors.
    pub fn explain(&self, observation: &Observation, target: &str) -> Result<Vec<FindingImpact>> {
        let target_id = self.model().var(target)?;
        let jt = abbd_bbn::JunctionTree::compile(self.model().network()).map_err(Error::Bbn)?;
        let full_evidence = self.evidence_from(observation)?;
        let full = jt
            .propagate(&full_evidence)
            .map_err(Error::Bbn)?
            .posterior(target_id)
            .map_err(Error::Bbn)?;

        let mut impacts = Vec::with_capacity(observation.len());
        for (name, state) in observation.iter() {
            if name == target {
                continue;
            }
            let mut retracted = full_evidence.clone();
            let id = self.model().var(name)?;
            retracted.retract(id);
            let without = jt
                .propagate(&retracted)
                .map_err(Error::Bbn)?
                .posterior(target_id)
                .map_err(Error::Bbn)?;
            impacts.push(FindingImpact {
                variable: name.to_string(),
                state,
                impact: total_variation(&full, &without),
                posterior_without: without,
            });
        }
        impacts.sort_by(|a, b| b.impact.partial_cmp(&a.impact).expect("finite impacts"));
        Ok(impacts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{ExpertKnowledge, ModelBuilder};
    use crate::model::CircuitModel;
    use abbd_dlog2bbn::{FunctionalType, ModelSpec, StateBand, VariableSpec};

    fn engine() -> DiagnosticEngine {
        let var = |name: &str, ftype| VariableSpec {
            name: name.into(),
            ftype,
            bands: vec![
                StateBand::new("0", 0.0, 1.0, "bad"),
                StateBand::new("1", 1.0, 2.0, "good"),
            ],
            ckt_ref: None,
        };
        let spec = ModelSpec::new([
            var("bias", FunctionalType::Latent),
            var("load", FunctionalType::Latent),
            var("out_main", FunctionalType::Observe),
            var("out_aux", FunctionalType::Observe),
        ])
        .unwrap();
        let mut m = CircuitModel::new(spec);
        m.depends("bias", "out_main").unwrap();
        m.depends("load", "out_aux").unwrap();
        let mut e = ExpertKnowledge::new(10.0);
        e.cpt("bias", [[0.15, 0.85]]);
        e.cpt("load", [[0.15, 0.85]]);
        e.cpt("out_main", [[0.95, 0.05], [0.05, 0.95]]);
        e.cpt("out_aux", [[0.95, 0.05], [0.05, 0.95]]);
        let dm = ModelBuilder::new(m)
            .with_expert(e)
            .build_expert_only()
            .unwrap();
        DiagnosticEngine::new(dm).unwrap()
    }

    #[test]
    fn relevant_finding_dominates_irrelevant_one() {
        let eng = engine();
        let mut obs = Observation::new();
        obs.set("out_main", 0).set("out_aux", 1);
        let impacts = eng.explain(&obs, "bias").unwrap();
        assert_eq!(impacts.len(), 2);
        assert_eq!(impacts[0].variable, "out_main", "{impacts:?}");
        assert!(impacts[0].impact > 0.4, "{impacts:?}");
        // out_aux is d-separated from bias: zero influence.
        let aux = impacts.iter().find(|i| i.variable == "out_aux").unwrap();
        assert!(aux.impact < 1e-9, "{impacts:?}");
        assert_eq!(aux.state, 1);
        // The retracted posterior is the prior again.
        assert!((impacts[0].posterior_without[0] - 0.15).abs() < 1e-6);
    }

    #[test]
    fn target_itself_is_excluded() {
        let eng = engine();
        let mut obs = Observation::new();
        obs.set("out_main", 0).set("out_aux", 0);
        let impacts = eng.explain(&obs, "out_main").unwrap();
        assert!(impacts.iter().all(|i| i.variable != "out_main"));
    }

    #[test]
    fn unknown_target_is_rejected() {
        let eng = engine();
        let obs = Observation::new();
        assert!(matches!(
            eng.explain(&obs, "ghost"),
            Err(Error::UnknownVariable(_))
        ));
    }

    #[test]
    fn impacts_are_sorted_descending() {
        let eng = engine();
        let mut obs = Observation::new();
        obs.set("out_main", 0).set("out_aux", 0);
        let impacts = eng.explain(&obs, "bias").unwrap();
        for w in impacts.windows(2) {
            assert!(w[0].impact >= w[1].impact);
        }
    }
}
