//! # Model lifecycle: fleet learning with versioned hot-swap serving
//!
//! The paper fits CPTs from ATE datalogs once, offline. A production
//! diagnosis server sees a steady stream of *new* datalogs — every
//! completed session is one more row of evidence about how the fleet
//! actually fails and how long its measurements actually take. This
//! module closes that loop:
//!
//! 1. **Trace aggregation** — a [`TraceAggregator`] folds completed
//!    session observations into per-model sufficient statistics
//!    (deduplicated outcome counts per variable assignment, wall-cost
//!    samples per measurement) behind one short mutex append that stays
//!    off the inference hot path.
//! 2. **Background refit** — a [`Refitter`] thread watches every
//!    [`ModelLifecycle`] and, once enough new rows accumulated
//!    ([`RefitPolicy::min_rows`]), snapshots the aggregate and re-fits
//!    the CPTs with the same [`fit_em`] kernel the offline pipeline
//!    uses, seeded by the incumbent's own parameters as a Dirichlet
//!    prior ([`RefitPolicy::ess`]). Observed tester-seconds become
//!    per-measurement [`CostModel`] prices.
//! 3. **Conformance gate + staged rollout** — a candidate is promoted
//!    only after it (a) reproduces the pinned top candidate on every
//!    reference scenario ([`crate::conformance::verify`]) and (b) scores
//!    the recent-trace holdout no worse than the incumbent by more than
//!    [`RefitPolicy::holdout_tolerance`] nats of mean log-likelihood.
//!    Promotion appends a new immutable version and atomically redirects
//!    the *default* `Arc<CompiledModel>`; sessions opened before the
//!    swap keep serving off the `Arc` they captured until they close
//!    (nothing is ever mutated in place), and [`ModelLifecycle::activate`]
//!    rolls the default back to any retained version. A rejected
//!    candidate is reported with a structured [`GateRejection`], never
//!    silently dropped.
//!
//! The server exposes this machinery as `POST /v1/models/{name}/refit`,
//! `GET /v1/models/{name}/versions`, `POST /v1/models/{name}/activate`
//! and `name@vN` model references; see the `abbd-server` crate docs.

use crate::builder::DiagnosticModel;
use crate::conformance::{self, ReplayCase};
use crate::engine::Observation;
use crate::error::{Error, Result};
use crate::planner::CostModel;
use crate::session::CompiledModel;
use abbd_bbn::learn::{fit_em, Case, DirichletPrior, EmConfig};
use abbd_bbn::VarId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread;
use std::time::Duration;

/// When and how a background refit runs.
#[derive(Debug, Clone, PartialEq)]
pub struct RefitPolicy {
    /// Aggregated rows (completed traces) required since the last refit
    /// attempt before a new fit is worth running.
    pub min_rows: u64,
    /// EM knobs for the background fit.
    pub em: EmConfig,
    /// Equivalent sample size anchoring the fit to the incumbent's CPTs.
    /// Deliberately below the offline pipeline's expert ESS: production
    /// traces must be able to move drifted priors.
    pub ess: f64,
    /// Capacity of the recent-trace holdout ring the gate scores
    /// candidates on.
    pub holdout: usize,
    /// How many nats of *mean* holdout log-likelihood a candidate may
    /// lose against the incumbent before the gate rejects it.
    pub holdout_tolerance: f64,
}

impl Default for RefitPolicy {
    fn default() -> Self {
        RefitPolicy {
            min_rows: 32,
            em: EmConfig {
                max_iterations: 20,
                tolerance: 1e-5,
            },
            ess: 30.0,
            holdout: 64,
            holdout_tolerance: 0.5,
        }
    }
}

/// Deduplicated per-model sufficient statistics accumulated from
/// completed sessions.
///
/// The append path is one short mutex hold over three `BTreeMap`
/// insertions — no inference, no allocation proportional to the model —
/// so it never competes with the propagation workspaces on the request
/// hot path. The refitter drains it via [`TraceAggregator::snapshot`]
/// without blocking appends for longer than a clone.
#[derive(Debug)]
pub struct TraceAggregator {
    /// `name -> (id, cardinality)` captured at construction; variable
    /// identity is stable across refits because every candidate reuses
    /// the incumbent's structure.
    vars: BTreeMap<String, (VarId, usize)>,
    rows: AtomicU64,
    holdout_cap: usize,
    inner: Mutex<AggregateInner>,
}

#[derive(Debug, Default)]
struct AggregateInner {
    /// Deduplicated outcome counts: sorted `(var, state)` assignment ->
    /// accumulated case weight.
    dedup: BTreeMap<Vec<(VarId, usize)>, f64>,
    /// Ring of the most recent completed observations (the gate's
    /// holdout). Holdout rows also count toward the training aggregate:
    /// the gate is a corruption detector, not model selection.
    holdout: VecDeque<Observation>,
    /// `variable -> (total observed seconds, sample count)`.
    costs: BTreeMap<String, (f64, u64)>,
}

/// A point-in-time copy of the aggregate, consumed by one refit.
#[derive(Debug, Clone)]
pub struct AggregateSnapshot {
    /// Completed traces folded in so far.
    pub rows: u64,
    /// Weighted, deduplicated learning cases.
    pub cases: Vec<Case>,
    /// The most recent completed observations, oldest first.
    pub holdout: Vec<Observation>,
    /// `(variable, mean observed seconds, sample count)` per measured
    /// variable.
    pub costs: Vec<(String, f64, u64)>,
}

impl TraceAggregator {
    /// An empty aggregate bound to `compiled`'s variable universe, with a
    /// holdout ring of `holdout_cap` recent observations.
    pub fn new(compiled: &CompiledModel, holdout_cap: usize) -> Self {
        let model = compiled.model();
        let net = model.network();
        let vars = model
            .circuit_model()
            .spec()
            .variables()
            .iter()
            .filter_map(|v| {
                let id = model.var(&v.name).ok()?;
                Some((v.name.clone(), (id, net.card(id))))
            })
            .collect();
        TraceAggregator {
            vars,
            rows: AtomicU64::new(0),
            holdout_cap,
            inner: Mutex::new(AggregateInner::default()),
        }
    }

    /// Folds one *completed* trace into the aggregate: the device's
    /// cumulative observation becomes a weighted learning case and joins
    /// the holdout ring; `timings` (observed `(variable, seconds)`) feed
    /// the cost statistics. Unknown variables and out-of-range states
    /// are skipped — the serving layer already validated the round, so a
    /// residue here means the observation came from another model and
    /// must not poison this one's statistics. Returns `false` when
    /// nothing in the observation mapped onto this model.
    pub fn record(&self, observation: &Observation, timings: &[(String, f64)]) -> bool {
        let mut key: Vec<(VarId, usize)> = observation
            .iter()
            .filter_map(|(name, state)| {
                let &(id, card) = self.vars.get(name)?;
                (state < card).then_some((id, state))
            })
            .collect();
        if key.is_empty() {
            return false;
        }
        key.sort_unstable();
        let mut inner = self.inner.lock().expect("aggregate mutex");
        *inner.dedup.entry(key).or_insert(0.0) += 1.0;
        inner.holdout.push_back(observation.clone());
        while inner.holdout.len() > self.holdout_cap {
            inner.holdout.pop_front();
        }
        Self::fold_timings(&mut inner, &self.vars, timings);
        drop(inner);
        self.rows.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Folds measurement timings from a non-terminal round (cost samples
    /// are useful even when the device walks away before isolation). A
    /// no-op for the empty slice — the common case on the hot path.
    pub fn record_timings(&self, timings: &[(String, f64)]) {
        if timings.is_empty() {
            return;
        }
        let mut inner = self.inner.lock().expect("aggregate mutex");
        Self::fold_timings(&mut inner, &self.vars, timings);
    }

    fn fold_timings(
        inner: &mut AggregateInner,
        vars: &BTreeMap<String, (VarId, usize)>,
        timings: &[(String, f64)],
    ) {
        for (name, seconds) in timings {
            if !seconds.is_finite() || *seconds <= 0.0 || !vars.contains_key(name) {
                continue;
            }
            let slot = inner.costs.entry(name.clone()).or_insert((0.0, 0));
            slot.0 += seconds;
            slot.1 += 1;
        }
    }

    /// Completed traces folded in so far (lock-free read).
    pub fn rows(&self) -> u64 {
        self.rows.load(Ordering::Relaxed)
    }

    /// Copies the current aggregate out for a refit.
    pub fn snapshot(&self) -> AggregateSnapshot {
        let inner = self.inner.lock().expect("aggregate mutex");
        let cases = inner
            .dedup
            .iter()
            .map(|(key, weight)| {
                let mut case = Case::from_pairs(key.iter().copied());
                case.set_weight(*weight);
                case
            })
            .collect();
        AggregateSnapshot {
            rows: self.rows.load(Ordering::Relaxed),
            cases,
            holdout: inner.holdout.iter().cloned().collect(),
            costs: inner
                .costs
                .iter()
                .map(|(name, (total, n))| (name.clone(), total / *n as f64, *n))
                .collect(),
        }
    }
}

/// Why the conformance gate refused to promote a candidate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GateRejection {
    /// Too few aggregated rows to fit from.
    InsufficientData {
        /// Rows available.
        rows: u64,
        /// Rows the policy requires.
        min: u64,
    },
    /// The EM fit itself failed (empty/unusable datalog, shape errors).
    FitFailed {
        /// The underlying learning error, rendered.
        reason: String,
    },
    /// The fitted network would not compile into a serving artifact.
    CompileFailed {
        /// The underlying compile error, rendered.
        reason: String,
    },
    /// A reference scenario no longer isolates its pinned top candidate.
    ReferenceMismatch {
        /// The reference scenario's label.
        scenario: String,
        /// The pinned expectation.
        expected: Option<String>,
        /// What the candidate concluded instead.
        got: Option<String>,
    },
    /// A reference scenario failed to replay at all under the candidate.
    ReplayFailed {
        /// The reference scenario's label.
        scenario: String,
        /// The underlying replay error, rendered.
        reason: String,
    },
    /// The candidate scores the recent-trace holdout materially worse
    /// than the incumbent.
    HoldoutRegression {
        /// Candidate mean log-likelihood over the holdout.
        candidate: f64,
        /// Incumbent mean log-likelihood over the holdout.
        incumbent: f64,
        /// The tolerance the regression exceeded.
        tolerance: f64,
    },
}

impl fmt::Display for GateRejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GateRejection::InsufficientData { rows, min } => {
                write!(f, "only {rows} aggregated rows, {min} required")
            }
            GateRejection::FitFailed { reason } => write!(f, "refit failed: {reason}"),
            GateRejection::CompileFailed { reason } => {
                write!(f, "candidate failed to compile: {reason}")
            }
            GateRejection::ReferenceMismatch {
                scenario,
                expected,
                got,
            } => write!(
                f,
                "reference `{scenario}` expected top candidate {expected:?}, candidate \
                 concluded {got:?}"
            ),
            GateRejection::ReplayFailed { scenario, reason } => {
                write!(f, "reference `{scenario}` failed to replay: {reason}")
            }
            GateRejection::HoldoutRegression {
                candidate,
                incumbent,
                tolerance,
            } => write!(
                f,
                "holdout mean log-likelihood regressed {candidate:.4} vs incumbent \
                 {incumbent:.4} (tolerance {tolerance})"
            ),
        }
    }
}

/// The outcome of one refit (or externally submitted candidate) run
/// through the conformance gate — returned whether or not the candidate
/// was promoted, so a caller always sees *why*.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RefitReport {
    /// The lifecycle's model name.
    pub model: String,
    /// `true` when the candidate passed the gate and became the default.
    pub promoted: bool,
    /// The version the candidate was installed as, when promoted.
    pub version: Option<u32>,
    /// The default version after this run (unchanged on rejection).
    pub active_version: u32,
    /// Aggregated rows at snapshot time.
    pub rows: u64,
    /// Holdout observations the gate scored.
    pub holdout_cases: usize,
    /// Reference scenarios the gate replayed.
    pub references_checked: usize,
    /// Why the candidate was rejected, when it was.
    pub rejection: Option<GateRejection>,
}

/// One registered version of a lifecycle-managed model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VersionInfo {
    /// 1-based version number (`v1` is the seed compile).
    pub version: u32,
    /// `true` for the version new sessions currently open against.
    pub active: bool,
    /// Where the version came from (`"seed"`, `"refit"`, `"submitted"`).
    pub source: String,
    /// Aggregated rows the version was fitted from (0 for the seed).
    pub rows_fitted: u64,
    /// Mean observed tester-seconds per measurement at fit time.
    pub learned_costs: Vec<(String, f64)>,
}

#[derive(Debug)]
struct VersionEntry {
    compiled: Arc<CompiledModel>,
    source: String,
    rows_fitted: u64,
    learned_costs: Vec<(String, f64)>,
}

#[derive(Debug)]
struct Versions {
    entries: Vec<VersionEntry>,
    active: usize,
}

/// The versioned serving state of one model: every compiled version ever
/// promoted, the index of the current default, the trace aggregate
/// feeding the next refit, and the reference corpus the gate replays.
///
/// `active()` hands out `Arc<CompiledModel>` clones; a hot-swap only
/// repoints the default index under a write lock held for a few stores,
/// so in-flight sessions — which own the `Arc` they started with — are
/// never interrupted and finish on their pinned compile.
#[derive(Debug)]
pub struct ModelLifecycle {
    name: String,
    versions: RwLock<Versions>,
    aggregator: TraceAggregator,
    references: Vec<ReplayCase>,
    policy: RefitPolicy,
    /// Serialises refits: concurrent triggers queue rather than racing
    /// two fits over the same snapshot.
    refit_gate: Mutex<()>,
    refits_run: AtomicU64,
    refits_rejected: AtomicU64,
    last_attempt_rows: AtomicU64,
    rounds: AtomicU64,
}

impl ModelLifecycle {
    /// Wraps a seed compile (version 1, immediately active) with a
    /// reference corpus and a refit policy.
    pub fn new(
        name: impl Into<String>,
        compiled: Arc<CompiledModel>,
        references: Vec<ReplayCase>,
        policy: RefitPolicy,
    ) -> Self {
        let aggregator = TraceAggregator::new(&compiled, policy.holdout);
        ModelLifecycle {
            name: name.into(),
            versions: RwLock::new(Versions {
                entries: vec![VersionEntry {
                    compiled,
                    source: "seed".into(),
                    rows_fitted: 0,
                    learned_costs: Vec::new(),
                }],
                active: 0,
            }),
            aggregator,
            references,
            policy,
            refit_gate: Mutex::new(()),
            refits_run: AtomicU64::new(0),
            refits_rejected: AtomicU64::new(0),
            last_attempt_rows: AtomicU64::new(0),
            rounds: AtomicU64::new(0),
        }
    }

    /// Wraps the lifecycle for concurrent sharing.
    pub fn shared(self) -> Arc<Self> {
        Arc::new(self)
    }

    /// The model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The refit policy.
    pub fn policy(&self) -> &RefitPolicy {
        &self.policy
    }

    /// The trace aggregate feeding the next refit.
    pub fn aggregator(&self) -> &TraceAggregator {
        &self.aggregator
    }

    /// The compiled model new sessions should open against (the atomic
    /// hot-swap point: one read lock, one `Arc` clone).
    pub fn active(&self) -> Arc<CompiledModel> {
        let v = self.versions.read().expect("version lock");
        Arc::clone(&v.entries[v.active].compiled)
    }

    /// The 1-based version number of the current default.
    pub fn active_version(&self) -> u32 {
        self.versions.read().expect("version lock").active as u32 + 1
    }

    /// A specific retained version, if it exists.
    pub fn version(&self, version: u32) -> Option<Arc<CompiledModel>> {
        let v = self.versions.read().expect("version lock");
        v.entries
            .get(version.checked_sub(1)? as usize)
            .map(|e| Arc::clone(&e.compiled))
    }

    /// Metadata for every retained version, oldest first.
    pub fn versions(&self) -> Vec<VersionInfo> {
        let v = self.versions.read().expect("version lock");
        v.entries
            .iter()
            .enumerate()
            .map(|(i, e)| VersionInfo {
                version: i as u32 + 1,
                active: i == v.active,
                source: e.source.clone(),
                rows_fitted: e.rows_fitted,
                learned_costs: e.learned_costs.clone(),
            })
            .collect()
    }

    /// Repoints the default at a retained version (rollback or
    /// roll-forward). Sessions already open keep their pinned compile.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Fleet`] for an unknown version.
    pub fn activate(&self, version: u32) -> Result<u32> {
        let mut v = self.versions.write().expect("version lock");
        let idx = version
            .checked_sub(1)
            .map(|i| i as usize)
            .filter(|&i| i < v.entries.len())
            .ok_or_else(|| {
                Error::Fleet(format!(
                    "unknown version {version} for model `{}` ({} retained)",
                    self.name,
                    v.entries.len()
                ))
            })?;
        v.active = idx;
        Ok(version)
    }

    /// The active version's learned measurement prices as a cost model
    /// (unit costs overridden by the observed per-test means), when any
    /// timings were aggregated at fit time.
    pub fn learned_cost_model(&self) -> Option<CostModel> {
        let v = self.versions.read().expect("version lock");
        let entry = &v.entries[v.active];
        if entry.learned_costs.is_empty() {
            return None;
        }
        let mut cm = CostModel::unit();
        for (name, seconds) in &entry.learned_costs {
            // Aggregated means are finite and positive by construction.
            cm.set_cost(name, *seconds).ok()?;
        }
        Some(cm)
    }

    /// Completed traces aggregated so far.
    pub fn traces_aggregated(&self) -> u64 {
        self.aggregator.rows()
    }

    /// Refit attempts (background or endpoint-triggered, including
    /// submitted candidates).
    pub fn refits_run(&self) -> u64 {
        self.refits_run.load(Ordering::Relaxed)
    }

    /// Refit attempts the gate rejected.
    pub fn refits_rejected(&self) -> u64 {
        self.refits_rejected.load(Ordering::Relaxed)
    }

    /// Counts one served decision round against this model.
    pub fn note_round(&self) {
        self.rounds.fetch_add(1, Ordering::Relaxed);
    }

    /// Decision rounds served against this model (all versions).
    pub fn rounds(&self) -> u64 {
        self.rounds.load(Ordering::Relaxed)
    }

    /// `true` when enough rows accumulated since the last refit attempt
    /// for the background refitter to bother.
    pub fn due(&self) -> bool {
        self.aggregator.rows() - self.last_attempt_rows.load(Ordering::Relaxed)
            >= self.policy.min_rows
    }

    /// Runs one full refit: snapshot, EM fit seeded by the incumbent,
    /// compile, gate, and — on a pass — promotion to the new default.
    /// Never returns an error: every failure mode is a structured
    /// [`GateRejection`] in the report.
    pub fn refit(&self) -> RefitReport {
        let _serialised = self.refit_gate.lock().expect("refit gate");
        self.refits_run.fetch_add(1, Ordering::Relaxed);
        let rows = self.aggregator.rows();
        self.last_attempt_rows.store(rows, Ordering::Relaxed);
        if rows < self.policy.min_rows {
            return self.rejected(
                rows,
                0,
                GateRejection::InsufficientData {
                    rows,
                    min: self.policy.min_rows,
                },
            );
        }
        let snapshot = self.aggregator.snapshot();
        let incumbent = self.active();
        let net = incumbent.model().network();
        let prior = DirichletPrior::from_network(net, self.policy.ess);
        let outcome = match fit_em(net, &snapshot.cases, &prior, &self.policy.em) {
            Ok(o) => o,
            Err(e) => {
                return self.rejected(
                    rows,
                    snapshot.holdout.len(),
                    GateRejection::FitFailed {
                        reason: e.to_string(),
                    },
                )
            }
        };
        let candidate = match compile_candidate(&incumbent, outcome.network) {
            Ok(c) => c,
            Err(e) => {
                return self.rejected(
                    rows,
                    snapshot.holdout.len(),
                    GateRejection::CompileFailed {
                        reason: e.to_string(),
                    },
                )
            }
        };
        self.gate_and_promote(candidate, &incumbent, &snapshot, "refit")
    }

    /// Runs an externally built candidate through the same gate (the
    /// staged-rollout entry: a candidate fitted elsewhere must clear the
    /// identical conformance bar before serving).
    pub fn submit(&self, candidate: Arc<CompiledModel>, source: &str) -> RefitReport {
        let _serialised = self.refit_gate.lock().expect("refit gate");
        self.refits_run.fetch_add(1, Ordering::Relaxed);
        let snapshot = self.aggregator.snapshot();
        let incumbent = self.active();
        self.gate_and_promote(candidate, &incumbent, &snapshot, source)
    }

    fn gate_and_promote(
        &self,
        candidate: Arc<CompiledModel>,
        incumbent: &Arc<CompiledModel>,
        snapshot: &AggregateSnapshot,
        source: &str,
    ) -> RefitReport {
        if let Some(rejection) = self.gate(&candidate, incumbent, snapshot) {
            return self.rejected(snapshot.rows, snapshot.holdout.len(), rejection);
        }
        let learned_costs: Vec<(String, f64)> = snapshot
            .costs
            .iter()
            .map(|(name, mean, _)| (name.clone(), *mean))
            .collect();
        let version = {
            let mut v = self.versions.write().expect("version lock");
            v.entries.push(VersionEntry {
                compiled: candidate,
                source: source.into(),
                rows_fitted: snapshot.rows,
                learned_costs,
            });
            v.active = v.entries.len() - 1;
            v.entries.len() as u32
        };
        RefitReport {
            model: self.name.clone(),
            promoted: true,
            version: Some(version),
            active_version: version,
            rows: snapshot.rows,
            holdout_cases: snapshot.holdout.len(),
            references_checked: self.references.len(),
            rejection: None,
        }
    }

    /// The conformance gate: reference replay, then holdout scoring.
    fn gate(
        &self,
        candidate: &Arc<CompiledModel>,
        incumbent: &Arc<CompiledModel>,
        snapshot: &AggregateSnapshot,
    ) -> Option<GateRejection> {
        match conformance::verify(candidate, &self.references) {
            Err(e) => {
                return Some(GateRejection::ReplayFailed {
                    scenario: "<corpus>".into(),
                    reason: e.to_string(),
                })
            }
            Ok(mismatches) => {
                if let Some(m) = mismatches.into_iter().next() {
                    return Some(GateRejection::ReferenceMismatch {
                        scenario: m.name,
                        expected: m.expected,
                        got: m.got,
                    });
                }
            }
        }
        if snapshot.holdout.is_empty() {
            return None;
        }
        let mut cand_sum = 0.0;
        let mut inc_sum = 0.0;
        let mut scored = 0usize;
        let mut cand_ws = candidate.make_workspace();
        let mut inc_ws = incumbent.make_workspace();
        for obs in &snapshot.holdout {
            // A holdout row the *incumbent* cannot explain carries no
            // comparative signal; skip it for both models.
            let Some(inc_ll) = log_likelihood_of(incumbent, &mut inc_ws, obs) else {
                continue;
            };
            // The same row impossible under the *candidate* is the
            // sharpest regression there is.
            let Some(cand_ll) = log_likelihood_of(candidate, &mut cand_ws, obs) else {
                return Some(GateRejection::HoldoutRegression {
                    candidate: f64::NEG_INFINITY,
                    incumbent: inc_ll,
                    tolerance: self.policy.holdout_tolerance,
                });
            };
            cand_sum += cand_ll;
            inc_sum += inc_ll;
            scored += 1;
        }
        if scored > 0 {
            let cand_mean = cand_sum / scored as f64;
            let inc_mean = inc_sum / scored as f64;
            if cand_mean < inc_mean - self.policy.holdout_tolerance {
                return Some(GateRejection::HoldoutRegression {
                    candidate: cand_mean,
                    incumbent: inc_mean,
                    tolerance: self.policy.holdout_tolerance,
                });
            }
        }
        None
    }

    fn rejected(&self, rows: u64, holdout_cases: usize, rejection: GateRejection) -> RefitReport {
        self.refits_rejected.fetch_add(1, Ordering::Relaxed);
        RefitReport {
            model: self.name.clone(),
            promoted: false,
            version: None,
            active_version: self.active_version(),
            rows,
            holdout_cases,
            references_checked: self.references.len(),
            rejection: Some(rejection),
        }
    }
}

/// Compiles a refit network into a serving artifact, reusing the
/// incumbent's structure and deduction policy. This is the companion to
/// [`ModelLifecycle::submit`]: candidates fitted outside the lifecycle
/// (a batch job, another site) are compiled here and then pushed through
/// the same conformance gate as an in-process refit.
///
/// # Errors
///
/// Propagates junction-tree compilation errors.
pub fn compile_candidate(
    incumbent: &Arc<CompiledModel>,
    network: abbd_bbn::Network,
) -> Result<Arc<CompiledModel>> {
    let model = DiagnosticModel::from_parts(incumbent.model().circuit_model().clone(), network);
    Ok(CompiledModel::compile(model)?
        .with_policy(*incumbent.policy())?
        .shared())
}

/// `ln P(observation)` under `compiled`, or `None` when the observation
/// is impossible (or malformed) under it.
fn log_likelihood_of(
    compiled: &Arc<CompiledModel>,
    ws: &mut abbd_bbn::PropagationWorkspace,
    observation: &Observation,
) -> Option<f64> {
    let evidence = compiled.evidence_from(observation).ok()?;
    compiled
        .jt()
        .propagate_in(ws, &evidence)
        .ok()
        .map(|cal| cal.log_likelihood())
}

/// The background refit thread: polls a set of lifecycles on a fixed
/// interval and runs [`ModelLifecycle::refit`] on whichever are
/// [`ModelLifecycle::due`]. Compilation happens entirely on this thread,
/// so the serving workers' compile counters stay untouched (the
/// zero-compile steady-state invariant survives a refit). Dropping the
/// refitter stops and joins it promptly.
#[derive(Debug)]
pub struct Refitter {
    shared: Arc<RefitterShared>,
    handle: Option<thread::JoinHandle<()>>,
}

#[derive(Debug)]
struct RefitterShared {
    stop: Mutex<bool>,
    wake: Condvar,
    ticks: AtomicU64,
}

impl Refitter {
    /// Spawns the background thread over `lifecycles`, checking every
    /// `interval`.
    pub fn spawn(lifecycles: Vec<Arc<ModelLifecycle>>, interval: Duration) -> Self {
        let shared = Arc::new(RefitterShared {
            stop: Mutex::new(false),
            wake: Condvar::new(),
            ticks: AtomicU64::new(0),
        });
        let thread_shared = Arc::clone(&shared);
        let handle = thread::Builder::new()
            .name("abbd-refitter".into())
            .spawn(move || loop {
                {
                    let mut stopped = thread_shared.stop.lock().expect("refitter stop lock");
                    while !*stopped {
                        let (guard, timeout) = thread_shared
                            .wake
                            .wait_timeout(stopped, interval)
                            .expect("refitter stop lock");
                        stopped = guard;
                        if timeout.timed_out() {
                            break;
                        }
                    }
                    if *stopped {
                        return;
                    }
                }
                for lifecycle in &lifecycles {
                    if lifecycle.due() {
                        let _report = lifecycle.refit();
                    }
                }
                thread_shared.ticks.fetch_add(1, Ordering::Relaxed);
            })
            .expect("refitter thread spawns");
        Refitter {
            shared,
            handle: Some(handle),
        }
    }

    /// Poll cycles completed (each cycle checks every lifecycle once).
    pub fn ticks(&self) -> u64 {
        self.shared.ticks.load(Ordering::Relaxed)
    }

    /// Stops and joins the thread (idempotent; also runs on drop).
    pub fn stop(&mut self) {
        *self.shared.stop.lock().expect("refitter stop lock") = true;
        self.shared.wake.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Refitter {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use crate::session::SessionRequest;

    fn toy() -> Arc<CompiledModel> {
        fixtures::toy_compiled_model()
    }

    /// A terminal-ish observation over the toy model's observables.
    fn obs(out1: usize, out2: usize, out3: usize) -> Observation {
        let mut o = Observation::new();
        o.set("pin", 1)
            .set("out1", out1)
            .set("out2", out2)
            .set("out3", out3);
        o
    }

    fn quick_policy() -> RefitPolicy {
        RefitPolicy {
            min_rows: 8,
            em: EmConfig {
                max_iterations: 10,
                tolerance: 1e-6,
            },
            ess: 10.0,
            holdout: 16,
            holdout_tolerance: 1.0,
        }
    }

    fn seeded_lifecycle() -> ModelLifecycle {
        let compiled = toy();
        let references =
            conformance::self_references(&compiled, [("bad-out1".to_string(), obs(0, 0, 1))])
                .unwrap();
        ModelLifecycle::new("toy", compiled, references, quick_policy())
    }

    fn feed(lc: &ModelLifecycle, n: usize) {
        for i in 0..n {
            let o = obs(i % 2, (i / 2) % 2, 1);
            assert!(lc.aggregator().record(&o, &[("out1".into(), 2.5)]));
        }
    }

    #[test]
    fn aggregator_dedups_and_prices() {
        let compiled = toy();
        let agg = TraceAggregator::new(&compiled, 4);
        for _ in 0..6 {
            agg.record(&obs(0, 1, 1), &[("out2".into(), 4.0)]);
        }
        agg.record(&obs(1, 1, 1), &[("out2".into(), 2.0)]);
        // Unknown variables and out-of-range states are skipped whole.
        let mut foreign = Observation::new();
        foreign.set("not-a-var", 0);
        assert!(!agg.record(&foreign, &[]));
        agg.record_timings(&[("out3".into(), 1.0), ("bogus".into(), f64::NAN)]);

        let snap = agg.snapshot();
        assert_eq!(snap.rows, 7);
        assert_eq!(snap.cases.len(), 2, "dedup collapses repeated outcomes");
        let total_weight: f64 = snap.cases.iter().map(|c| c.weight()).sum();
        assert_eq!(total_weight, 7.0);
        assert_eq!(snap.holdout.len(), 4, "holdout ring is bounded");
        let out2 = snap.costs.iter().find(|(n, _, _)| n == "out2").unwrap();
        assert!((out2.1 - (6.0 * 4.0 + 2.0) / 7.0).abs() < 1e-12);
        assert_eq!(out2.2, 7);
        assert!(snap.costs.iter().any(|(n, _, _)| n == "out3"));
        assert!(!snap.costs.iter().any(|(n, _, _)| n == "bogus"));
    }

    #[test]
    fn refit_below_min_rows_is_rejected_structurally() {
        let lc = seeded_lifecycle();
        let report = lc.refit();
        assert!(!report.promoted);
        assert!(matches!(
            report.rejection,
            Some(GateRejection::InsufficientData { rows: 0, min: 8 })
        ));
        assert_eq!(lc.refits_run(), 1);
        assert_eq!(lc.refits_rejected(), 1);
        assert_eq!(lc.active_version(), 1);
    }

    #[test]
    fn refit_promotes_and_rollback_restores() {
        let lc = seeded_lifecycle();
        feed(&lc, 24);
        assert!(lc.due());
        let seed = lc.active();
        let report = lc.refit();
        assert!(report.promoted, "rejection: {:?}", report.rejection);
        assert_eq!(report.version, Some(2));
        assert_eq!(lc.active_version(), 2);
        assert!(!Arc::ptr_eq(&seed, &lc.active()), "default was swapped");
        assert!(lc.version(1).is_some(), "old version stays retained");
        let infos = lc.versions();
        assert_eq!(infos.len(), 2);
        assert!(!infos[0].active && infos[1].active);
        assert_eq!(infos[1].source, "refit");
        assert_eq!(infos[1].rows_fitted, 24);
        assert!(infos[1].learned_costs.iter().any(|(n, _)| n == "out1"));
        let cm = lc.learned_cost_model().expect("timings were aggregated");
        assert!((cm.cost_of("out1", false) - 2.5).abs() < 1e-12);

        // Rollback repoints the default without dropping v2.
        assert_eq!(lc.activate(1).unwrap(), 1);
        assert!(Arc::ptr_eq(&seed, &lc.active()));
        assert!(lc.version(2).is_some());
        assert!(matches!(lc.activate(9), Err(Error::Fleet(_))));
        assert!(matches!(lc.activate(0), Err(Error::Fleet(_))));
    }

    #[test]
    fn sessions_pin_their_compile_across_a_swap() {
        let lc = seeded_lifecycle();
        feed(&lc, 24);
        let pinned = lc.active();
        let mut session =
            crate::session::DiagnosisSession::new(Arc::clone(&pinned), Default::default()).unwrap();
        let before = session
            .serve_round(&SessionRequest::new(obs(0, 0, 1)))
            .unwrap();
        assert!(lc.refit().promoted);
        // The open session still serves — off the same Arc it captured.
        let after = session
            .serve_round(&SessionRequest::new(obs(0, 0, 1)))
            .unwrap();
        assert_eq!(before.posteriors, after.posteriors);
        assert!(Arc::ptr_eq(session.compiled(), &pinned));
    }

    #[test]
    fn corrupted_candidate_is_rejected_with_a_structured_reason() {
        let lc = seeded_lifecycle();
        feed(&lc, 24);
        // Build a candidate whose CPT rows are reversed — a maximally
        // wrong but structurally valid model.
        let incumbent = lc.active();
        let mut net = incumbent.model().network().clone();
        for v in incumbent.model().network().variables() {
            let card = incumbent.model().network().card(v);
            let scrambled: Vec<f64> = incumbent
                .model()
                .network()
                .cpt(v)
                .chunks(card)
                .flat_map(|row| row.iter().rev().copied().collect::<Vec<_>>())
                .collect();
            net.set_cpt_values(v, scrambled).unwrap();
        }
        let candidate = compile_candidate(&incumbent, net).unwrap();
        let report = lc.submit(candidate, "submitted");
        assert!(!report.promoted);
        let rejection = report.rejection.expect("structured reason");
        assert!(
            matches!(
                rejection,
                GateRejection::ReferenceMismatch { .. } | GateRejection::HoldoutRegression { .. }
            ),
            "got: {rejection}"
        );
        assert!(!rejection.to_string().is_empty());
        assert_eq!(lc.active_version(), 1, "default untouched");
    }

    #[test]
    fn background_refitter_promotes_when_due() {
        let lc = seeded_lifecycle().shared();
        feed(&lc, 24);
        let refitter = Refitter::spawn(vec![Arc::clone(&lc)], Duration::from_millis(5));
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while lc.active_version() == 1 && std::time::Instant::now() < deadline {
            thread::sleep(Duration::from_millis(5));
        }
        drop(refitter);
        assert_eq!(lc.active_version(), 2, "background refit promoted");
        assert_eq!(lc.refits_run(), 1, "refitter only fits when due");
    }
}
