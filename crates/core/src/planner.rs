//! Cost-aware lookahead test planning: the economics layer on top of the
//! [`crate::voi`] kernel.
//!
//! The paper's step-one/step-two measurements are economically
//! asymmetric: an ATE test costs tester-seconds, switching to a different
//! stimulus suite costs a whole reconfiguration (the suite's operating
//! point must be re-applied and settled), and physically probing an
//! internal block in step two costs FIB/SEM time — orders of magnitude
//! more than any electrical test. Ranking candidates by raw expected
//! entropy gain (PR 2's myopic loop) ignores all of that, and one-step
//! greedy selection can prefer a test whose information the *next* test
//! would have delivered more cheaply.
//!
//! This module adds both missing pieces:
//!
//! * [`CostModel`] prices each candidate measurement in tester-seconds —
//!   a default per-test cost, per-variable overrides, a per-probe cost
//!   for latent candidates, and a suite-switch penalty charged whenever
//!   the candidate's stimulus suite differs from the currently applied
//!   one (the quantity [`abbd_ate::DeviceSession::suites_touched`] and
//!   `stimulus_switches` count on the bench). Gain divided by this cost
//!   is the gain-per-tester-second ranking of Zheng & Rish's cost-aware
//!   test selection.
//! * [`LookaheadPlanner`] evaluates candidates by bounded-depth
//!   expectimax instead of one-step gain: the value of measuring `c` is
//!   its immediate expected entropy reduction *plus* the expected value
//!   of the best follow-up measurement under each of `c`'s outcomes,
//!   recursively to a configurable depth (Siddiqi & Huang's sequential
//!   lookahead). Hypothetical outcome stacks ride through
//!   [`abbd_bbn::JunctionTree::propagate_hypotheticals_in`] with one
//!   preallocated workspace per depth level, so steady-state planning is
//!   compile-free and allocation-free like the myopic path.
//!
//! [`crate::SequentialDiagnoser`] selects among the three behaviours via
//! [`Strategy`].

use crate::error::{Error, Result};
use crate::session::CompiledModel;
use crate::voi::PROB_FLOOR;
use abbd_bbn::{Evidence, JunctionTree, Network, PropagationWorkspace, VarId};
use serde::{Deserialize, Serialize};

/// How [`crate::SequentialDiagnoser`] ranks candidate measurements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Strategy {
    /// Raw expected information gain, one step ahead (the PR 2
    /// behaviour). Costs are recorded on the scored candidates but do not
    /// influence the ranking.
    #[default]
    Myopic,
    /// Expected information gain divided by the [`CostModel`] cost of the
    /// measurement: gain per tester-second.
    CostWeighted,
    /// Bounded-depth expectimax ([`LookaheadPlanner`]): the candidate's
    /// value is its immediate gain plus the expected value of the best
    /// follow-up plan under each outcome, `depth` measurements deep,
    /// divided by the measurement's cost. `Lookahead { depth: 1 }` with a
    /// unit cost model reproduces [`Strategy::Myopic`] decisions exactly.
    Lookahead {
        /// How many measurements deep the expectimax expands (≥ 1). Each
        /// extra level multiplies the number of hypothetical propagations
        /// per decision by roughly `candidates × states`, so depths
        /// beyond [`MAX_LOOKAHEAD_DEPTH`] are rejected.
        depth: usize,
    },
}

/// The default follow-up discount `γ` of [`LookaheadPlanner`]: one
/// level of follow-up is worth at most half an immediate nat, which
/// keeps depth-`d` values discriminating between first picks (see the
/// planner docs for the degeneracy at `γ = 1`).
pub const DEFAULT_LOOKAHEAD_DISCOUNT: f64 = 0.5;

/// The largest accepted [`Strategy::Lookahead`] depth. Depth `d` expands
/// `O((candidates · states)^d)` hypothetical propagations per decision;
/// beyond 4 the planner would be slower than simply running the tests.
pub const MAX_LOOKAHEAD_DEPTH: usize = 4;

impl Strategy {
    /// Checks the strategy is well-formed.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidStrategy`] for a lookahead depth of zero
    /// or one beyond [`MAX_LOOKAHEAD_DEPTH`].
    pub fn validate(&self) -> Result<()> {
        if let Strategy::Lookahead { depth } = *self {
            if depth == 0 || depth > MAX_LOOKAHEAD_DEPTH {
                return Err(Error::InvalidStrategy(format!(
                    "lookahead depth {depth} outside 1..={MAX_LOOKAHEAD_DEPTH}"
                )));
            }
        }
        Ok(())
    }
}

/// Prices one candidate measurement in tester-seconds.
///
/// Three cost classes compose per candidate:
///
/// * a base cost — the per-variable override if one was set, otherwise
///   the probe cost for latent candidates (step-two FIB/SEM time) or the
///   default test cost for observables;
/// * a suite-switch penalty, charged when the candidate is assigned to a
///   stimulus suite different from the currently applied one (tracked by
///   [`CostModel::note_measured`] as the loop executes measurements).
///
/// All costs are strictly positive tester-seconds except the switch
/// penalty, which may be zero. [`CostModel::unit`] (cost 1 for
/// everything, no switch penalty) makes cost-normalised rankings
/// coincide with raw-gain rankings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Default cost of one specification test, tester-seconds.
    test_seconds: f64,
    /// Penalty for measuring under a not-currently-applied stimulus
    /// suite (reconfiguration + settling).
    suite_switch_seconds: f64,
    /// Default cost of physically probing a latent block (FIB/SEM).
    probe_seconds: f64,
    /// Per-variable base-cost overrides.
    overrides: Vec<(String, f64)>,
    /// Variable → stimulus-suite assignment for switch accounting.
    suite_of: Vec<(String, usize)>,
    /// The currently applied suite, if any.
    current_suite: Option<usize>,
}

impl CostModel {
    /// A cost model with explicit test / suite-switch / probe prices.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidCostModel`] unless `test_seconds` and
    /// `probe_seconds` are positive and finite and
    /// `suite_switch_seconds` is non-negative and finite.
    pub fn new(test_seconds: f64, suite_switch_seconds: f64, probe_seconds: f64) -> Result<Self> {
        let model = CostModel {
            test_seconds,
            suite_switch_seconds,
            probe_seconds,
            overrides: Vec::new(),
            suite_of: Vec::new(),
            current_suite: None,
        };
        model.validate()?;
        Ok(model)
    }

    /// The unit model: every measurement costs exactly 1, switching
    /// suites is free. Under it, gain-per-cost equals raw gain.
    pub fn unit() -> Self {
        CostModel {
            test_seconds: 1.0,
            suite_switch_seconds: 0.0,
            probe_seconds: 1.0,
            overrides: Vec::new(),
            suite_of: Vec::new(),
            current_suite: None,
        }
    }

    /// Checks every price is usable as a divisor.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidCostModel`] for non-positive or non-finite
    /// test/probe/override costs, or a negative/non-finite switch
    /// penalty.
    pub fn validate(&self) -> Result<()> {
        let positive = |what: &str, v: f64| {
            if v > 0.0 && v.is_finite() {
                Ok(())
            } else {
                Err(Error::InvalidCostModel(format!(
                    "{what} {v} must be positive and finite"
                )))
            }
        };
        positive("test_seconds", self.test_seconds)?;
        positive("probe_seconds", self.probe_seconds)?;
        if !(self.suite_switch_seconds >= 0.0 && self.suite_switch_seconds.is_finite()) {
            return Err(Error::InvalidCostModel(format!(
                "suite_switch_seconds {} must be non-negative and finite",
                self.suite_switch_seconds
            )));
        }
        for (name, secs) in &self.overrides {
            positive(&format!("override for `{name}`"), *secs)?;
        }
        Ok(())
    }

    /// Overrides the base cost of one variable (replacing any previous
    /// override).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidCostModel`] for a non-positive or
    /// non-finite cost.
    pub fn set_cost(&mut self, variable: impl Into<String>, seconds: f64) -> Result<&mut Self> {
        if !(seconds > 0.0 && seconds.is_finite()) {
            return Err(Error::InvalidCostModel(format!(
                "cost {seconds} must be positive and finite"
            )));
        }
        let name = variable.into();
        if let Some(slot) = self.overrides.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = seconds;
        } else {
            self.overrides.push((name, seconds));
        }
        Ok(self)
    }

    /// Assigns a variable to a stimulus suite for switch accounting
    /// (replacing any previous assignment). Unassigned variables never
    /// pay the switch penalty.
    pub fn assign_suite(&mut self, variable: impl Into<String>, suite: usize) -> &mut Self {
        let name = variable.into();
        if let Some(slot) = self.suite_of.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = suite;
        } else {
            self.suite_of.push((name, suite));
        }
        self
    }

    /// The suite a variable was assigned to, if any.
    pub fn suite_of(&self, variable: &str) -> Option<usize> {
        self.suite_of
            .iter()
            .find(|(n, _)| n == variable)
            .map(|(_, s)| *s)
    }

    /// The currently applied stimulus suite.
    pub fn current_suite(&self) -> Option<usize> {
        self.current_suite
    }

    /// Declares which suite is currently applied on the bench (e.g. the
    /// suite whose controls seeded the diagnosis).
    pub fn set_current_suite(&mut self, suite: Option<usize>) -> &mut Self {
        self.current_suite = suite;
        self
    }

    /// The cost of measuring `variable` right now, given that it lives in
    /// `suite` (`None` = no suite, never a switch): the base cost plus
    /// the switch penalty when `suite` differs from the current one.
    pub fn cost_in_suite(&self, variable: &str, is_probe: bool, suite: Option<usize>) -> f64 {
        let base = self
            .overrides
            .iter()
            .find(|(n, _)| n == variable)
            .map(|(_, s)| *s)
            .unwrap_or(if is_probe {
                self.probe_seconds
            } else {
                self.test_seconds
            });
        let switch = match (suite, self.current_suite) {
            (Some(s), Some(cur)) if s != cur => self.suite_switch_seconds,
            _ => 0.0,
        };
        base + switch
    }

    /// The cost of measuring `variable` right now, using its own suite
    /// assignment for the switch decision.
    pub fn cost_of(&self, variable: &str, is_probe: bool) -> f64 {
        self.cost_in_suite(variable, is_probe, self.suite_of(variable))
    }

    /// Records that `variable` was measured: if it carries a suite
    /// assignment, that suite becomes the current one.
    pub fn note_measured(&mut self, variable: &str) {
        if let Some(suite) = self.suite_of(variable) {
            self.current_suite = Some(suite);
        }
    }

    /// Every price multiplied by `factor` — tester-seconds to
    /// tester-minutes, say. Cost-weighted rankings are invariant under
    /// this (the property suite pins it): scaling every divisor scales
    /// every score by the same constant.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidCostModel`] for a non-positive or
    /// non-finite factor.
    pub fn scaled(&self, factor: f64) -> Result<Self> {
        if !(factor > 0.0 && factor.is_finite()) {
            return Err(Error::InvalidCostModel(format!(
                "scale factor {factor} must be positive and finite"
            )));
        }
        let mut scaled = self.clone();
        scaled.test_seconds *= factor;
        scaled.suite_switch_seconds *= factor;
        scaled.probe_seconds *= factor;
        for (_, secs) in &mut scaled.overrides {
            *secs *= factor;
        }
        scaled.validate()?;
        Ok(scaled)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::unit()
    }
}

/// Per-level reusable buffers of the expectimax recursion: one
/// propagation workspace, one outcome-distribution buffer sized for the
/// widest variable, and one per-latent entropy buffer.
#[derive(Debug, Clone)]
struct Level {
    ws: PropagationWorkspace,
    dist: Vec<f64>,
    lat_h: Vec<f64>,
}

/// Bounded-depth expectimax over candidate measurements.
///
/// The value of measuring candidate `c` under context `e` with `d`
/// levels of lookahead is
///
/// ```text
/// V_d(c | e) = gain(c | e) + γ · Σ_s P(c = s | e) · max_{c' ≠ c} V_{d-1}(c' | e, c = s)
/// V_0(· | e) = 0
/// ```
///
/// where `gain` is the VOI kernel's expected entropy reduction (clamped
/// at zero before any cost normalisation, so float noise can never turn
/// a useless candidate into a negative-cost bargain) and
/// `γ =` [`LookaheadPlanner::discount`] weights the follow-up plan.
/// `V_1` is exactly the myopic gain; every additional level adds the
/// (discounted, non-negative) expected value of the best follow-up plan,
/// which makes `V_d` monotone non-decreasing in `d` (pinned by the
/// planner property suite).
///
/// The discount matters: entropy reduction over a *plan* is nearly
/// submodular, so with `γ = 1` every depth-2 plan promises almost the
/// same total and the first pick degenerates to noise — the planner
/// would happily open with an uninformative test because the follow-up
/// "recovers" the difference. `γ < 1` keeps the front-loaded candidate
/// ahead unless the follow-up genuinely changes the picture (the classic
/// discounted-horizon treatment of sequential test selection); the
/// default [`DEFAULT_LOOKAHEAD_DISCOUNT`] keeps one follow-up level
/// worth at most half an immediate nat.
///
/// All propagations run through the engine's compiled junction tree with
/// one preallocated workspace per recursion level
/// ([`abbd_bbn::JunctionTree::propagate_hypotheticals_in`] stacks the
/// outcome path as hypothetical findings without touching the evidence
/// set), so steady-state planning performs **zero junction-tree
/// compilations and zero heap allocations** — the same contract as the
/// myopic kernel, extended to depth `d` and asserted by
/// `tests/zero_alloc.rs`.
#[derive(Debug, Clone)]
pub struct LookaheadPlanner {
    depth: usize,
    discount: f64,
    latents: Vec<VarId>,
    /// `depth + 1` levels: the base context plus one per outcome stacked.
    levels: Vec<Level>,
    /// The hypothetical-outcome path of the current recursion branch.
    path: Vec<(VarId, usize)>,
    /// Used-flags aligned with the candidate slice under evaluation.
    used: Vec<bool>,
    /// Per-candidate values from the latest [`LookaheadPlanner::values`].
    values: Vec<f64>,
}

impl LookaheadPlanner {
    /// Builds a planner over a shared compiled model with all buffers
    /// sized for `depth` levels of lookahead.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidStrategy`] for a depth outside
    /// `1..=`[`MAX_LOOKAHEAD_DEPTH`] and propagates variable-lookup
    /// errors.
    pub fn new(compiled: &CompiledModel, depth: usize) -> Result<Self> {
        Strategy::Lookahead { depth }.validate()?;
        let model = compiled.model();
        let net = model.network();
        let latents: Vec<VarId> = model
            .circuit_model()
            .latents()
            .iter()
            .map(|name| model.var(name))
            .collect::<Result<_>>()?;
        let max_card = net.variables().map(|v| net.card(v)).max().unwrap_or(1);
        let levels = (0..=depth)
            .map(|_| Level {
                ws: compiled.make_workspace(),
                dist: vec![0.0; max_card],
                lat_h: Vec::with_capacity(latents.len()),
            })
            .collect();
        Ok(LookaheadPlanner {
            depth,
            discount: DEFAULT_LOOKAHEAD_DISCOUNT,
            latents,
            levels,
            path: Vec::with_capacity(depth),
            used: Vec::new(),
            values: Vec::new(),
        })
    }

    /// The configured lookahead depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The follow-up discount factor `γ`.
    pub fn discount(&self) -> f64 {
        self.discount
    }

    /// Replaces the follow-up discount factor `γ`. `1.0` scores plans by
    /// undiscounted total entropy reduction (see the type docs for why
    /// that degenerates), `0.0` collapses every depth to myopic.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidStrategy`] for a factor outside `[0, 1]`.
    pub fn set_discount(&mut self, discount: f64) -> Result<()> {
        if !(0.0..=1.0).contains(&discount) {
            return Err(Error::InvalidStrategy(format!(
                "lookahead discount {discount} outside [0, 1]"
            )));
        }
        self.discount = discount;
        Ok(())
    }

    /// Evaluates every candidate's expectimax value `V_depth(c | e)` and
    /// returns them aligned with `candidates`. None of the candidates may
    /// be pinned by `evidence` (measured variables stop being
    /// candidates), and `compiled` must be the model the planner was
    /// built for.
    ///
    /// After the first call (which may grow the candidate-tracking
    /// buffers to capacity), evaluation is allocation-free.
    ///
    /// # Errors
    ///
    /// Propagates propagation errors (e.g. impossible evidence).
    pub fn values(
        &mut self,
        compiled: &CompiledModel,
        evidence: &Evidence,
        candidates: &[VarId],
    ) -> Result<&[f64]> {
        self.used.clear();
        self.used.resize(candidates.len(), false);
        self.values.clear();
        self.values.resize(candidates.len(), 0.0);
        self.path.clear();
        eval_level(
            compiled.jt(),
            compiled.model().network(),
            evidence,
            &self.latents,
            candidates,
            &mut self.used,
            &mut self.path,
            &mut self.levels,
            self.depth,
            self.discount,
            Some(&mut self.values),
        )?;
        Ok(&self.values)
    }
}

/// One expectimax node: propagates `evidence` plus the stacked outcome
/// `path`, reads the per-latent entropies, and — when `depth > 0` —
/// evaluates every unused candidate, returning the node's total latent
/// entropy and the best candidate value. At the root, `out` additionally
/// receives every candidate's value.
#[allow(clippy::too_many_arguments)]
fn eval_level(
    jt: &JunctionTree,
    net: &Network,
    evidence: &Evidence,
    latents: &[VarId],
    candidates: &[VarId],
    used: &mut [bool],
    path: &mut Vec<(VarId, usize)>,
    levels: &mut [Level],
    depth: usize,
    discount: f64,
    mut out: Option<&mut [f64]>,
) -> Result<(f64, f64)> {
    let (level, rest) = levels.split_first_mut().expect("planner sized for depth");
    let view = jt
        .propagate_hypotheticals_in(&mut level.ws, evidence, path)
        .map_err(Error::Bbn)?;
    level.lat_h.clear();
    for &v in latents {
        level
            .lat_h
            .push(view.posterior_entropy(v).map_err(Error::Bbn)?);
    }
    let total: f64 = level.lat_h.iter().sum();
    if depth == 0 {
        return Ok((total, 0.0));
    }
    let mut best = 0.0f64;
    for i in 0..candidates.len() {
        if used[i] {
            continue;
        }
        let c = candidates[i];
        // A candidate the outcome path already pins would stack a second
        // hypothetical on the same variable; `used` prevents re-picking a
        // candidate, and path entries always come from the candidate set,
        // so this cannot happen — but latent candidates can coincide with
        // scored latents, which the own-entropy exclusion handles.
        let own = latents
            .iter()
            .position(|&l| l == c)
            .map_or(0.0, |j| level.lat_h[j]);
        let card = net.card(c);
        view.posterior_into(c, &mut level.dist[..card])
            .map_err(Error::Bbn)?;
        let mut expected_after = 0.0;
        let mut expected_follow = 0.0;
        used[i] = true;
        for state in 0..card {
            let p_state = level.dist[state];
            if p_state <= PROB_FLOOR {
                continue;
            }
            path.push((c, state));
            // The child context pins `c = state`, so the child's total
            // latent entropy already excludes `c` (a point-mass posterior
            // has zero entropy).
            let (after, follow) = eval_level(
                jt,
                net,
                evidence,
                latents,
                candidates,
                used,
                path,
                rest,
                depth - 1,
                discount,
                None,
            )?;
            path.pop();
            expected_after += p_state * after;
            expected_follow += p_state * follow;
        }
        used[i] = false;
        // Clamp the immediate gain at zero *before* any cost
        // normalisation: marginal-entropy rounding can leave a useless
        // candidate at ≈ −1e-16, which would flip sign when divided by a
        // cost and outrank genuinely neutral candidates.
        let gain = (total - own - expected_after).max(0.0);
        let value = gain + discount * expected_follow;
        if let Some(buf) = out.as_deref_mut() {
            buf[i] = value;
        }
        if value > best {
            best = value;
        }
    }
    Ok((total, best))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Observation;
    use crate::fixtures::toy_sequential_engine;

    #[test]
    fn strategy_validation() {
        assert!(Strategy::Myopic.validate().is_ok());
        assert!(Strategy::CostWeighted.validate().is_ok());
        assert!(Strategy::Lookahead { depth: 1 }.validate().is_ok());
        assert!(Strategy::Lookahead {
            depth: MAX_LOOKAHEAD_DEPTH
        }
        .validate()
        .is_ok());
        assert!(matches!(
            Strategy::Lookahead { depth: 0 }.validate(),
            Err(Error::InvalidStrategy(_))
        ));
        assert!(matches!(
            Strategy::Lookahead {
                depth: MAX_LOOKAHEAD_DEPTH + 1
            }
            .validate(),
            Err(Error::InvalidStrategy(_))
        ));
        assert_eq!(Strategy::default(), Strategy::Myopic);
    }

    #[test]
    fn cost_model_validation_and_pricing() {
        assert!(CostModel::new(0.0, 0.0, 1.0).is_err());
        assert!(CostModel::new(1.0, -1.0, 1.0).is_err());
        assert!(CostModel::new(1.0, 0.0, f64::NAN).is_err());
        let mut m = CostModel::new(2.0, 10.0, 120.0).unwrap();
        assert!(m.set_cost("sw", 0.0).is_err());
        m.set_cost("sw", 5.0).unwrap();
        m.assign_suite("reg1", 0).assign_suite("sw", 1);
        assert_eq!(m.suite_of("reg1"), Some(0));
        assert_eq!(m.suite_of("ghost"), None);

        // No current suite: never a switch.
        assert_eq!(m.cost_of("reg1", false), 2.0);
        assert_eq!(m.cost_of("sw", false), 5.0, "override wins");
        assert_eq!(m.cost_of("hcbg", true), 120.0, "probe price");

        m.set_current_suite(Some(0));
        assert_eq!(m.cost_of("reg1", false), 2.0, "same suite");
        assert_eq!(m.cost_of("sw", false), 15.0, "cross-suite penalty");
        assert_eq!(m.cost_of("unassigned", false), 2.0, "no suite, no switch");

        m.note_measured("sw");
        assert_eq!(m.current_suite(), Some(1));
        assert_eq!(m.cost_of("reg1", false), 12.0);
        m.note_measured("unassigned");
        assert_eq!(m.current_suite(), Some(1), "unassigned keeps the suite");
    }

    #[test]
    fn scaling_multiplies_every_price() {
        let mut m = CostModel::new(2.0, 4.0, 8.0).unwrap();
        m.set_cost("a", 3.0).unwrap();
        m.assign_suite("a", 1);
        m.set_current_suite(Some(0));
        let s = m.scaled(10.0).unwrap();
        assert_eq!(s.cost_of("a", false), 70.0, "(3 + 4) * 10");
        assert_eq!(s.cost_of("b", false), 20.0);
        assert_eq!(s.cost_of("b", true), 80.0);
        assert!(m.scaled(0.0).is_err());
        assert!(m.scaled(f64::INFINITY).is_err());
    }

    #[test]
    fn depth_one_values_equal_myopic_gains() {
        let eng = toy_sequential_engine();
        let mut obs = Observation::new();
        obs.set("pin", 1);
        let evidence = eng.evidence_from(&obs).unwrap();
        let vars: Vec<VarId> = ["out1", "out2", "out3"]
            .iter()
            .map(|n| eng.model().var(n).unwrap())
            .collect();
        let mut planner = LookaheadPlanner::new(eng.compiled(), 1).unwrap();
        let values = planner
            .values(eng.compiled(), &evidence, &vars)
            .unwrap()
            .to_vec();
        for (name, value) in ["out1", "out2", "out3"].iter().zip(&values) {
            let gain = eng.expected_information_gain(&obs, name).unwrap();
            assert_eq!(
                *value, gain,
                "depth-1 value for {name} must equal the myopic gain"
            );
        }
        // The informative output dominates, as in the myopic tests.
        assert!(values[0] > values[1] && values[0] > values[2]);
    }

    #[test]
    fn deeper_lookahead_never_loses_value() {
        let eng = toy_sequential_engine();
        let mut obs = Observation::new();
        obs.set("pin", 1);
        let evidence = eng.evidence_from(&obs).unwrap();
        let vars: Vec<VarId> = ["out1", "out2", "out3"]
            .iter()
            .map(|n| eng.model().var(n).unwrap())
            .collect();
        let mut prev: Option<Vec<f64>> = None;
        for depth in 1..=3 {
            let mut planner = LookaheadPlanner::new(eng.compiled(), depth).unwrap();
            let values = planner
                .values(eng.compiled(), &evidence, &vars)
                .unwrap()
                .to_vec();
            assert!(values.iter().all(|v| v.is_finite() && *v >= 0.0));
            if let Some(prev) = &prev {
                for (d, (lo, hi)) in prev.iter().zip(&values).enumerate() {
                    assert!(
                        hi >= lo,
                        "candidate {d}: depth {depth} value {hi} < depth {} value {lo}",
                        depth - 1
                    );
                }
            }
            prev = Some(values);
        }
    }

    #[test]
    fn planner_rejects_bad_depths() {
        let eng = toy_sequential_engine();
        assert!(matches!(
            LookaheadPlanner::new(eng.compiled(), 0),
            Err(Error::InvalidStrategy(_))
        ));
        assert!(matches!(
            LookaheadPlanner::new(eng.compiled(), MAX_LOOKAHEAD_DEPTH + 1),
            Err(Error::InvalidStrategy(_))
        ));
        assert_eq!(LookaheadPlanner::new(eng.compiled(), 2).unwrap().depth(), 2);
    }

    #[test]
    fn discount_bounds_and_extremes() {
        let eng = toy_sequential_engine();
        let mut planner = LookaheadPlanner::new(eng.compiled(), 2).unwrap();
        assert_eq!(planner.discount(), DEFAULT_LOOKAHEAD_DISCOUNT);
        assert!(planner.set_discount(-0.1).is_err());
        assert!(planner.set_discount(1.1).is_err());
        assert!(planner.set_discount(f64::NAN).is_err());

        let mut obs = Observation::new();
        obs.set("pin", 1);
        let evidence = eng.evidence_from(&obs).unwrap();
        let vars: Vec<VarId> = ["out1", "out2", "out3"]
            .iter()
            .map(|n| eng.model().var(n).unwrap())
            .collect();
        // γ = 0 collapses any depth to the myopic gain.
        planner.set_discount(0.0).unwrap();
        let zeroed = planner
            .values(eng.compiled(), &evidence, &vars)
            .unwrap()
            .to_vec();
        let mut myopic = LookaheadPlanner::new(eng.compiled(), 1).unwrap();
        let base = myopic
            .values(eng.compiled(), &evidence, &vars)
            .unwrap()
            .to_vec();
        assert_eq!(zeroed, base);
        // γ = 1 never scores below the default discount.
        planner.set_discount(1.0).unwrap();
        let undiscounted = planner
            .values(eng.compiled(), &evidence, &vars)
            .unwrap()
            .to_vec();
        for (u, z) in undiscounted.iter().zip(&zeroed) {
            assert!(u >= z);
        }
    }
}
