//! The model builder: structure + expert estimate + cases → a fitted
//! diagnostic model (the paper's §III-A modelling flow end to end).

use crate::error::{Error, Result};
use crate::model::CircuitModel;
use abbd_bbn::learn::{fit_conjugate_gradient, fit_em, Case, CgConfig, DirichletPrior, EmConfig};
use abbd_bbn::{Network, NetworkBuilder, VarId};
use abbd_dlog2bbn::NamedCase;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The product expert's rough CPT estimates (paper: "the product designer
/// initially provided a rough estimate of the conditional probability
/// tables"), with an equivalent sample size controlling how strongly the
/// estimate resists the data during fine-tuning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExpertKnowledge {
    cpts: BTreeMap<String, Vec<f64>>,
    equivalent_sample_size: f64,
}

impl ExpertKnowledge {
    /// An empty estimate with the given equivalent sample size; variables
    /// without an explicit table start from uniform CPTs.
    pub fn new(equivalent_sample_size: f64) -> Self {
        ExpertKnowledge {
            cpts: BTreeMap::new(),
            equivalent_sample_size,
        }
    }

    /// Sets the expert CPT of `variable` as rows over parent configurations
    /// (last declared parent fastest), each row a distribution over the
    /// variable's states.
    pub fn cpt<N, R, V>(&mut self, variable: N, rows: R) -> &mut Self
    where
        N: Into<String>,
        R: IntoIterator<Item = V>,
        V: IntoIterator<Item = f64>,
    {
        self.cpts.insert(
            variable.into(),
            rows.into_iter().flat_map(|r| r.into_iter()).collect(),
        );
        self
    }

    /// The equivalent sample size of the estimate.
    pub fn equivalent_sample_size(&self) -> f64 {
        self.equivalent_sample_size
    }

    /// The flat expert table for `variable`, if provided.
    pub fn table(&self, variable: &str) -> Option<&[f64]> {
        self.cpts.get(variable).map(Vec::as_slice)
    }
}

/// Which learning algorithm fine-tunes the CPTs (the two named in the
/// paper, §III-A.2).
#[derive(Debug, Clone, PartialEq)]
pub enum LearnAlgorithm {
    /// Expectation–maximisation (the default).
    Em(EmConfig),
    /// Conjugate-gradient ascent on the MAP objective.
    ConjugateGradient(CgConfig),
}

impl Default for LearnAlgorithm {
    fn default() -> Self {
        LearnAlgorithm::Em(EmConfig::default())
    }
}

/// Summary of a fine-tuning run.
#[derive(Debug, Clone, PartialEq)]
pub struct LearnSummary {
    /// Iterations executed.
    pub iterations: usize,
    /// Whether the optimiser converged within its budget.
    pub converged: bool,
    /// Objective trace (log-likelihood for EM, MAP objective for CG).
    pub objective_trace: Vec<f64>,
    /// Cases used.
    pub case_count: usize,
    /// Cases skipped as impossible under the model.
    pub skipped_cases: usize,
}

/// A ready-to-diagnose model: the fitted Bayesian network plus the circuit
/// model it was built from.
#[derive(Debug, Clone, PartialEq)]
pub struct DiagnosticModel {
    model: CircuitModel,
    network: Network,
    summary: Option<LearnSummary>,
}

impl DiagnosticModel {
    /// Pairs a circuit model with an already-fitted network, bypassing
    /// the builder — the hierarchy layer uses this to wrap extracted
    /// sub-model networks whose CPTs were *derived* from a fitted parent
    /// rather than learned. The caller guarantees the spec/network
    /// correspondence (same variables, same parent sets).
    pub(crate) fn from_parts(model: CircuitModel, network: Network) -> Self {
        DiagnosticModel {
            model,
            network,
            summary: None,
        }
    }

    /// The fitted network.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The structural circuit model.
    pub fn circuit_model(&self) -> &CircuitModel {
        &self.model
    }

    /// The learning summary (absent for an expert-only model).
    pub fn summary(&self) -> Option<&LearnSummary> {
        self.summary.as_ref()
    }

    /// The network handle of a model variable.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownVariable`].
    pub fn var(&self, name: &str) -> Result<VarId> {
        self.network
            .var(name)
            .ok_or_else(|| Error::UnknownVariable(name.into()))
    }
}

/// Builds diagnostic models from a [`CircuitModel`], optional expert
/// knowledge, and learning cases.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), abbd_core::Error> {
/// use abbd_core::{CircuitModel, ModelBuilder};
/// use abbd_dlog2bbn::{FunctionalType, ModelSpec, StateBand, VariableSpec};
///
/// let spec = ModelSpec::new([
///     VariableSpec {
///         name: "bias".into(),
///         ftype: FunctionalType::Latent,
///         bands: vec![
///             StateBand::new("0", 0.0, 1.0, "non-operational"),
///             StateBand::new("1", 1.0, 1.4, "operational"),
///         ],
///         ckt_ref: None,
///     },
///     VariableSpec {
///         name: "out".into(),
///         ftype: FunctionalType::Observe,
///         bands: vec![
///             StateBand::new("0", 0.0, 4.5, "fail"),
///             StateBand::new("1", 4.5, 5.5, "pass"),
///         ],
///         ckt_ref: None,
///     },
/// ])?;
/// let mut model = CircuitModel::new(spec);
/// model.depends("bias", "out")?;
/// let diagnostic = ModelBuilder::new(model).build_expert_only()?;
/// assert_eq!(diagnostic.network().var_count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ModelBuilder {
    model: CircuitModel,
    expert: Option<ExpertKnowledge>,
}

impl ModelBuilder {
    /// Starts from a structural circuit model.
    pub fn new(model: CircuitModel) -> Self {
        ModelBuilder {
            model,
            expert: None,
        }
    }

    /// Attaches the product expert's estimates.
    pub fn with_expert(mut self, expert: ExpertKnowledge) -> Self {
        self.expert = Some(expert);
        self
    }

    /// Builds the bare network: structure from the circuit model, CPTs from
    /// the expert estimate where given, uniform otherwise.
    ///
    /// # Errors
    ///
    /// Returns structure errors (cycles, shapes) and
    /// [`Error::ExpertShape`] for mis-sized expert tables.
    pub fn build_network(&self) -> Result<Network> {
        let mut b = NetworkBuilder::new();
        let mut ids: BTreeMap<&str, VarId> = BTreeMap::new();
        for v in self.model.spec().variables() {
            let labels: Vec<String> = v.bands.iter().map(|band| band.label.clone()).collect();
            let id = b.variable(v.name.clone(), labels).map_err(Error::Bbn)?;
            ids.insert(v.name.as_str(), id);
        }
        for v in self.model.spec().variables() {
            let parents: Vec<VarId> = self
                .model
                .parents_of(&v.name)
                .iter()
                .map(|p| ids[p])
                .collect();
            let configs: usize = self
                .model
                .parents_of(&v.name)
                .iter()
                .map(|p| self.model.spec().require(p).map(|pv| pv.card()))
                .collect::<abbd_dlog2bbn::Result<Vec<_>>>()?
                .into_iter()
                .product();
            let card = v.card();
            let expected = configs * card;
            let table = match self.expert.as_ref().and_then(|e| e.table(&v.name)) {
                Some(t) => {
                    if t.len() != expected {
                        return Err(Error::ExpertShape {
                            variable: v.name.clone(),
                            expected,
                            actual: t.len(),
                        });
                    }
                    t.to_vec()
                }
                None => vec![1.0 / card as f64; expected],
            };
            b.cpt_flat(ids[v.name.as_str()], parents, table)
                .map_err(Error::Bbn)?;
        }
        b.build().map_err(Error::Bbn)
    }

    /// Builds a diagnostic model without any data fine-tuning (expert or
    /// uniform CPTs only) — the ablation baseline.
    ///
    /// # Errors
    ///
    /// See [`ModelBuilder::build_network`].
    pub fn build_expert_only(&self) -> Result<DiagnosticModel> {
        Ok(DiagnosticModel {
            model: self.model.clone(),
            network: self.build_network()?,
            summary: None,
        })
    }

    /// Builds the network and fine-tunes its CPTs on cases with the chosen
    /// algorithm. The expert estimate acts both as the starting point and
    /// as a Dirichlet prior with its equivalent sample size.
    ///
    /// # Errors
    ///
    /// Propagates structure and learning errors, plus
    /// [`Error::InvalidObservation`] for cases naming unknown variables.
    pub fn learn(&self, cases: &[NamedCase], algorithm: LearnAlgorithm) -> Result<DiagnosticModel> {
        let network = self.build_network()?;
        let bbn_cases = convert_cases(&network, self.model.spec(), cases)?;
        let ess = self
            .expert
            .as_ref()
            .map(|e| e.equivalent_sample_size())
            .unwrap_or(1.0);
        let prior = DirichletPrior::from_network(&network, ess);
        let (fitted, summary) = match algorithm {
            LearnAlgorithm::Em(config) => {
                let out = fit_em(&network, &bbn_cases, &prior, &config).map_err(Error::Bbn)?;
                let summary = LearnSummary {
                    iterations: out.iterations,
                    converged: out.converged,
                    objective_trace: out.log_likelihood_trace,
                    case_count: bbn_cases.len(),
                    skipped_cases: out.skipped_cases,
                };
                (out.network, summary)
            }
            LearnAlgorithm::ConjugateGradient(config) => {
                let out = fit_conjugate_gradient(&network, &bbn_cases, &prior, &config)
                    .map_err(Error::Bbn)?;
                let summary = LearnSummary {
                    iterations: out.iterations,
                    converged: out.converged,
                    objective_trace: out.objective_trace,
                    case_count: bbn_cases.len(),
                    skipped_cases: 0,
                };
                (out.network, summary)
            }
        };
        Ok(DiagnosticModel {
            model: self.model.clone(),
            network: fitted,
            summary: Some(summary),
        })
    }

    /// The structural circuit model this builder wraps.
    pub fn circuit_model(&self) -> &CircuitModel {
        &self.model
    }
}

/// Converts name-keyed cases into network-keyed learning cases.
fn convert_cases(
    network: &Network,
    spec: &abbd_dlog2bbn::ModelSpec,
    cases: &[NamedCase],
) -> Result<Vec<Case>> {
    let mut out = Vec::with_capacity(cases.len());
    for case in cases {
        let mut pairs: Vec<(VarId, usize)> = Vec::with_capacity(case.assignment.len());
        for (name, state) in &case.assignment {
            let var = network
                .var(name)
                .ok_or_else(|| Error::UnknownVariable(name.clone()))?;
            let card = spec.require(name)?.card();
            if *state >= card {
                return Err(Error::InvalidObservation {
                    variable: name.clone(),
                    reason: format!("state {state} out of range {card}"),
                });
            }
            pairs.push((var, *state));
        }
        out.push(Case::from_pairs(pairs));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use abbd_dlog2bbn::{FunctionalType, ModelSpec, StateBand, VariableSpec};

    fn two_state(name: &str, ftype: FunctionalType) -> VariableSpec {
        VariableSpec {
            name: name.into(),
            ftype,
            bands: vec![
                StateBand::new("0", 0.0, 1.0, "bad"),
                StateBand::new("1", 1.0, 2.0, "good"),
            ],
            ckt_ref: None,
        }
    }

    fn model() -> CircuitModel {
        let spec = ModelSpec::new([
            two_state("pin", FunctionalType::Control),
            two_state("bias", FunctionalType::Latent),
            two_state("out", FunctionalType::Observe),
        ])
        .unwrap();
        let mut m = CircuitModel::new(spec);
        m.depends("pin", "bias").unwrap();
        m.depends("bias", "out").unwrap();
        m
    }

    fn expert() -> ExpertKnowledge {
        let mut e = ExpertKnowledge::new(10.0);
        e.cpt("pin", [[0.5, 0.5]]);
        e.cpt("bias", [[0.9, 0.1], [0.1, 0.9]]);
        e.cpt("out", [[0.95, 0.05], [0.2, 0.8]]);
        e
    }

    #[test]
    fn uniform_network_without_expert() {
        let dm = ModelBuilder::new(model()).build_expert_only().unwrap();
        let net = dm.network();
        assert_eq!(net.var_count(), 3);
        let bias = net.var("bias").unwrap();
        assert_eq!(net.cpt(bias), &[0.5, 0.5, 0.5, 0.5]);
        assert!(dm.summary().is_none());
        assert!(dm.var("bias").is_ok());
        assert!(dm.var("ghost").is_err());
    }

    #[test]
    fn expert_cpts_are_installed() {
        let dm = ModelBuilder::new(model())
            .with_expert(expert())
            .build_expert_only()
            .unwrap();
        let net = dm.network();
        let out = net.var("out").unwrap();
        assert_eq!(net.cpt(out), &[0.95, 0.05, 0.2, 0.8]);
        // Parent order comes from the dependency declarations.
        let bias = net.var("bias").unwrap();
        assert_eq!(net.parents(bias).len(), 1);
    }

    #[test]
    fn expert_shape_mismatch_is_reported() {
        let mut e = ExpertKnowledge::new(5.0);
        e.cpt("bias", [[0.9, 0.1]]); // needs 2 rows (pin has 2 states)
        let err = ModelBuilder::new(model())
            .with_expert(e)
            .build_expert_only();
        assert!(matches!(err, Err(Error::ExpertShape { .. })));
    }

    #[test]
    fn learning_from_cases_moves_cpts() {
        let mut cases = Vec::new();
        // pin=1 always; out almost always bad => bias likely bad given pin=1.
        for i in 0..40 {
            cases.push(NamedCase {
                device_id: i,
                suite: "s".into(),
                assignment: vec![("pin".into(), 1), ("out".into(), usize::from(i % 10 == 0))],
                failing: vec![],
                truth: vec![],
            });
        }
        let dm = ModelBuilder::new(model())
            .with_expert(expert())
            .learn(&cases, LearnAlgorithm::default())
            .unwrap();
        let summary = dm.summary().unwrap();
        assert_eq!(summary.case_count, 40);
        assert!(summary.iterations >= 1);
        assert!(!summary.objective_trace.is_empty());
        // The fitted model must put less mass on out=good than the expert
        // prior did, since out fails in 90% of cases.
        let net = dm.network();
        let out = net.var("out").unwrap();
        let p_good_given_biasgood = net.cpt_row(out, &[1]).unwrap()[1];
        assert!(
            p_good_given_biasgood < 0.8,
            "fine-tuning must pull the CPT towards the data, got {p_good_given_biasgood}"
        );
    }

    #[test]
    fn conjugate_gradient_also_learns() {
        let cases: Vec<NamedCase> = (0..20)
            .map(|i| NamedCase {
                device_id: i,
                suite: "s".into(),
                assignment: vec![("pin".into(), 1), ("out".into(), 0)],
                failing: vec![],
                truth: vec![],
            })
            .collect();
        let dm = ModelBuilder::new(model())
            .with_expert(expert())
            .learn(
                &cases,
                LearnAlgorithm::ConjugateGradient(CgConfig {
                    max_iterations: 10,
                    ..CgConfig::default()
                }),
            )
            .unwrap();
        assert!(dm.summary().unwrap().iterations >= 1);
    }

    #[test]
    fn bad_cases_are_rejected() {
        let ghost = vec![NamedCase {
            device_id: 0,
            suite: "s".into(),
            assignment: vec![("ghost".into(), 0)],
            failing: vec![],
            truth: vec![],
        }];
        assert!(matches!(
            ModelBuilder::new(model()).learn(&ghost, LearnAlgorithm::default()),
            Err(Error::UnknownVariable(_))
        ));
        let out_of_range = vec![NamedCase {
            device_id: 0,
            suite: "s".into(),
            assignment: vec![("pin".into(), 5)],
            failing: vec![],
            truth: vec![],
        }];
        assert!(matches!(
            ModelBuilder::new(model()).learn(&out_of_range, LearnAlgorithm::default()),
            Err(Error::InvalidObservation { .. })
        ));
    }

    #[test]
    fn cyclic_model_fails_at_network_build() {
        let spec = ModelSpec::new([
            two_state("a", FunctionalType::Latent),
            two_state("b", FunctionalType::Latent),
        ])
        .unwrap();
        let mut m = CircuitModel::new(spec);
        m.depends("a", "b").unwrap();
        m.depends("b", "a").unwrap();
        assert!(matches!(
            ModelBuilder::new(m).build_expert_only(),
            Err(Error::Bbn(abbd_bbn::Error::CycleDetected(_)))
        ));
    }
}
