//! Error type for the diagnosis core.

use std::fmt;

/// Result alias used throughout [`crate`].
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced while building diagnostic models or running diagnoses.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// The underlying Bayesian-network engine failed.
    Bbn(abbd_bbn::Error),
    /// The case generator / model spec layer failed.
    Spec(abbd_dlog2bbn::Error),
    /// A dependency edge references an unknown model variable.
    UnknownVariable(String),
    /// The same dependency edge was declared twice.
    DuplicateEdge {
        /// Parent variable name.
        parent: String,
        /// Child variable name.
        child: String,
    },
    /// An expert CPT's shape does not match the variable.
    ExpertShape {
        /// The offending variable.
        variable: String,
        /// Expected cell count.
        expected: usize,
        /// Provided cell count.
        actual: usize,
    },
    /// A fault-state index is outside the variable's state range.
    FaultStateOutOfRange {
        /// The offending variable.
        variable: String,
        /// The out-of-range state.
        state: usize,
    },
    /// An observation refers to an unknown variable or state.
    InvalidObservation {
        /// The offending variable.
        variable: String,
        /// Human-readable explanation.
        reason: String,
    },
    /// The deduction policy thresholds are inconsistent.
    InvalidPolicy(String),
    /// The sequential stopping policy is malformed.
    InvalidStoppingPolicy(String),
    /// A measurement cost model is malformed (non-positive or non-finite
    /// costs cannot be used as score divisors).
    InvalidCostModel(String),
    /// A candidate-selection strategy is malformed (e.g. a zero or
    /// excessive lookahead depth).
    InvalidStrategy(String),
    /// A candidate action is malformed: unknown target, a test on a
    /// latent block, a probe on a non-latent, a duplicate, or a target
    /// the observation already pins.
    InvalidAction {
        /// The offending action, rendered (`test x` / `probe y`).
        action: String,
        /// Human-readable explanation.
        reason: String,
    },
    /// A delta round re-observed a variable with a state contradicting
    /// the evidence the session already stored. Delta rounds assert
    /// consistency with history (unlike full rounds, which overwrite),
    /// so the contradiction is refused rather than silently absorbed.
    InconsistentDelta {
        /// The re-observed variable.
        variable: String,
        /// The state the session already stored.
        stored: usize,
        /// The conflicting state the delta carried.
        requested: usize,
    },
    /// A closed-loop measurement oracle failed to execute the chosen test.
    Oracle {
        /// The variable whose measurement was requested.
        variable: String,
        /// Human-readable explanation.
        reason: String,
    },
    /// A hierarchy definition is malformed: blocks that overlap or leave
    /// variables uncovered, an invalid interface, a bad descend
    /// threshold, or a block whose boundary breaks the extraction
    /// contract.
    Hierarchy(String),
    /// A model-lifecycle operation failed: an unknown version was
    /// requested, or a fleet-learning invariant was violated.
    Fleet(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Bbn(e) => write!(f, "bayesian network error: {e}"),
            Error::Spec(e) => write!(f, "model spec error: {e}"),
            Error::UnknownVariable(name) => write!(f, "unknown model variable `{name}`"),
            Error::DuplicateEdge { parent, child } => {
                write!(f, "dependency `{parent}` -> `{child}` declared twice")
            }
            Error::ExpertShape {
                variable,
                expected,
                actual,
            } => write!(
                f,
                "expert CPT for `{variable}` has {actual} cells, expected {expected}"
            ),
            Error::FaultStateOutOfRange { variable, state } => {
                write!(f, "fault state {state} out of range for `{variable}`")
            }
            Error::InvalidObservation { variable, reason } => {
                write!(f, "invalid observation on `{variable}`: {reason}")
            }
            Error::InvalidPolicy(reason) => write!(f, "invalid deduction policy: {reason}"),
            Error::InvalidStoppingPolicy(reason) => {
                write!(f, "invalid stopping policy: {reason}")
            }
            Error::InvalidCostModel(reason) => write!(f, "invalid cost model: {reason}"),
            Error::InvalidStrategy(reason) => write!(f, "invalid strategy: {reason}"),
            Error::InvalidAction { action, reason } => {
                write!(f, "invalid action `{action}`: {reason}")
            }
            Error::InconsistentDelta {
                variable,
                stored,
                requested,
            } => write!(
                f,
                "delta round re-observes `{variable}` as state {requested}, \
                 but the session stores state {stored}"
            ),
            Error::Oracle { variable, reason } => {
                write!(f, "measurement of `{variable}` failed: {reason}")
            }
            Error::Hierarchy(reason) => write!(f, "invalid hierarchy: {reason}"),
            Error::Fleet(reason) => write!(f, "model lifecycle error: {reason}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Bbn(e) => Some(e),
            Error::Spec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<abbd_bbn::Error> for Error {
    fn from(e: abbd_bbn::Error) -> Self {
        Error::Bbn(e)
    }
}

impl From<abbd_dlog2bbn::Error> for Error {
    fn from(e: abbd_dlog2bbn::Error) -> Self {
        Error::Spec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_nonempty() {
        let samples = [
            Error::Bbn(abbd_bbn::Error::NoCases),
            Error::Spec(abbd_dlog2bbn::Error::UnknownVariable("v".into())),
            Error::UnknownVariable("v".into()),
            Error::DuplicateEdge {
                parent: "a".into(),
                child: "b".into(),
            },
            Error::ExpertShape {
                variable: "v".into(),
                expected: 4,
                actual: 2,
            },
            Error::FaultStateOutOfRange {
                variable: "v".into(),
                state: 9,
            },
            Error::InvalidObservation {
                variable: "v".into(),
                reason: "r".into(),
            },
            Error::InvalidPolicy("p".into()),
            Error::InvalidStoppingPolicy("s".into()),
            Error::InvalidCostModel("c".into()),
            Error::InvalidStrategy("l".into()),
            Error::InvalidAction {
                action: "probe v".into(),
                reason: "r".into(),
            },
            Error::Oracle {
                variable: "v".into(),
                reason: "r".into(),
            },
            Error::Hierarchy("h".into()),
            Error::Fleet("unknown version 7".into()),
        ];
        for e in samples {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn sources_chain() {
        use std::error::Error as _;
        assert!(Error::Bbn(abbd_bbn::Error::NoCases).source().is_some());
        assert!(Error::UnknownVariable("v".into()).source().is_none());
    }
}
