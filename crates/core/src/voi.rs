//! The value-of-information kernel shared by probe ranking
//! ([`DiagnosticEngine::rank_probes`]) and sequential adaptive diagnosis
//! ([`crate::SequentialDiagnoser`]).
//!
//! # The quantity
//!
//! Diagnostic uncertainty is scored as the summed posterior entropy of the
//! latent blocks, `U(e) = Σ_v H(v | e)` (Zheng & Rish's entropy
//! approximation: marginal entropies instead of the joint, which keeps the
//! score computable from single-variable posteriors). Measuring a
//! candidate variable `m` is worth its **expected entropy reduction**
//!
//! ```text
//! gain(m) = U(e) − Σ_s P(m = s | e) · U(e, m = s)
//! ```
//!
//! where the hypothetical terms re-propagate the junction tree with one
//! extra finding. When `m` is itself one of the scored latents (a physical
//! probe), its own entropy is excluded from both sides — observing a block
//! trivially zeroes its own entropy, and counting that would make every
//! uncertain block look informative regardless of what it reveals about
//! the *others*.
//!
//! # The cost model
//!
//! Raw gain is only half of a test-selection decision: measurements have
//! wildly different prices. [`crate::CostModel`] turns the gain into
//! *gain per tester-second* — a default per-test cost with per-variable
//! overrides, a per-probe FIB/SEM cost for latent candidates, and a
//! suite-switch penalty charged whenever the candidate's stimulus suite
//! differs from the currently applied one (the quantity
//! `DeviceSession::stimulus_switches` counts on the bench).
//! [`crate::SequentialDiagnoser`] applies it under
//! [`crate::Strategy::CostWeighted`], and
//! [`crate::Strategy::Lookahead`] feeds the same normalisation with the
//! bounded-depth expectimax value of [`crate::LookaheadPlanner`] instead
//! of the one-step gain.
//!
//! Because the cost lands in the *denominator*, gains are clamped at
//! zero **before** any cost normalisation: the marginal-entropy
//! approximation can go fractionally negative through rounding
//! (≈ −1e-16 on a useless candidate), and a negative numerator would
//! flip sign when divided by a cost — making the most *expensive*
//! useless candidate outrank genuinely neutral ones. The clamp lives in
//! [`expected_gain`] (and its lookahead counterpart in
//! [`crate::planner`]) so no caller can forget it.
//!
//! # Steady-state mechanics
//!
//! One gain evaluation issues up to `card(m)` hypothetical propagations;
//! ranking dozens of candidates per decision multiplies that out to the
//! workload PR 1's compiled-schedule machinery was built for. The kernel
//! therefore never compiles a tree and never allocates per query: the
//! caller supplies a reusable [`PropagationWorkspace`], hypotheses ride
//! through [`JunctionTree::propagate_hypothetical_in`] (no evidence
//! mutation), and entropies come from the restricted
//! [`abbd_bbn::CalibratedView::posterior_entropy`] helper.

use crate::engine::{DiagnosticEngine, Observation};
use crate::error::{Error, Result};
use crate::session::CompiledModel;
use abbd_bbn::{Evidence, JunctionTree, PropagationWorkspace, VarId};

/// Probability floor below which a hypothetical state is skipped: states
/// the current posterior rules out contribute nothing to the expectation
/// and may be impossible under the model (propagation would error).
pub(crate) const PROB_FLOOR: f64 = 1e-12;

/// Reusable scoring buffers: one propagation workspace for hypothetical
/// queries plus a distribution buffer sized for the widest variable.
/// Create once per decision loop (or thread); every scoring pass through
/// it is allocation-free.
#[derive(Debug, Clone)]
pub(crate) struct VoiScratch {
    /// Workspace for hypothetical propagations.
    pub(crate) ws: PropagationWorkspace,
    /// Scratch distribution, sized for the widest model variable.
    pub(crate) dist: Vec<f64>,
}

impl VoiScratch {
    pub(crate) fn new(compiled: &CompiledModel) -> Self {
        let net = compiled.model().network();
        let max_card = net.variables().map(|v| net.card(v)).max().unwrap_or(1);
        VoiScratch {
            ws: compiled.make_workspace(),
            dist: vec![0.0; max_card],
        }
    }
}

/// Expected reduction of `Σ_{v ∈ score_vars, v ≠ hypothesis} H(v | e)`
/// when `hypothesis` is measured.
///
/// `hyp_dist` is the current posterior `P(hypothesis | e)` (read from a
/// base propagation the caller already performed) and `baseline_entropy`
/// the current restricted entropy sum, with `hypothesis` itself already
/// excluded. Clamped at zero: the marginal-entropy approximation can go
/// fractionally negative through rounding, and a measurement is never
/// *worse* than not measuring.
pub(crate) fn expected_gain(
    jt: &JunctionTree,
    hyp_ws: &mut PropagationWorkspace,
    evidence: &Evidence,
    hypothesis: VarId,
    hyp_dist: &[f64],
    score_vars: &[VarId],
    baseline_entropy: f64,
) -> Result<f64> {
    let mut expected_after = 0.0;
    for (state, &p_state) in hyp_dist.iter().enumerate() {
        if p_state <= PROB_FLOOR {
            continue;
        }
        let view = jt
            .propagate_hypothetical_in(hyp_ws, evidence, hypothesis, state)
            .map_err(Error::Bbn)?;
        let mut h = 0.0;
        for &v in score_vars {
            if v != hypothesis {
                h += view.posterior_entropy(v).map_err(Error::Bbn)?;
            }
        }
        expected_after += p_state * h;
    }
    Ok((baseline_entropy - expected_after).max(0.0))
}

impl DiagnosticEngine {
    /// The expected information gain (nats) of measuring `variable` under
    /// `observation`: how much the summed posterior entropy of the latent
    /// blocks would shrink, in expectation over the variable's current
    /// posterior. This is the one-shot public face of the VOI kernel that
    /// [`DiagnosticEngine::rank_probes`] and
    /// [`crate::SequentialDiagnoser`] share; use those for ranking whole
    /// candidate sets.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidObservation`] for unknown variables or a
    /// `variable` the observation already pins, and propagates propagation
    /// errors.
    pub fn expected_information_gain(
        &self,
        observation: &Observation,
        variable: &str,
    ) -> Result<f64> {
        let evidence = self.evidence_from(observation)?;
        let var = self
            .model()
            .var(variable)
            .map_err(|_| Error::InvalidObservation {
                variable: variable.into(),
                reason: "not a model variable".into(),
            })?;
        if observation.state_of(variable).is_some() {
            return Err(Error::InvalidObservation {
                variable: variable.into(),
                reason: "already observed; measuring it again carries no information".into(),
            });
        }
        let latents: Vec<VarId> = self
            .model()
            .circuit_model()
            .latents()
            .iter()
            .map(|name| self.model().var(name))
            .collect::<Result<_>>()?;
        let mut scratch = VoiScratch::new(self.compiled());
        let mut base_ws = self.make_workspace();
        let view = self
            .jt()
            .propagate_in(&mut base_ws, &evidence)
            .map_err(Error::Bbn)?;
        let mut baseline = 0.0;
        for &v in &latents {
            if v != var {
                baseline += view.posterior_entropy(v).map_err(Error::Bbn)?;
            }
        }
        let card = self.model().network().card(var);
        view.posterior_into(var, &mut scratch.dist[..card])
            .map_err(Error::Bbn)?;
        expected_gain(
            self.jt(),
            &mut scratch.ws,
            &evidence,
            var,
            &scratch.dist[..card],
            &latents,
            baseline,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{ExpertKnowledge, ModelBuilder};
    use crate::model::CircuitModel;
    use abbd_dlog2bbn::{FunctionalType, ModelSpec, StateBand, VariableSpec};

    fn engine() -> DiagnosticEngine {
        let var = |name: &str, ftype| VariableSpec {
            name: name.into(),
            ftype,
            bands: vec![
                StateBand::new("0", 0.0, 1.0, "bad"),
                StateBand::new("1", 1.0, 2.0, "good"),
            ],
            ckt_ref: None,
        };
        let spec = ModelSpec::new([
            var("h", FunctionalType::Latent),
            var("tight", FunctionalType::Observe),
            var("loose", FunctionalType::Observe),
        ])
        .unwrap();
        let mut m = CircuitModel::new(spec);
        m.depends("h", "tight").unwrap();
        m.depends("h", "loose").unwrap();
        let mut e = ExpertKnowledge::new(10.0);
        e.cpt("h", [[0.3, 0.7]]);
        // `tight` mirrors the latent almost perfectly; `loose` barely.
        e.cpt("tight", [[0.99, 0.01], [0.01, 0.99]]);
        e.cpt("loose", [[0.55, 0.45], [0.45, 0.55]]);
        let dm = ModelBuilder::new(m)
            .with_expert(e)
            .build_expert_only()
            .unwrap();
        DiagnosticEngine::new(dm).unwrap()
    }

    #[test]
    fn informative_observables_score_higher() {
        let eng = engine();
        let obs = Observation::new();
        let tight = eng.expected_information_gain(&obs, "tight").unwrap();
        let loose = eng.expected_information_gain(&obs, "loose").unwrap();
        assert!(
            tight > loose * 5.0,
            "tight={tight} must dominate loose={loose}"
        );
        assert!(loose >= 0.0);
    }

    #[test]
    fn probing_the_latent_itself_scores_zero_with_no_other_latents() {
        let eng = engine();
        // `h` is the only latent; with it excluded from its own scoring
        // there is nothing left to gain information about.
        let gain = eng
            .expected_information_gain(&Observation::new(), "h")
            .unwrap();
        assert_eq!(gain, 0.0);
    }

    /// The clamp-before-cost-normalising regression: when rounding noise
    /// pushes the expected gain a hair negative, the kernel must return
    /// exactly zero, so dividing by any cost keeps a useless candidate at
    /// score 0 instead of flipping it negative (where an *expensive*
    /// useless candidate would paradoxically outrank a cheap one).
    #[test]
    fn fractionally_negative_gains_clamp_to_zero_before_cost_normalising() {
        let eng = engine();
        let evidence = eng.evidence_from(&Observation::new()).unwrap();
        // Probing the only latent itself: its entropy is excluded from
        // both sides, so the true gain is exactly zero and the expected
        // post-measurement entropy is 0. A baseline perturbed 1e-16 low
        // (the rounding noise this guards against) makes the raw
        // difference negative.
        let var = eng.model().var("h").unwrap();
        let latents = vec![var];
        let mut scratch = VoiScratch::new(eng.compiled());
        let mut base_ws = eng.make_workspace();
        let view = eng.jt().propagate_in(&mut base_ws, &evidence).unwrap();
        view.posterior_into(var, &mut scratch.dist[..2]).unwrap();
        let dist = scratch.dist[..2].to_vec();
        let noisy_baseline = -1e-16;
        let gain = expected_gain(
            eng.jt(),
            &mut scratch.ws,
            &evidence,
            var,
            &dist,
            &latents,
            noisy_baseline,
        )
        .unwrap();
        // The clamp must land exactly on zero — which stays zero (not
        // negative) under any cost division. Without it the raw −1e-16
        // would divide into a negative score that *grows* with cost.
        assert_eq!(gain, 0.0);
        assert_eq!(gain / 3.5, 0.0);
        assert!(noisy_baseline / 3.5 < 0.0, "unclamped noise flips sign");
    }

    #[test]
    fn rejects_unknown_and_observed_targets() {
        let eng = engine();
        let mut obs = Observation::new();
        obs.set("tight", 1);
        assert!(matches!(
            eng.expected_information_gain(&obs, "tight"),
            Err(Error::InvalidObservation { .. })
        ));
        assert!(matches!(
            eng.expected_information_gain(&obs, "ghost"),
            Err(Error::InvalidObservation { .. })
        ));
    }
}
