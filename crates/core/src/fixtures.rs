//! Shared test fixtures (hidden from the public API surface).
//!
//! The sequential-diagnosis unit tests and the workspace-level
//! zero-allocation harness (`tests/zero_alloc.rs` at the repo root) must
//! exercise the *same* model — two drifting copies of the fixture would
//! let their "which output is most informative" assertions silently
//! disagree — so the model lives here once.

use crate::builder::{ExpertKnowledge, ModelBuilder};
use crate::engine::DiagnosticEngine;
use crate::model::CircuitModel;
use crate::session::CompiledModel;
use abbd_dlog2bbn::{FunctionalType, ModelSpec, StateBand, VariableSpec};
use std::sync::Arc;

/// `pin` (control) → `bias` (latent) → `{out1, out2}`; `load` (latent) →
/// `out2`; `aux` (latent) → `out3`. `out1` mirrors `bias` almost
/// perfectly, `out2` is mushy, `out3` only reflects `aux` — three
/// latents, three candidate measurements, one clearly-best first test,
/// over a multi-clique junction tree.
pub fn toy_sequential_engine() -> DiagnosticEngine {
    let var = |name: &str, ftype| VariableSpec {
        name: name.into(),
        ftype,
        bands: vec![
            StateBand::new("0", 0.0, 1.0, "bad"),
            StateBand::new("1", 1.0, 2.0, "good"),
        ],
        ckt_ref: None,
    };
    let spec = ModelSpec::new([
        var("pin", FunctionalType::Control),
        var("bias", FunctionalType::Latent),
        var("load", FunctionalType::Latent),
        var("aux", FunctionalType::Latent),
        var("out1", FunctionalType::Observe),
        var("out2", FunctionalType::Observe),
        var("out3", FunctionalType::Observe),
    ])
    .expect("static fixture spec");
    let mut m = CircuitModel::new(spec);
    m.depends("pin", "bias").expect("static edges");
    m.depends("bias", "out1").expect("static edges");
    m.depends("bias", "out2").expect("static edges");
    m.depends("load", "out2").expect("static edges");
    m.depends("aux", "out3").expect("static edges");

    let mut e = ExpertKnowledge::new(10.0);
    e.cpt("pin", [[0.5, 0.5]]);
    e.cpt("bias", [[0.9, 0.1], [0.2, 0.8]]);
    e.cpt("load", [[0.15, 0.85]]);
    e.cpt("aux", [[0.2, 0.8]]);
    e.cpt("out1", [[0.99, 0.01], [0.01, 0.99]]);
    e.cpt(
        "out2",
        [[0.95, 0.05], [0.85, 0.15], [0.8, 0.2], [0.05, 0.95]],
    );
    e.cpt("out3", [[0.9, 0.1], [0.1, 0.9]]);
    let dm = ModelBuilder::new(m)
        .with_expert(e)
        .build_expert_only()
        .expect("static fixture CPTs");
    DiagnosticEngine::new(dm).expect("fixture compiles")
}

/// The same model as [`toy_sequential_engine`], compiled into the
/// shareable session artifact (the session unit tests, doc examples and
/// the concurrency harness all serve off this).
pub fn toy_compiled_model() -> Arc<CompiledModel> {
    Arc::clone(toy_sequential_engine().compiled())
}
