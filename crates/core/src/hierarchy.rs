//! Hierarchical block-level diagnosis: a compiled abstraction tree over
//! one fitted board model, driven through the existing
//! [`DiagnosisSession`] / [`Action`] vocabulary.
//!
//! The paper diagnoses at *block* granularity; Srinivas's hierarchical
//! model-based diagnosis and Siddiqi & Huang's sequential diagnosis by
//! abstraction push that further: isolate a suspect region on a cheap
//! board-level abstraction first, then descend into a per-block compiled
//! sub-model and finish the diagnosis there — paying compile and
//! propagation cost only for the subtree under suspicion. On a board an
//! order of magnitude bigger than one block, a steady-state decision in
//! the descended session propagates a network of a dozen variables
//! instead of hundreds.
//!
//! ## The tree
//!
//! [`HierarchicalModel`] holds one **abstract root** (compiled eagerly at
//! build time) and one **child sub-model per block** (compiled lazily, at
//! most once, on first descent — the compile counter in
//! [`HierarchicalModel::submodel_compiles`] pins exactly that):
//!
//! * The root's variables are the shared **interface** nodes (supply and
//!   load rails every block hangs off), one binary pseudo-latent per
//!   block (state 0 = *some latent in the block is faulty*), and each
//!   block's designated **summary observables**. Its CPTs are derived
//!   from the fitted flat network by variable elimination, so the root's
//!   marginal over `interface ∪ {summary observable}` matches the flat
//!   model's exactly; only cross-observable correlations are compressed
//!   through the binary block variable (the documented abstraction).
//! * A child is [`abbd_bbn::extract_submodel`] applied to the block: the
//!   block's variables keep their fitted CPTs verbatim, and the interface
//!   carries a chain factorisation of the flat marginal `P(interface)`.
//!
//! ## Extraction contract
//!
//! A [`BlockSpec`] partition is valid when blocks are disjoint, every
//! non-interface variable belongs to exactly one block, every parent of a
//! block variable lies in the block or on the interface, and no interface
//! variable descends from a block (interfaces feed blocks, never the
//! reverse). Under the contract, child posteriors given full interface
//! evidence equal the flat model's **exactly** (`tests/hierarchy.rs`
//! pins the match to 1e-9): with the interface observed, the rest of the
//! board is d-separated from the block.
//!
//! ## Descent policy
//!
//! [`HierarchicalSession`] runs the two-phase loop: rank and apply
//! summary tests on the root until some block's posterior fault mass
//! reaches [`HierarchicalModel::descend_threshold`] (or the root isolates
//! a block under its stopping policy), then descend — compile the child
//! if this is the block's first visit, open a child [`DiagnosisSession`],
//! **lift the board evidence down** (every observation naming a child
//! variable, interface and summary measurements included), and continue
//! with block-local tests and probes until isolation. Descent is one-way:
//! a session commits to the suspect block, as the paper's operator
//! commits a board to a repair bench.

use crate::builder::DiagnosticModel;
use crate::engine::{Diagnosis, Observation};
use crate::error::{Error, Result};
use crate::model::CircuitModel;
use crate::session::{
    Action, ActionExecutor, AppliedMeasurement, CompiledModel, DecisionTrace, DiagnosisSession,
    Outcome, Ranked, ScoredAction, SequentialOutcome, SessionReport, SessionRequest, StopReason,
    StoppingPolicy,
};
use abbd_bbn::{extract_submodel, Evidence, NetworkBuilder, VarId, VariableElimination};
use abbd_dlog2bbn::{FunctionalType, ModelSpec, StateBand, VariableSpec};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The default block fault-mass threshold that triggers descent from the
/// abstract root into a block's compiled sub-model.
pub const DEFAULT_DESCEND_THRESHOLD: f64 = 0.5;

/// One block of the board partition: a named set of flat-model variables
/// plus the subset visible at board level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockSpec {
    /// The block's name — also the root model's pseudo-latent for the
    /// block and the `{board}/{block}` child suffix on a server. Must
    /// not collide with any flat variable name and must not contain `/`.
    pub name: String,
    /// Every flat variable inside the block (latents and observables).
    pub members: Vec<String>,
    /// The block's board-level observables (summary tests available
    /// before descent). Must be observable members.
    pub summary: Vec<String>,
}

impl BlockSpec {
    /// A block over `members` whose board-level tests are `summary`.
    pub fn new<N, M, S>(name: N, members: M, summary: S) -> Self
    where
        N: Into<String>,
        M: IntoIterator,
        M::Item: Into<String>,
        S: IntoIterator,
        S::Item: Into<String>,
    {
        BlockSpec {
            name: name.into(),
            members: members.into_iter().map(Into::into).collect(),
            summary: summary.into_iter().map(Into::into).collect(),
        }
    }
}

/// One block's slot in the tree: its spec, its resolved flat ids, and the
/// lazily compiled child.
#[derive(Debug)]
struct BlockEntry {
    spec: BlockSpec,
    /// Member ids in flat declaration order.
    member_ids: Vec<VarId>,
    /// Latent members `(name, flat id, fault states)`, in flat order.
    latents: Vec<(String, VarId, Vec<usize>)>,
    /// The compiled sub-model, absent until the first descent. The lock
    /// is held across the compile, so concurrent descents compile at
    /// most once per block.
    child: Mutex<Option<Arc<CompiledModel>>>,
}

/// A compiled abstraction tree over one fitted board model: the abstract
/// root (eager) plus one extracted sub-model per block (lazy, cached).
/// See the [module docs](self) for the abstraction and its contract.
///
/// The type is `Send + Sync`; share it with
/// [`HierarchicalModel::shared`] and open any number of concurrent
/// [`HierarchicalSession`]s — all sessions reuse the same compiled
/// artifacts, and the lazy child compiles are counted once per block no
/// matter how many sessions descend.
#[derive(Debug)]
pub struct HierarchicalModel {
    flat: DiagnosticModel,
    root: Arc<CompiledModel>,
    interface: Vec<String>,
    interface_ids: Vec<VarId>,
    blocks: Vec<BlockEntry>,
    descend_threshold: f64,
    submodel_compiles: AtomicU64,
}

impl HierarchicalModel {
    /// Builds the tree: validates the partition against the extraction
    /// contract, derives and compiles the abstract root, and prepares
    /// (but does not compile) one child slot per block.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Hierarchy`] for malformed partitions and
    /// propagates inference/compilation errors from the root
    /// derivation.
    pub fn build<I>(flat: DiagnosticModel, interface: I, blocks: Vec<BlockSpec>) -> Result<Self>
    where
        I: IntoIterator,
        I::Item: Into<String>,
    {
        let interface: Vec<String> = interface.into_iter().map(Into::into).collect();
        let entries = validate_partition(&flat, &interface, &blocks)?;
        let interface_ids: Vec<VarId> = interface
            .iter()
            .map(|n| flat.var(n))
            .collect::<Result<_>>()?;
        let root = build_root(&flat, &interface, &interface_ids, &entries)?;
        Ok(HierarchicalModel {
            flat,
            root: root.shared(),
            interface,
            interface_ids,
            blocks: entries,
            descend_threshold: DEFAULT_DESCEND_THRESHOLD,
            submodel_compiles: AtomicU64::new(0),
        })
    }

    /// Replaces the descend threshold (builder style, before sharing).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Hierarchy`] unless `0 < threshold <= 1`.
    pub fn with_descend_threshold(mut self, threshold: f64) -> Result<Self> {
        if !(threshold > 0.0 && threshold <= 1.0) {
            return Err(Error::Hierarchy(format!(
                "descend threshold {threshold} outside (0, 1]"
            )));
        }
        self.descend_threshold = threshold;
        Ok(self)
    }

    /// Wraps the tree for concurrent sharing.
    pub fn shared(self) -> Arc<Self> {
        Arc::new(self)
    }

    /// The fitted flat model the tree was derived from.
    pub fn flat(&self) -> &DiagnosticModel {
        &self.flat
    }

    /// The compiled abstract root (interface + block pseudo-latents +
    /// summary observables).
    pub fn root(&self) -> &Arc<CompiledModel> {
        &self.root
    }

    /// The shared interface variable names, in chain order.
    pub fn interface(&self) -> &[String] {
        &self.interface
    }

    /// The block partition, in declaration order.
    pub fn block_specs(&self) -> impl Iterator<Item = &BlockSpec> + '_ {
        self.blocks.iter().map(|b| &b.spec)
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// The index of the named block.
    pub fn block_index(&self, name: &str) -> Option<usize> {
        self.blocks.iter().position(|b| b.spec.name == name)
    }

    /// The block fault-mass threshold that triggers descent.
    pub fn descend_threshold(&self) -> f64 {
        self.descend_threshold
    }

    /// How many child sub-models have been lazily compiled so far — the
    /// `/v1/stats` gauge, and the pin that block compiles happen at most
    /// once per block.
    pub fn submodel_compiles(&self) -> u64 {
        self.submodel_compiles.load(Ordering::Relaxed)
    }

    /// The block's compiled sub-model, extracting and compiling it on
    /// first use (at most once per block; later calls return the cached
    /// [`Arc`]).
    ///
    /// # Errors
    ///
    /// Propagates extraction and compilation errors.
    pub fn child(&self, block: usize) -> Result<Arc<CompiledModel>> {
        let entry = self
            .blocks
            .get(block)
            .ok_or_else(|| Error::Hierarchy(format!("block index {block} out of range")))?;
        let mut slot = entry.child.lock().expect("child slot lock");
        if let Some(compiled) = slot.as_ref() {
            return Ok(Arc::clone(compiled));
        }
        let compiled = self.compile_child(entry)?.shared();
        self.submodel_compiles.fetch_add(1, Ordering::Relaxed);
        *slot = Some(Arc::clone(&compiled));
        Ok(compiled)
    }

    /// [`HierarchicalModel::child`] by block name.
    ///
    /// # Errors
    ///
    /// [`Error::Hierarchy`] for unknown names, plus whatever
    /// [`HierarchicalModel::child`] returns.
    pub fn child_by_name(&self, name: &str) -> Result<Arc<CompiledModel>> {
        let idx = self
            .block_index(name)
            .ok_or_else(|| Error::Hierarchy(format!("unknown block `{name}`")))?;
        self.child(idx)
    }

    /// Whether the named block's child has already been compiled.
    pub fn child_compiled(&self, block: usize) -> bool {
        self.blocks
            .get(block)
            .is_some_and(|b| b.child.lock().expect("child slot lock").is_some())
    }

    /// Extracts and compiles one block's sub-model (the lock in
    /// [`HierarchicalModel::child`] serialises callers).
    fn compile_child(&self, entry: &BlockEntry) -> Result<CompiledModel> {
        let sub = extract_submodel(self.flat.network(), &entry.member_ids, &self.interface_ids)
            .map_err(Error::Bbn)?;
        let flat_cm = self.flat.circuit_model();
        let spec = flat_cm.spec();
        let mut vars: Vec<VariableSpec> = Vec::with_capacity(sub.flat_ids.len());
        for &flat_id in &sub.flat_ids {
            let name = self.flat.network().name(flat_id);
            vars.push(spec.require(name)?.clone());
        }
        let mut cm = CircuitModel::new(ModelSpec::new(vars)?);
        // Interface chain edges mirror the extracted network's structure.
        for (j, name) in self.interface.iter().enumerate() {
            for prev in &self.interface[..j] {
                cm.depends(prev.as_str(), name.as_str())?;
            }
        }
        // Block edges keep the flat parent order (the extraction copied
        // the CPTs in exactly that order).
        for member in &entry.spec.members {
            for parent in flat_cm.parents_of(member) {
                cm.depends(parent, member.as_str())?;
            }
        }
        for (name, _, states) in &entry.latents {
            cm.set_fault_states(name, states)?;
        }
        CompiledModel::compile(DiagnosticModel::from_parts(cm, sub.network))
    }
}

/// Validates the partition and resolves per-block ids. See the module
/// docs for the contract.
fn validate_partition(
    flat: &DiagnosticModel,
    interface: &[String],
    blocks: &[BlockSpec],
) -> Result<Vec<BlockEntry>> {
    if blocks.is_empty() {
        return Err(Error::Hierarchy(
            "a hierarchy needs at least one block".into(),
        ));
    }
    let cm = flat.circuit_model();
    let spec = cm.spec();
    let mut owner: BTreeMap<&str, &str> = BTreeMap::new();
    for name in interface {
        flat.var(name)?;
        if owner.insert(name.as_str(), "<interface>").is_some() {
            return Err(Error::Hierarchy(format!(
                "interface variable `{name}` listed twice"
            )));
        }
    }
    let mut seen_blocks: BTreeMap<&str, ()> = BTreeMap::new();
    for block in blocks {
        if block.name.is_empty() || block.name.contains('/') {
            return Err(Error::Hierarchy(format!(
                "block name `{}` is empty or contains `/`",
                block.name
            )));
        }
        if spec.find(&block.name).is_some() {
            return Err(Error::Hierarchy(format!(
                "block name `{}` collides with a model variable",
                block.name
            )));
        }
        if seen_blocks.insert(block.name.as_str(), ()).is_some() {
            return Err(Error::Hierarchy(format!(
                "block `{}` declared twice",
                block.name
            )));
        }
        if block.members.is_empty() {
            return Err(Error::Hierarchy(format!("block `{}` is empty", block.name)));
        }
        for member in &block.members {
            flat.var(member)?;
            if let Some(prev) = owner.insert(member.as_str(), block.name.as_str()) {
                return Err(Error::Hierarchy(format!(
                    "variable `{member}` belongs to both `{prev}` and `{}`",
                    block.name
                )));
            }
        }
        let observables = cm.observables();
        for s in &block.summary {
            if !block.members.iter().any(|m| m == s) {
                return Err(Error::Hierarchy(format!(
                    "summary `{s}` is not a member of block `{}`",
                    block.name
                )));
            }
            if !observables.contains(&s.as_str()) {
                return Err(Error::Hierarchy(format!(
                    "summary `{s}` of block `{}` is not an observable",
                    block.name
                )));
            }
        }
        if block.summary.is_empty() {
            return Err(Error::Hierarchy(format!(
                "block `{}` has no summary observable",
                block.name
            )));
        }
    }
    for v in spec.variables() {
        if !owner.contains_key(v.name.as_str()) {
            return Err(Error::Hierarchy(format!(
                "variable `{}` is neither interface nor in any block",
                v.name
            )));
        }
    }
    // Boundary contract: block parents stay inside block ∪ interface.
    // (The bbn extraction re-checks this per child, including the
    // descendant condition; checking here fails fast at build time.)
    for block in blocks {
        for member in &block.members {
            for parent in cm.parents_of(member) {
                let home = owner.get(parent).copied().unwrap_or("");
                if home != block.name && home != "<interface>" {
                    return Err(Error::Hierarchy(format!(
                        "`{member}` of block `{}` has parent `{parent}` outside \
                         the block and its interface",
                        block.name
                    )));
                }
            }
        }
        for name in interface {
            for parent in cm.parents_of(name) {
                if owner.get(parent).copied() != Some("<interface>") {
                    return Err(Error::Hierarchy(format!(
                        "interface variable `{name}` has non-interface parent `{parent}`"
                    )));
                }
            }
        }
    }
    let order: BTreeMap<&str, usize> = spec
        .variables()
        .iter()
        .enumerate()
        .map(|(i, v)| (v.name.as_str(), i))
        .collect();
    let latents = cm.latents();
    blocks
        .iter()
        .map(|block| {
            let mut members = block.members.clone();
            members.sort_by_key(|m| order[m.as_str()]);
            let member_ids = members.iter().map(|m| flat.var(m)).collect::<Result<_>>()?;
            let block_latents = members
                .iter()
                .filter(|m| latents.contains(&m.as_str()))
                .map(|m| Ok((m.clone(), flat.var(m)?, cm.fault_states(m))))
                .collect::<Result<Vec<_>>>()?;
            if block_latents.is_empty() {
                return Err(Error::Hierarchy(format!(
                    "block `{}` has no latent variable",
                    block.name
                )));
            }
            Ok(BlockEntry {
                spec: BlockSpec {
                    name: block.name.clone(),
                    members,
                    summary: block.summary.clone(),
                },
                member_ids,
                latents: block_latents,
                child: Mutex::new(None),
            })
        })
        .collect()
}

/// Row-major config count of `cards`.
fn config_count(cards: &[usize]) -> usize {
    cards.iter().product()
}

/// Classifies every latent-config index (row-major, last latent fastest)
/// of a block as faulty (some latent in a fault state) or healthy.
fn classify_configs(latent_cards: &[usize], fault_states: &[Vec<usize>]) -> Vec<bool> {
    let n = config_count(latent_cards);
    (0..n)
        .map(|mut idx| {
            let mut faulty = false;
            for pos in (0..latent_cards.len()).rev() {
                let state = idx % latent_cards[pos];
                idx /= latent_cards[pos];
                if fault_states[pos].contains(&state) {
                    faulty = true;
                }
            }
            faulty
        })
        .collect()
}

/// Derives and builds the abstract root model. See the module docs.
fn build_root(
    flat: &DiagnosticModel,
    interface: &[String],
    interface_ids: &[VarId],
    blocks: &[BlockEntry],
) -> Result<CompiledModel> {
    let net = flat.network();
    let spec = flat.circuit_model().spec();
    let ve = VariableElimination::new(net);
    let no_evidence = Evidence::new();
    let iface_cards: Vec<usize> = interface_ids.iter().map(|&v| net.card(v)).collect();
    let n_iface_cfg = config_count(&iface_cards);

    // Spec + structure of the root model.
    let mut vars: Vec<VariableSpec> = Vec::new();
    for name in interface {
        vars.push(spec.require(name)?.clone());
    }
    for block in blocks {
        vars.push(VariableSpec {
            name: block.spec.name.clone(),
            ftype: FunctionalType::Latent,
            bands: vec![
                StateBand::new("fault", 0.0, 1.0, "some latent in the block is faulty"),
                StateBand::new("ok", 1.0, 2.0, "every latent in the block is healthy"),
            ],
            ckt_ref: None,
        });
        for s in &block.spec.summary {
            vars.push(spec.require(s)?.clone());
        }
    }
    let mut cm = CircuitModel::new(ModelSpec::new(vars)?);
    for (j, name) in interface.iter().enumerate() {
        for prev in &interface[..j] {
            cm.depends(prev.as_str(), name.as_str())?;
        }
    }
    for block in blocks {
        for name in interface {
            cm.depends(name.as_str(), block.spec.name.as_str())?;
        }
        for s in &block.spec.summary {
            for name in interface {
                cm.depends(name.as_str(), s.as_str())?;
            }
            cm.depends(block.spec.name.as_str(), s.as_str())?;
        }
    }

    // Network: interface chain from P(I), per-block aggregation CPTs
    // from the flat joints.
    let mut b = NetworkBuilder::new();
    let mut root_id: BTreeMap<&str, VarId> = BTreeMap::new();
    for name in interface {
        let flat_id = net.require_var(name).map_err(Error::Bbn)?;
        let id = b
            .variable(name.clone(), net.states(flat_id).to_vec())
            .map_err(Error::Bbn)?;
        root_id.insert(name.as_str(), id);
    }
    let mut block_obs_ids: Vec<(VarId, Vec<VarId>)> = Vec::new();
    for block in blocks {
        let blk = b
            .variable(block.spec.name.clone(), ["fault", "ok"])
            .map_err(Error::Bbn)?;
        let mut obs_ids = Vec::new();
        for s in &block.spec.summary {
            let flat_id = net.require_var(s).map_err(Error::Bbn)?;
            let id = b
                .variable(s.clone(), net.states(flat_id).to_vec())
                .map_err(Error::Bbn)?;
            root_id.insert(s.as_str(), id);
            obs_ids.push(id);
        }
        block_obs_ids.push((blk, obs_ids));
    }

    // Interface chain CPTs.
    if !interface_ids.is_empty() {
        let joint = ve
            .joint_marginal(&no_evidence, interface_ids)
            .and_then(|f| f.reorder(interface_ids))
            .map_err(Error::Bbn)?;
        for (j, name) in interface.iter().enumerate() {
            let prefix = &interface_ids[..=j];
            let num = joint
                .marginalize_to(prefix)
                .and_then(|f| f.reorder(prefix))
                .map_err(Error::Bbn)?;
            let card = iface_cards[j];
            let rows = num.len() / card;
            let mut table = Vec::with_capacity(num.len());
            for row in 0..rows {
                let slice = &num.values()[row * card..(row + 1) * card];
                push_normalized(&mut table, slice, card);
            }
            let parents: Vec<VarId> = interface[..j].iter().map(|p| root_id[p.as_str()]).collect();
            b.cpt_flat(root_id[name.as_str()], parents, table)
                .map_err(Error::Bbn)?;
        }
    }

    for (block, (blk_id, obs_ids)) in blocks.iter().zip(&block_obs_ids) {
        let latent_ids: Vec<VarId> = block.latents.iter().map(|&(_, id, _)| id).collect();
        let latent_cards: Vec<usize> = latent_ids.iter().map(|&v| net.card(v)).collect();
        let fault_states: Vec<Vec<usize>> =
            block.latents.iter().map(|(_, _, s)| s.clone()).collect();
        let faulty = classify_configs(&latent_cards, &fault_states);
        let n_lat_cfg = faulty.len();

        // P(blk | interface): the chance some block latent is faulty.
        let mut targets: Vec<VarId> = interface_ids.to_vec();
        targets.extend(&latent_ids);
        let joint = ve
            .joint_marginal(&no_evidence, &targets)
            .and_then(|f| f.reorder(&targets))
            .map_err(Error::Bbn)?;
        let vals = joint.values();
        let mut blk_table = Vec::with_capacity(n_iface_cfg * 2);
        for i in 0..n_iface_cfg {
            let base = i * n_lat_cfg;
            let total: f64 = vals[base..base + n_lat_cfg].iter().sum();
            let fault: f64 = (0..n_lat_cfg)
                .filter(|&l| faulty[l])
                .map(|l| vals[base + l])
                .sum();
            if total > 0.0 {
                blk_table.push(fault / total);
                blk_table.push(1.0 - fault / total);
            } else {
                blk_table.extend([0.5, 0.5]);
            }
        }
        let parents: Vec<VarId> = interface.iter().map(|p| root_id[p.as_str()]).collect();
        b.cpt_flat(*blk_id, parents, blk_table)
            .map_err(Error::Bbn)?;

        // P(summary obs | interface, blk): the flat joint split by the
        // block's fault/healthy classification.
        for (s, &obs_id) in block.spec.summary.iter().zip(obs_ids) {
            let flat_obs = net.require_var(s).map_err(Error::Bbn)?;
            let card = net.card(flat_obs);
            let mut targets: Vec<VarId> = interface_ids.to_vec();
            targets.extend(&latent_ids);
            targets.push(flat_obs);
            let joint = ve
                .joint_marginal(&no_evidence, &targets)
                .and_then(|f| f.reorder(&targets))
                .map_err(Error::Bbn)?;
            let vals = joint.values();
            let mut table = Vec::with_capacity(n_iface_cfg * 2 * card);
            let mut num = vec![0.0f64; card];
            for i in 0..n_iface_cfg {
                for class_fault in [true, false] {
                    num.iter_mut().for_each(|n| *n = 0.0);
                    for (l, &is_faulty) in faulty.iter().enumerate() {
                        if is_faulty == class_fault {
                            let base = (i * n_lat_cfg + l) * card;
                            for (s_idx, n) in num.iter_mut().enumerate() {
                                *n += vals[base + s_idx];
                            }
                        }
                    }
                    push_normalized(&mut table, &num, card);
                }
            }
            let mut parents: Vec<VarId> = interface.iter().map(|p| root_id[p.as_str()]).collect();
            parents.push(*blk_id);
            b.cpt_flat(obs_id, parents, table).map_err(Error::Bbn)?;
        }
    }

    let network = b.build().map_err(Error::Bbn)?;
    CompiledModel::compile(DiagnosticModel::from_parts(cm, network))
}

/// Appends `slice` normalised to a distribution (uniform when the mass
/// is zero — the config is impossible, any conditional works).
fn push_normalized(table: &mut Vec<f64>, slice: &[f64], card: usize) {
    let total: f64 = slice.iter().sum();
    if total > 0.0 {
        table.extend(slice.iter().map(|v| v / total));
    } else {
        table.extend(std::iter::repeat_n(1.0 / card as f64, card));
    }
}

/// The decision record of one hierarchical closed loop: the root
/// isolation trace, the block descended into (if any), and the descended
/// block's trace — the golden-trace corpus serialises these.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HierarchicalTrace {
    /// The root (board-level) phase's decisions.
    pub root: DecisionTrace,
    /// The block the session descended into, if descent happened.
    pub descended: Option<String>,
    /// The descended block's decisions, when descent happened.
    pub child: Option<DecisionTrace>,
}

/// One device diagnosed through a [`HierarchicalModel`]: a root
/// [`DiagnosisSession`] plus, after descent, a child session on the
/// suspect block's sub-model — both speaking the ordinary
/// [`Action`]/[`Outcome`] vocabulary, so executors, golden traces and
/// the service wire format need no new concepts.
///
/// The session keeps a **board observation**: every measurement it has
/// seen, keyed by flat-model names. Before descent, the subset naming
/// root variables drives the root session; at descent the subset naming
/// child variables (interface + block members) is lifted down, so
/// evidence taken early is never lost.
#[derive(Debug)]
pub struct HierarchicalSession {
    model: Arc<HierarchicalModel>,
    policy: StoppingPolicy,
    root: DiagnosisSession,
    child: Option<(usize, DiagnosisSession)>,
    board: Observation,
}

impl HierarchicalSession {
    /// Opens a session at the abstract root.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidStoppingPolicy`] for malformed policies.
    pub fn new(model: Arc<HierarchicalModel>, policy: StoppingPolicy) -> Result<Self> {
        let root = DiagnosisSession::new(Arc::clone(model.root()), policy)?;
        Ok(HierarchicalSession {
            model,
            policy,
            root,
            child: None,
            board: Observation::new(),
        })
    }

    /// The tree this session diagnoses through.
    pub fn model(&self) -> &Arc<HierarchicalModel> {
        &self.model
    }

    /// The root (board-level) session.
    pub fn root_session(&self) -> &DiagnosisSession {
        &self.root
    }

    /// The descended block's session, if descent has happened.
    pub fn child_session(&self) -> Option<&DiagnosisSession> {
        self.child.as_ref().map(|(_, s)| s)
    }

    /// The block descended into, if any.
    pub fn descended_block(&self) -> Option<&str> {
        self.child
            .as_ref()
            .map(|&(idx, _)| self.model.blocks[idx].spec.name.as_str())
    }

    /// Everything observed on the device so far, keyed by flat names.
    pub fn board_observation(&self) -> &Observation {
        &self.board
    }

    /// The active session: child when descended, root otherwise.
    fn active_mut(&mut self) -> &mut DiagnosisSession {
        match self.child.as_mut() {
            Some((_, s)) => s,
            None => &mut self.root,
        }
    }

    /// Whether `name` is a variable of the root model.
    fn root_has(&self, name: &str) -> bool {
        self.model.root().model().var(name).is_ok()
    }

    /// Records a measurement: `variable = state`, routed to every level
    /// that models the variable and remembered for later descent.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidObservation`] for unknown variables or
    /// out-of-range states.
    pub fn observe(&mut self, variable: &str, state: usize) -> Result<()> {
        let flat_var = self.model.flat().var(variable).ok();
        if flat_var.is_none() && !self.root_has(variable) {
            return Err(Error::InvalidObservation {
                variable: variable.into(),
                reason: "not a model variable".into(),
            });
        }
        if let Some(var) = flat_var {
            let card = self.model.flat().network().card(var);
            if state >= card {
                return Err(Error::InvalidObservation {
                    variable: variable.into(),
                    reason: format!("state {state} out of range {card}"),
                });
            }
            self.board.set(variable, state);
        }
        if self.root_has(variable) {
            self.root.observe(variable, state)?;
        }
        if let Some((_, child)) = self.child.as_mut() {
            if child.compiled().model().var(variable).is_ok() {
                child.observe(variable, state)?;
            }
        }
        Ok(())
    }

    /// Flags an observed variable as limit-failing on every level that
    /// models it.
    pub fn mark_failing(&mut self, variable: &str) {
        if self.model.flat().var(variable).is_ok() {
            self.board.mark_failing(variable);
        }
        if self.root_has(variable) {
            self.root.mark_failing(variable);
        }
        if let Some((_, child)) = self.child.as_mut() {
            if child.compiled().model().var(variable).is_ok() {
                child.mark_failing(variable);
            }
        }
    }

    /// Records every entry (and failing mark) of `observation`.
    ///
    /// # Errors
    ///
    /// Same as [`HierarchicalSession::observe`].
    pub fn observe_all(&mut self, observation: &Observation) -> Result<()> {
        for (name, state) in observation.iter() {
            self.observe(name, state)?;
        }
        for name in observation.failing() {
            self.mark_failing(name);
        }
        Ok(())
    }

    /// The active level's diagnosis: block pseudo-latent fault mass at
    /// the root, block-internal latent fault mass after descent.
    ///
    /// # Errors
    ///
    /// Propagates propagation errors.
    pub fn diagnose(&mut self) -> Result<Diagnosis> {
        self.active_mut().diagnose()
    }

    /// Ranks the active level's candidate actions (board-level summary
    /// tests at the root; block tests and probes after descent).
    ///
    /// # Errors
    ///
    /// Propagates diagnosis and scoring errors.
    pub fn rank_actions(&mut self) -> Result<&[ScoredAction]> {
        self.active_mut().rank_actions()
    }

    /// Why the active level's stepping loop last declined to recommend.
    pub fn stop_reason(&self) -> Option<StopReason> {
        match self.child.as_ref() {
            Some((_, s)) => s.stop_reason(),
            None => self.root.stop_reason(),
        }
    }

    /// Descends into `block` if not already descended: compiles the
    /// child (first visit only), opens the block session under the
    /// current policy/strategy/costs, and lifts the board evidence down.
    ///
    /// # Errors
    ///
    /// Propagates compilation and observation errors.
    pub fn descend(&mut self, block: usize) -> Result<()> {
        if self.child.is_some() {
            return Ok(());
        }
        let compiled = self.model.child(block)?;
        let mut session = DiagnosisSession::new(Arc::clone(&compiled), self.policy)?;
        session.set_strategy(self.root.strategy())?;
        session.set_cost_model(self.root.cost_model().clone())?;
        session.set_deduction_policy(self.root.deduction_override())?;
        let child_model = compiled.model();
        for (name, state) in self.board.iter() {
            if child_model.var(name).is_ok() {
                session.observe(name, state)?;
            }
        }
        for name in self.board.failing() {
            if child_model.var(name).is_ok() {
                session.mark_failing(name);
            }
        }
        // Candidates: the block's unmeasured observables as tests, its
        // latents as probes.
        let cm = child_model.circuit_model();
        let mut actions: Vec<Action> = Vec::new();
        for o in cm.observables() {
            if self.board.state_of(o).is_none() {
                actions.push(Action::test(o));
            }
        }
        for l in cm.latents() {
            actions.push(Action::probe(l));
        }
        session.set_actions(actions)?;
        self.child = Some((block, session));
        Ok(())
    }

    /// Checks the descent trigger against the root's current beliefs and
    /// descends when a block's fault mass reaches the threshold (or, with
    /// `force`, into the top block regardless).
    ///
    /// # Errors
    ///
    /// Propagates diagnosis/compilation errors.
    fn try_descend(&mut self, force: bool) -> Result<bool> {
        if self.child.is_some() {
            return Ok(false);
        }
        let diagnosis = self.root.diagnose()?;
        let mut best: Option<(usize, f64)> = None;
        for (idx, entry) in self.model.blocks.iter().enumerate() {
            let mass = diagnosis
                .fault_mass()
                .get(&entry.spec.name)
                .copied()
                .unwrap_or(0.0);
            if best.is_none_or(|(_, m)| mass > m) {
                best = Some((idx, mass));
            }
        }
        let Some((idx, mass)) = best else {
            return Ok(false);
        };
        if force || mass >= self.model.descend_threshold() {
            self.descend(idx)?;
            return Ok(true);
        }
        Ok(false)
    }

    /// The next recommended action: the root's until a block crosses the
    /// descend threshold (or the root isolates a block), the descended
    /// block's afterwards. `None` once the descended session stops —
    /// [`HierarchicalSession::stop_reason`] says why.
    ///
    /// # Errors
    ///
    /// Propagates diagnosis/scoring/compilation errors.
    pub fn next_action(&mut self) -> Result<Option<Ranked<Action>>> {
        if self.child.is_none() {
            self.try_descend(false)?;
        }
        if self.child.is_none() {
            if let Some(ranked) = self.root.next_action()? {
                return Ok(Some(ranked));
            }
            // The root declined. Isolation at board level means a block
            // is the culprit: descend and keep going. Any other stop
            // (budget, gain floor, exhausted) ends the loop at the root.
            if self.root.stop_reason() == Some(StopReason::Isolated) {
                self.try_descend(true)?;
            }
            if self.child.is_none() {
                return Ok(None);
            }
        }
        let (_, child) = self.child.as_mut().expect("descended above");
        child.next_action()
    }

    /// Applies a measurement outcome to the active level (mirroring into
    /// the board record and the root, where applicable), then re-checks
    /// the descent trigger.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidObservation`] for unknown targets or
    /// out-of-range states.
    pub fn apply(&mut self, action: &Action, outcome: Outcome) -> Result<()> {
        let name = action.target();
        match self.child.as_mut() {
            Some((_, child)) => {
                child.apply(action, outcome)?;
                if self.model.flat().var(name).is_ok() {
                    self.board.set(name, outcome.state);
                    if outcome.failing {
                        self.board.mark_failing(name);
                    }
                }
            }
            None => {
                self.root.apply(action, outcome)?;
                if self.model.flat().var(name).is_ok() {
                    self.board.set(name, outcome.state);
                    if outcome.failing {
                        self.board.mark_failing(name);
                    }
                }
                self.try_descend(false)?;
            }
        }
        Ok(())
    }

    /// Runs the two-phase closed loop: board-level isolation at the
    /// root, then block-level isolation in the descended session. The
    /// outcome's ledger concatenates both phases' measurements; its
    /// diagnosis and stop reason come from the level that ended the
    /// loop.
    ///
    /// # Errors
    ///
    /// Same as [`DiagnosisSession::run`].
    pub fn run<E>(&mut self, mut executor: E) -> Result<SequentialOutcome>
    where
        E: ActionExecutor,
    {
        let root_start = self.root.applied().len();
        let child_start = self.child.as_ref().map_or(0, |(_, s)| s.applied().len());
        while let Some(next) = self.next_action()? {
            let outcome = executor.execute(&next.action)?;
            self.apply(&next.action, outcome)?;
        }
        let stop = self.stop_reason().unwrap_or(StopReason::Exhausted);
        let mut applied: Vec<AppliedMeasurement> = self.root.applied()[root_start..].to_vec();
        if let Some((_, child)) = self.child.as_ref() {
            applied.extend_from_slice(&child.applied()[child_start..]);
        }
        let diagnosis = self.diagnose()?;
        Ok(SequentialOutcome {
            diagnosis,
            applied,
            stop,
        })
    }

    /// [`HierarchicalSession::run`] capturing both phases' decision
    /// traces — the executable evidence the hierarchical golden-trace
    /// corpus replays.
    ///
    /// # Errors
    ///
    /// Same as [`HierarchicalSession::run`].
    pub fn run_traced<E>(&mut self, executor: E) -> Result<(SequentialOutcome, HierarchicalTrace)>
    where
        E: ActionExecutor,
    {
        self.root.set_tracing(true);
        let descended_before = self.child.is_some();
        if let Some((_, child)) = self.child.as_mut() {
            child.set_tracing(true);
        }
        let outcome = self.run(executor)?;
        let mut root_trace = self
            .root
            .trace()
            .cloned()
            .expect("root tracing was enabled");
        root_trace.strategy = self.root.strategy();
        let root_diagnosis = self.root.diagnose()?;
        root_trace.final_fault_mass = root_diagnosis
            .fault_mass()
            .iter()
            .map(|(n, &m)| (n.clone(), m))
            .collect();
        root_trace.top_candidate = root_diagnosis.top_candidate().map(str::to_string);
        root_trace.stop = match self.child {
            // Descent is a root-level isolation even when triggered by
            // the threshold rather than the stopping policy.
            Some(_) => StopReason::Isolated,
            None => outcome.stop,
        };
        let child_trace = self.child.as_mut().map(|(_, child)| {
            let mut trace = child.trace().cloned().unwrap_or(DecisionTrace {
                strategy: child.strategy(),
                steps: Vec::new(),
                stop: outcome.stop,
                final_fault_mass: Vec::new(),
                top_candidate: None,
            });
            trace.strategy = child.strategy();
            trace.stop = outcome.stop;
            trace.final_fault_mass = outcome
                .diagnosis
                .fault_mass()
                .iter()
                .map(|(n, &m)| (n.clone(), m))
                .collect();
            trace.top_candidate = outcome.diagnosis.top_candidate().map(str::to_string);
            trace
        });
        // A session traced from the start descends during the traced
        // run; enable child tracing retroactively has no steps to lose
        // because descent creates the child inside `run`.
        debug_assert!(
            !descended_before || child_trace.is_some(),
            "a pre-descended session keeps its child trace"
        );
        let trace = HierarchicalTrace {
            root: root_trace,
            descended: self.descended_block().map(str::to_string),
            child: child_trace,
        };
        Ok((outcome, trace))
    }

    /// Serves one decision round at the service boundary, threading
    /// descent through: the request's observation is validated against
    /// the whole board, the active level absorbs its subset, and when
    /// the round pushes a block over the descend threshold the report
    /// switches to the freshly descended block session — so a wire
    /// client runs the same two-phase loop a local session does.
    ///
    /// # Errors
    ///
    /// Same as [`DiagnosisSession::serve_round`]; on error the session
    /// is unchanged.
    pub fn serve_round(&mut self, request: &SessionRequest) -> Result<SessionReport> {
        // Validate the whole observation up front (the level sessions
        // only see their subset, but a bad entry must fail the round).
        for (name, state) in request.observation.iter() {
            let known_flat = match self.model.flat().var(name) {
                Ok(var) => {
                    let card = self.model.flat().network().card(var);
                    if state >= card {
                        return Err(Error::InvalidObservation {
                            variable: name.into(),
                            reason: format!("state {state} out of range {card}"),
                        });
                    }
                    true
                }
                Err(_) => false,
            };
            if !known_flat && !self.root_has(name) {
                return Err(Error::InvalidObservation {
                    variable: name.into(),
                    reason: "not a model variable".into(),
                });
            }
        }
        let report = match self.child.as_mut() {
            Some((_, child)) => {
                let filtered = filter_request(request, child.compiled().model());
                child.serve_round(&filtered)?
            }
            None => {
                let filtered = filter_request(request, self.model.root().model());
                let report = self.root.serve_round(&filtered)?;
                self.policy = request.policy;
                if self.try_descend(false)?
                    || (report.stop == Some(StopReason::Isolated) && self.try_descend(true)?)
                {
                    // Descent within the round: answer from block level,
                    // so the client's next measurements target the block.
                    let (_, child) = self.child.as_mut().expect("just descended");
                    child.serve_round(&SessionRequest {
                        observation: Observation::new(),
                        actions: Vec::new(),
                        strategy: request.strategy,
                        policy: request.policy,
                        cost: request.cost.clone(),
                        deduction: request.deduction,
                        delta: true,
                        timings: Vec::new(),
                    })?
                } else {
                    report
                }
            }
        };
        // Commit the round's observations to the board record.
        for (name, state) in request.observation.iter() {
            if self.model.flat().var(name).is_ok() {
                self.board.set(name, state);
            }
        }
        for name in request.observation.failing() {
            if self.model.flat().var(name).is_ok() {
                self.board.mark_failing(name);
            }
        }
        Ok(report)
    }
}

/// Restricts a request to the variables (and action targets) `model`
/// knows; everything else belongs to other levels of the tree.
fn filter_request(request: &SessionRequest, model: &DiagnosticModel) -> SessionRequest {
    let mut observation = Observation::new();
    for (name, state) in request.observation.iter() {
        if model.var(name).is_ok() {
            observation.set(name, state);
        }
    }
    for name in request.observation.failing() {
        if model.var(name).is_ok() {
            observation.mark_failing(name);
        }
    }
    let actions: Vec<Action> = request
        .actions
        .iter()
        .filter(|a| model.var(a.target()).is_ok())
        .cloned()
        .collect();
    SessionRequest {
        observation,
        actions,
        strategy: request.strategy,
        policy: request.policy,
        cost: request.cost.clone(),
        deduction: request.deduction,
        delta: request.delta,
        timings: request.timings.clone(),
    }
}
