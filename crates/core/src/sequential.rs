//! The legacy sequential-diagnosis surface, kept as a thin deprecated
//! wrapper over [`crate::session`].
//!
//! [`SequentialDiagnoser`] predates the unified session API: it borrowed
//! a [`DiagnosticEngine`] for its lifetime and spoke a tests-only
//! vocabulary (bare variable names, `Measured`). The loop itself —
//! stopping policies, scoring, tracing, the zero-allocation steady state
//! — now lives in [`DiagnosisSession`], which this wrapper delegates to
//! one-for-one, so single-run legacy callers keep byte-identical
//! behaviour (the golden-trace corpus replays through either surface).
//! One deliberate divergence: [`StoppingPolicy::max_steps`] now budgets
//! the session's *whole* measurement ledger, where the old loop reset
//! the count on every `run`/`run_scripted` call — a diagnoser driven
//! through several runs gets one tester-time budget, not one per run.
//! New code should hold an `Arc<CompiledModel>` and open sessions
//! directly:
//!
//! ```
//! # fn main() -> Result<(), abbd_core::Error> {
//! use abbd_core::{DiagnosisSession, Outcome, StoppingPolicy};
//! let compiled = abbd_core::fixtures::toy_compiled_model();
//! let mut session = DiagnosisSession::new(compiled, StoppingPolicy::default())?;
//! session.observe("pin", 1)?;
//! let outcome = session.run(|action: &abbd_core::Action| {
//!     Ok(match action.target() {
//!         "out1" | "out2" => Outcome::failing(0),
//!         _ => Outcome::passing(1),
//!     })
//! })?;
//! assert_eq!(outcome.diagnosis.top_candidate(), Some("bias"));
//! # Ok(())
//! # }
//! ```
//!
//! See the [session migration table](crate::session) for the full
//! old-to-new mapping.

use crate::engine::{Diagnosis, DiagnosticEngine, Observation};
use crate::error::Result;
use crate::planner::{CostModel, Strategy};
use crate::session::{
    Action, DecisionTrace, DiagnosisSession, Outcome, ScoredAction, SequentialOutcome,
    StoppingPolicy,
};
use std::marker::PhantomData;
use std::sync::Arc;

/// The pre-session name of [`Outcome`].
#[deprecated(note = "use abbd_core::Outcome (the unified Action vocabulary)")]
pub type Measured = Outcome;

/// The pre-session name of [`ScoredAction`].
#[deprecated(note = "use abbd_core::ScoredAction via DiagnosisSession::rank_actions")]
pub type ScoredCandidate = ScoredAction;

/// The legacy closed-loop sequential diagnoser: a borrow-scoped wrapper
/// over [`DiagnosisSession`] speaking bare variable names instead of
/// [`Action`]s. Candidates given by name are classified automatically
/// (latent blocks become probes, everything else a test).
#[deprecated(
    note = "use DiagnosisSession::new(engine.compiled().clone(), policy) — one shared \
            CompiledModel, one Action vocabulary for tests and probes"
)]
#[derive(Debug)]
pub struct SequentialDiagnoser<'e> {
    session: DiagnosisSession,
    /// The wrapper keeps the historical engine-borrow lifetime so legacy
    /// signatures stay source-compatible, even though the session shares
    /// the compilation by `Arc` and needs no borrow.
    _engine: PhantomData<&'e DiagnosticEngine>,
}

#[allow(deprecated)]
impl<'e> SequentialDiagnoser<'e> {
    /// Builds a diagnoser over a compiled engine with every observable
    /// model variable as a candidate measurement.
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::InvalidStoppingPolicy`] for malformed
    /// policies and propagates variable-lookup errors.
    pub fn new(engine: &'e DiagnosticEngine, policy: StoppingPolicy) -> Result<Self> {
        Ok(SequentialDiagnoser {
            session: DiagnosisSession::new(Arc::clone(engine.compiled()), policy)?,
            _engine: PhantomData,
        })
    }

    /// The unified session behind this wrapper (escape hatch for
    /// incremental migrations).
    pub fn session(&mut self) -> &mut DiagnosisSession {
        &mut self.session
    }

    /// Replaces the candidate-selection strategy. See
    /// [`DiagnosisSession::set_strategy`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::InvalidStrategy`] for malformed strategies.
    pub fn set_strategy(&mut self, strategy: Strategy) -> Result<()> {
        self.session.set_strategy(strategy)
    }

    /// The active candidate-selection strategy.
    pub fn strategy(&self) -> Strategy {
        self.session.strategy()
    }

    /// Replaces the measurement cost model. See
    /// [`DiagnosisSession::set_cost_model`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::InvalidCostModel`] for malformed models.
    pub fn set_cost_model(&mut self, cost_model: CostModel) -> Result<()> {
        self.session.set_cost_model(cost_model)
    }

    /// The active measurement cost model.
    pub fn cost_model(&self) -> &CostModel {
        self.session.cost_model()
    }

    /// Replaces the candidate measurement set by name. Latent names
    /// become probe actions (step-two probe planning), everything else a
    /// test; names the observation already pins are rejected.
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::InvalidObservation`] for unknown or
    /// already-observed names.
    pub fn set_candidates<I, N>(&mut self, names: I) -> Result<()>
    where
        I: IntoIterator<Item = N>,
        N: AsRef<str>,
    {
        self.session.set_candidates(names)
    }

    /// The unapplied candidates with their gains from the latest
    /// [`SequentialDiagnoser::score_candidates`] pass (unsorted between
    /// passes).
    pub fn candidates(&self) -> &[ScoredAction] {
        self.session.actions()
    }

    /// Everything observed so far.
    pub fn observation(&self) -> &Observation {
        self.session.observation()
    }

    /// The active stopping policy.
    pub fn policy(&self) -> &StoppingPolicy {
        self.session.policy()
    }

    /// Records a measurement: `variable = state`. See
    /// [`DiagnosisSession::observe`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::InvalidObservation`] for unknown variables
    /// or out-of-range states.
    pub fn observe(&mut self, variable: &str, state: usize) -> Result<()> {
        self.session.observe(variable, state)
    }

    /// Marks an already-recorded variable as having failed its ATE limits.
    pub fn mark_failing(&mut self, variable: &str) {
        self.session.mark_failing(variable);
    }

    /// Seeds the diagnoser with a whole observation, preserving its
    /// failing marks.
    ///
    /// # Errors
    ///
    /// Propagates [`SequentialDiagnoser::observe`] errors.
    pub fn observe_all(&mut self, observation: &Observation) -> Result<()> {
        self.session.observe_all(observation)
    }

    /// The diagnosis over everything observed so far. See
    /// [`DiagnosisSession::diagnose`].
    ///
    /// # Errors
    ///
    /// Same as [`DiagnosticEngine::diagnose`].
    pub fn diagnosis(&mut self) -> Result<Diagnosis> {
        self.session.diagnose()
    }

    /// Scores every unapplied candidate under the active strategy and
    /// cost model. See [`DiagnosisSession::rank_actions`].
    ///
    /// # Errors
    ///
    /// Propagates propagation errors (e.g. impossible evidence).
    pub fn score_candidates(&mut self) -> Result<&[ScoredAction]> {
        self.session.rank_actions()
    }

    /// Runs the closed loop against a by-name measurement oracle. See
    /// [`DiagnosisSession::run`].
    ///
    /// # Errors
    ///
    /// Propagates diagnosis/propagation errors and whatever the oracle
    /// returns (conventionally [`crate::Error::Oracle`]).
    pub fn run<F>(&mut self, mut oracle: F) -> Result<SequentialOutcome>
    where
        F: FnMut(&str) -> Result<Outcome>,
    {
        self.session.run(|action: &Action| oracle(action.target()))
    }

    /// [`SequentialDiagnoser::run`] capturing a full [`DecisionTrace`].
    /// See [`DiagnosisSession::run_traced`].
    ///
    /// # Errors
    ///
    /// Same as [`SequentialDiagnoser::run`].
    pub fn run_traced<F>(&mut self, mut oracle: F) -> Result<(SequentialOutcome, DecisionTrace)>
    where
        F: FnMut(&str) -> Result<Outcome>,
    {
        self.session
            .run_traced(|action: &Action| oracle(action.target()))
    }

    /// [`SequentialDiagnoser::run`] with the measurement order fixed in
    /// advance. See [`DiagnosisSession::run_scripted`].
    ///
    /// # Errors
    ///
    /// Same as [`SequentialDiagnoser::run`].
    pub fn run_scripted<F>(&mut self, order: &[&str], mut oracle: F) -> Result<SequentialOutcome>
    where
        F: FnMut(&str) -> Result<Outcome>,
    {
        self.session
            .run_scripted(order, |action: &Action| oracle(action.target()))
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::error::Error;
    use crate::session::StopReason;

    /// The shared pin/bias/load/aux fixture: out1 pins bias tightly,
    /// out2 is mushy, out3 only reflects aux (see [`crate::fixtures`]).
    fn engine() -> DiagnosticEngine {
        crate::fixtures::toy_sequential_engine()
    }

    /// A device where bias is dead: out1/out2 read 0, out3 reads 1.
    fn dead_bias_oracle(name: &str) -> Result<Outcome> {
        Ok(match name {
            "out1" | "out2" => Outcome::failing(0),
            "out3" => Outcome::passing(1),
            other => {
                return Err(Error::Oracle {
                    variable: other.into(),
                    reason: "no such net on the bench".into(),
                })
            }
        })
    }

    #[test]
    fn policy_validation() {
        assert!(StoppingPolicy::default().validate().is_ok());
        assert!(StoppingPolicy::exhaustive().validate().is_ok());
        let bad = StoppingPolicy {
            fault_mass_threshold: 0.0,
            ..Default::default()
        };
        assert!(matches!(
            bad.validate(),
            Err(Error::InvalidStoppingPolicy(_))
        ));
        let bad = StoppingPolicy {
            min_gain: -1.0,
            ..Default::default()
        };
        assert!(matches!(
            SequentialDiagnoser::new(&engine(), bad),
            Err(Error::InvalidStoppingPolicy(_))
        ));
    }

    #[test]
    fn adaptive_loop_isolates_dead_bias_via_the_informative_output() {
        let eng = engine();
        let mut d = SequentialDiagnoser::new(&eng, StoppingPolicy::default()).unwrap();
        d.observe("pin", 1).unwrap();
        let outcome = d.run(dead_bias_oracle).unwrap();
        assert_eq!(outcome.stop, StopReason::Isolated);
        assert_eq!(outcome.diagnosis.top_candidate(), Some("bias"));
        // out1 mirrors bias almost perfectly, so the loop asks for it
        // first and needs nothing else.
        assert_eq!(outcome.applied[0].variable, "out1");
        assert!(outcome.tests_used() < 3, "{:?}", outcome.applied);
        assert!(outcome.applied[0].expected_information_gain.unwrap() > 0.0);
    }

    #[test]
    fn healthy_device_stops_on_gain_floor() {
        let eng = engine();
        let mut d = SequentialDiagnoser::new(
            &eng,
            StoppingPolicy {
                // Unreachable isolation: force the gain floor to fire.
                fault_mass_threshold: 1.0,
                max_steps: 32,
                min_gain: 0.3,
            },
        )
        .unwrap();
        d.observe("pin", 1).unwrap();
        let outcome = d
            .run(|name| {
                Ok(match name {
                    "out1" | "out2" | "out3" => Outcome::passing(1),
                    _ => unreachable!(),
                })
            })
            .unwrap();
        assert_eq!(outcome.stop, StopReason::GainBelowThreshold);
        assert!(outcome.diagnosis.candidates().is_empty());
        // Healthy outputs stop carrying information quickly.
        assert!(outcome.tests_used() < 3, "{:?}", outcome.applied);
    }

    #[test]
    fn max_steps_bounds_the_loop() {
        let eng = engine();
        let mut d = SequentialDiagnoser::new(
            &eng,
            StoppingPolicy {
                fault_mass_threshold: 1.0,
                max_steps: 1,
                min_gain: 0.0,
            },
        )
        .unwrap();
        d.observe("pin", 1).unwrap();
        let outcome = d.run(dead_bias_oracle).unwrap();
        assert_eq!(outcome.stop, StopReason::MaxSteps);
        assert_eq!(outcome.tests_used(), 1);
    }

    #[test]
    fn exhaustive_run_reproduces_one_shot_diagnosis() {
        let eng = engine();
        let mut d = SequentialDiagnoser::new(&eng, StoppingPolicy::exhaustive()).unwrap();
        d.observe("pin", 1).unwrap();
        let outcome = d.run(dead_bias_oracle).unwrap();
        assert_eq!(outcome.stop, StopReason::Exhausted);
        assert_eq!(outcome.tests_used(), 3);

        let mut full = Observation::new();
        full.set("pin", 1)
            .set("out1", 0)
            .set("out2", 0)
            .set("out3", 1);
        full.mark_failing("out1").mark_failing("out2");
        let one_shot = eng.diagnose(&full).unwrap();
        assert_eq!(outcome.diagnosis.posteriors(), one_shot.posteriors());
        assert_eq!(outcome.diagnosis.fault_mass(), one_shot.fault_mass());
        assert_eq!(outcome.diagnosis.top_candidate(), one_shot.top_candidate());
    }

    #[test]
    fn scripted_run_follows_program_order() {
        let eng = engine();
        let mut d = SequentialDiagnoser::new(&eng, StoppingPolicy::exhaustive()).unwrap();
        d.observe("pin", 1).unwrap();
        let outcome = d
            .run_scripted(&["out3", "out2", "out1"], dead_bias_oracle)
            .unwrap();
        assert_eq!(outcome.stop, StopReason::Exhausted);
        let order: Vec<&str> = outcome
            .applied
            .iter()
            .map(|a| a.variable.as_str())
            .collect();
        assert_eq!(order, ["out3", "out2", "out1"]);
        assert!(outcome
            .applied
            .iter()
            .all(|a| a.expected_information_gain.is_none()));
    }

    #[test]
    fn adaptive_uses_no_more_tests_than_scripted_on_this_case() {
        let eng = engine();
        let policy = StoppingPolicy::default();
        let mut adaptive = SequentialDiagnoser::new(&eng, policy).unwrap();
        adaptive.observe("pin", 1).unwrap();
        let a = adaptive.run(dead_bias_oracle).unwrap();

        let mut fixed = SequentialDiagnoser::new(&eng, policy).unwrap();
        fixed.observe("pin", 1).unwrap();
        // Program order happens to lead with the least informative test.
        let f = fixed
            .run_scripted(&["out3", "out2", "out1"], dead_bias_oracle)
            .unwrap();
        assert!(
            a.tests_used() <= f.tests_used(),
            "adaptive {} > fixed {}",
            a.tests_used(),
            f.tests_used()
        );
    }

    #[test]
    fn candidate_management_and_errors() {
        let eng = engine();
        let mut d = SequentialDiagnoser::new(&eng, StoppingPolicy::default()).unwrap();
        assert_eq!(d.candidates().len(), 3);
        d.set_candidates(["out1", "aux"]).unwrap();
        assert_eq!(d.candidates().len(), 2);
        assert!(!d.candidates()[0].is_probe(), "out1 is an observable test");
        assert!(d.candidates()[1].is_probe(), "aux is a latent probe");
        assert!(matches!(
            d.set_candidates(["ghost"]),
            Err(Error::InvalidObservation { .. })
        ));
        assert!(
            matches!(
                d.set_candidates(["out1", "out1"]),
                Err(Error::InvalidObservation { .. })
            ),
            "duplicate candidates must be rejected up front"
        );
        d.observe("out1", 1).unwrap();
        assert_eq!(d.candidates().len(), 1, "observing a candidate consumes it");
        assert!(matches!(
            d.set_candidates(["out1"]),
            Err(Error::InvalidObservation { .. })
        ));
        assert!(matches!(
            d.observe("out1", 9),
            Err(Error::InvalidObservation { .. })
        ));
        assert!(matches!(
            d.observe("ghost", 0),
            Err(Error::InvalidObservation { .. })
        ));
        // Latent candidates are allowed (step-two probe planning).
        let scored = d.score_candidates().unwrap();
        assert_eq!(scored.len(), 1);
        assert_eq!(scored[0].name(), "aux");
        assert!(scored[0].expected_information_gain() >= 0.0);
    }

    #[test]
    fn oracle_failures_propagate() {
        let eng = engine();
        let mut d = SequentialDiagnoser::new(&eng, StoppingPolicy::default()).unwrap();
        d.observe("pin", 1).unwrap();
        let err = d.run(|name| {
            Err(Error::Oracle {
                variable: name.into(),
                reason: "bench on fire".into(),
            })
        });
        assert!(matches!(err, Err(Error::Oracle { .. })));
    }

    #[test]
    fn seeding_from_observation_preserves_failing_marks() {
        let eng = engine();
        let mut seed = Observation::new();
        seed.set("pin", 1).set("out1", 0);
        seed.mark_failing("out1");
        let mut d = SequentialDiagnoser::new(&eng, StoppingPolicy::default()).unwrap();
        d.observe_all(&seed).unwrap();
        assert_eq!(d.observation().failing(), &["out1".to_string()]);
        assert_eq!(d.candidates().len(), 2);
        let diag = d.diagnosis().unwrap();
        assert_eq!(diag.top_candidate(), Some("bias"));
    }

    /// The tentpole regression: the steady-state decision loop never
    /// compiles a junction tree.
    #[test]
    fn steady_state_performs_zero_compilations() {
        let eng = engine();
        let mut d = SequentialDiagnoser::new(&eng, StoppingPolicy::exhaustive()).unwrap();
        d.observe("pin", 1).unwrap();
        d.score_candidates().unwrap(); // warm-up
        let before = abbd_bbn::jointree_compile_count();
        let outcome = d.run(dead_bias_oracle).unwrap();
        assert_eq!(outcome.stop, StopReason::Exhausted);
        assert_eq!(
            abbd_bbn::jointree_compile_count(),
            before,
            "sequential decisions must reuse the compiled tree"
        );
    }

    /// The wrapper and the session it delegates to agree decision for
    /// decision — the compatibility contract the deprecation rests on.
    #[test]
    fn wrapper_matches_direct_session_bit_for_bit() {
        let eng = engine();
        let mut wrapped = SequentialDiagnoser::new(&eng, StoppingPolicy::default()).unwrap();
        wrapped.observe("pin", 1).unwrap();
        let (w_outcome, w_trace) = wrapped.run_traced(dead_bias_oracle).unwrap();

        let mut session =
            DiagnosisSession::new(Arc::clone(eng.compiled()), StoppingPolicy::default()).unwrap();
        session.observe("pin", 1).unwrap();
        let (s_outcome, s_trace) = session
            .run_traced(|action: &Action| dead_bias_oracle(action.target()))
            .unwrap();

        assert_eq!(w_outcome.applied, s_outcome.applied);
        assert_eq!(w_outcome.stop, s_outcome.stop);
        assert_eq!(
            w_outcome.diagnosis.posteriors(),
            s_outcome.diagnosis.posteriors()
        );
        assert_eq!(w_trace, s_trace);
    }
}
