//! Sequential adaptive diagnosis: a closed loop that repeatedly asks
//! *"which measurement is worth taking next?"*, applies the answer, and
//! stops once a fault candidate is isolated.
//!
//! The paper's flow is one-shot: run the whole test program, enter every
//! observation, read the posteriors. On an ATE every extra test costs
//! tester-seconds, and in step two every extra probe costs FIB/SEM time —
//! so the serving-scale flow is *sequential*: after each measurement,
//! re-propagate, score the remaining candidates by expected information
//! gain over the latent blocks (the [`crate::voi`] kernel, following
//! Zheng/Rish entropy-approximation test selection and Siddiqi & Huang's
//! sequential diagnosis), and either measure the best one or stop.
//!
//! How "best" is judged is pluggable ([`SequentialDiagnoser::set_strategy`]):
//! [`Strategy::Myopic`] ranks by raw one-step gain,
//! [`Strategy::CostWeighted`] by gain per [`CostModel`] tester-second
//! (suite switches and physical probes priced in), and
//! [`Strategy::Lookahead`] by the bounded-depth expectimax value of
//! [`crate::LookaheadPlanner`] per tester-second. Runs can be captured as
//! [`DecisionTrace`]s ([`SequentialDiagnoser::run_traced`]) for the
//! golden-trace conformance corpus.
//!
//! # Steady-state cost
//!
//! A [`SequentialDiagnoser`] owns one compiled engine reference plus two
//! reusable [`PropagationWorkspace`]s (current beliefs, hypothetical
//! queries) and fixed scoring buffers. After construction and the first
//! scoring pass, a decision performs **zero junction-tree compilations
//! and zero heap allocations in the scoring loop** — dozens of
//! hypothetical propagations all land in preallocated buffers. This is
//! asserted by the workspace-level regression tests and the
//! `tests/zero_alloc.rs` counting-allocator harness.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), abbd_core::Error> {
//! use abbd_core::{
//!     CircuitModel, DiagnosticEngine, Measured, ModelBuilder, SequentialDiagnoser,
//!     StoppingPolicy,
//! };
//! use abbd_dlog2bbn::{FunctionalType, ModelSpec, StateBand, VariableSpec};
//!
//! // bias (latent) -> {out1, out2}; out1 mirrors bias tightly.
//! let var = |name: &str, ftype| VariableSpec {
//!     name: name.into(),
//!     ftype,
//!     bands: vec![
//!         StateBand::new("0", 0.0, 1.0, "bad"),
//!         StateBand::new("1", 1.0, 2.0, "good"),
//!     ],
//!     ckt_ref: None,
//! };
//! let spec = ModelSpec::new([
//!     var("bias", FunctionalType::Latent),
//!     var("out1", FunctionalType::Observe),
//!     var("out2", FunctionalType::Observe),
//! ])?;
//! let mut model = CircuitModel::new(spec);
//! model.depends("bias", "out1")?;
//! model.depends("bias", "out2")?;
//! let mut expert = abbd_core::ExpertKnowledge::new(10.0);
//! expert.cpt("bias", [[0.2, 0.8]]);
//! expert.cpt("out1", [[0.98, 0.02], [0.02, 0.98]]);
//! expert.cpt("out2", [[0.7, 0.3], [0.3, 0.7]]);
//! let fitted = ModelBuilder::new(model).with_expert(expert).build_expert_only()?;
//! let engine = DiagnosticEngine::new(fitted)?;
//!
//! let mut diagnoser = SequentialDiagnoser::new(&engine, StoppingPolicy::default())?;
//! // The device under test has a dead bias block: every output reads 0.
//! let outcome = diagnoser.run(|_| Ok(Measured::failing(0)))?;
//! assert_eq!(outcome.diagnosis.top_candidate(), Some("bias"));
//! // The informative output was measured first.
//! assert_eq!(outcome.applied[0].variable, "out1");
//! # Ok(())
//! # }
//! ```

use crate::engine::{Diagnosis, DiagnosticEngine, Observation};
use crate::error::{Error, Result};
use crate::planner::{CostModel, LookaheadPlanner, Strategy};
use crate::voi::{self, VoiScratch};
use abbd_bbn::{Evidence, PropagationWorkspace, VarId};
use serde::{Deserialize, Serialize};

/// When the closed loop stops.
///
/// Thresholds compose: the loop keeps measuring while *none* of the stop
/// conditions hold, so a tight `fault_mass_threshold` with a loose
/// `min_gain` behaves like pure isolation-driven testing, while
/// `max_steps` bounds worst-case tester time regardless.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StoppingPolicy {
    /// Stop once the top fail candidate's fault mass reaches this level
    /// (the block is considered isolated). Must lie in `(0, 1]`; `1.0`
    /// effectively disables isolation stopping (posterior mass on a
    /// discrete fault never quite reaches certainty), which is how the
    /// equivalence tests force the loop to exhaust every measurement.
    pub fault_mass_threshold: f64,
    /// Hard ceiling on applied measurements (tester-time budget).
    pub max_steps: usize,
    /// Stop when the best candidate's expected information gain (nats)
    /// drops below this value — measuring further would cost tester time
    /// without telling us anything. `0.0` disables the check (gains are
    /// clamped non-negative).
    pub min_gain: f64,
}

impl StoppingPolicy {
    /// Checks the thresholds are mutually sane.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidStoppingPolicy`] when the fault-mass
    /// threshold leaves `(0, 1]` or `min_gain` is negative/non-finite.
    pub fn validate(&self) -> Result<()> {
        if !(self.fault_mass_threshold > 0.0 && self.fault_mass_threshold <= 1.0) {
            return Err(Error::InvalidStoppingPolicy(format!(
                "fault_mass_threshold {} outside (0, 1]",
                self.fault_mass_threshold
            )));
        }
        if !self.min_gain.is_finite() || self.min_gain < 0.0 {
            return Err(Error::InvalidStoppingPolicy(format!(
                "min_gain {} must be finite and non-negative",
                self.min_gain
            )));
        }
        Ok(())
    }

    /// A policy that never stops early: threshold `1.0`, no gain floor, a
    /// practically unbounded step budget. [`SequentialDiagnoser::run`]
    /// under this policy applies every candidate measurement, which makes
    /// the final diagnosis equal the one-shot [`DiagnosticEngine::diagnose`]
    /// over the full observation (the equivalence the property tests pin).
    pub fn exhaustive() -> Self {
        StoppingPolicy {
            fault_mass_threshold: 1.0,
            max_steps: usize::MAX,
            min_gain: 0.0,
        }
    }
}

impl Default for StoppingPolicy {
    /// Isolation at 90% fault mass, at most 32 measurements, and a 1 mnat
    /// gain floor (below that the remaining tests are spec filler, not
    /// diagnosis).
    fn default() -> Self {
        StoppingPolicy {
            fault_mass_threshold: 0.9,
            max_steps: 32,
            min_gain: 1e-3,
        }
    }
}

/// Why a [`SequentialDiagnoser::run`] loop ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StopReason {
    /// The top fail candidate crossed the fault-mass threshold.
    Isolated,
    /// The measurement budget ran out.
    MaxSteps,
    /// The best remaining measurement's expected gain fell below
    /// [`StoppingPolicy::min_gain`].
    GainBelowThreshold,
    /// Every candidate measurement has been applied.
    Exhausted,
}

/// The answer a measurement oracle returns for one executed test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Measured {
    /// The observed (binned) state of the measured variable.
    pub state: usize,
    /// Whether the raw measurement failed its ATE limits — failing
    /// observables become self-candidates when nothing upstream explains
    /// them, exactly as in [`Observation::mark_failing`].
    pub failing: bool,
}

impl Measured {
    /// A passing measurement that binned into `state`.
    pub fn passing(state: usize) -> Self {
        Measured {
            state,
            failing: false,
        }
    }

    /// A limit-violating measurement that binned into `state`.
    pub fn failing(state: usize) -> Self {
        Measured {
            state,
            failing: true,
        }
    }
}

/// One applied measurement in a closed-loop run, in execution order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppliedMeasurement {
    /// The measured model variable.
    pub variable: String,
    /// The expected information gain that made the loop choose it (the
    /// strategy's value for lookahead runs — see
    /// [`ScoredCandidate::expected_information_gain`]). `None` for
    /// scripted (fixed-order) runs, which never score.
    pub expected_information_gain: Option<f64>,
    /// The [`CostModel`] cost charged for the measurement at selection
    /// time. `None` for scripted runs.
    pub cost: Option<f64>,
    /// The state the oracle reported.
    pub state: usize,
    /// Whether the oracle flagged the measurement as limit-failing.
    pub failing: bool,
}

/// The result of a closed-loop run: the final diagnosis, the measurements
/// taken (in order) and why the loop stopped.
#[derive(Debug, Clone, PartialEq)]
pub struct SequentialOutcome {
    /// The diagnosis over everything observed when the loop stopped.
    pub diagnosis: Diagnosis,
    /// Applied measurements, in execution order.
    pub applied: Vec<AppliedMeasurement>,
    /// Why the loop stopped.
    pub stop: StopReason,
}

impl SequentialOutcome {
    /// Number of measurements the loop spent.
    pub fn tests_used(&self) -> usize {
        self.applied.len()
    }

    /// Total [`CostModel`] tester-seconds the loop's measurements cost
    /// (scripted measurements, which carry no cost, contribute zero).
    pub fn tester_seconds(&self) -> f64 {
        self.applied.iter().filter_map(|a| a.cost).sum()
    }
}

/// One candidate's entry in a traced decision's ranking.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TracedScore {
    /// The candidate variable.
    pub variable: String,
    /// Its information value (see
    /// [`ScoredCandidate::expected_information_gain`]).
    pub gain: f64,
    /// Its [`CostModel`] cost at decision time.
    pub cost: f64,
    /// Its strategy-adjusted selection score.
    pub score: f64,
}

/// One decision of a traced closed-loop run: the full candidate ranking,
/// what was chosen, what the oracle answered, and the posterior fault
/// mass per latent block after absorbing the answer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TracedDecision {
    /// Every unapplied candidate with its scores, best first.
    pub scores: Vec<TracedScore>,
    /// The chosen (best-scoring) candidate.
    pub chosen: String,
    /// The state the oracle reported.
    pub state: usize,
    /// Whether the oracle flagged the measurement as limit-failing.
    pub failing: bool,
    /// `(latent, posterior fault mass)` after absorbing the answer, in
    /// model order.
    pub fault_mass: Vec<(String, f64)>,
}

/// The complete decision record of one
/// [`SequentialDiagnoser::run_traced`] closed loop — the executable
/// evidence the golden-trace conformance corpus replays.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTrace {
    /// The strategy the run selected candidates with.
    pub strategy: Strategy,
    /// Every decision, in execution order.
    pub steps: Vec<TracedDecision>,
    /// Why the loop stopped.
    pub stop: StopReason,
    /// `(latent, posterior fault mass)` at the final diagnosis.
    pub final_fault_mass: Vec<(String, f64)>,
    /// The final diagnosis's top fail candidate, if any.
    pub top_candidate: Option<String>,
}

/// The diagnosis's per-latent fault mass as ordered entries (the
/// `BTreeMap` iterates in name order, which keeps traces deterministic).
fn fault_mass_entries(diagnosis: &Diagnosis) -> Vec<(String, f64)> {
    diagnosis
        .fault_mass()
        .iter()
        .map(|(name, &mass)| (name.clone(), mass))
        .collect()
}

/// One unapplied candidate measurement with its latest score.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredCandidate {
    name: String,
    var: VarId,
    /// Whether the candidate is a latent block (a step-two physical
    /// probe) rather than an observable test.
    probe: bool,
    gain: f64,
    cost: f64,
    score: f64,
}

impl ScoredCandidate {
    /// The candidate variable's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// `true` when the candidate is a latent block, i.e. measuring it is
    /// a step-two physical probe priced at [`CostModel`]'s probe cost
    /// rather than an ordinary specification test.
    pub fn is_probe(&self) -> bool {
        self.probe
    }

    /// The candidate's information value (nats) from the latest scoring
    /// pass: the one-step expected information gain under
    /// [`Strategy::Myopic`] / [`Strategy::CostWeighted`], the expectimax
    /// value `V_depth` under [`Strategy::Lookahead`].
    pub fn expected_information_gain(&self) -> f64 {
        self.gain
    }

    /// The [`CostModel`] cost of taking this measurement now
    /// (tester-seconds).
    pub fn cost(&self) -> f64 {
        self.cost
    }

    /// The strategy-adjusted selection score the candidates are ranked
    /// by: the raw value for [`Strategy::Myopic`], value-per-cost
    /// otherwise.
    pub fn score(&self) -> f64 {
        self.score
    }
}

/// The closed-loop sequential diagnoser. See the [module docs](self) for
/// the algorithm and an end-to-end example.
///
/// Construction captures the engine's observable variables as the
/// candidate measurement set; [`SequentialDiagnoser::set_candidates`]
/// restricts it (e.g. to one stimulus suite's outputs, or to latent
/// blocks for step-two probe planning). Seed context with
/// [`SequentialDiagnoser::observe_all`] /
/// [`SequentialDiagnoser::observe`], then either drive the loop yourself
/// with [`SequentialDiagnoser::score_candidates`] +
/// [`SequentialDiagnoser::observe`], or hand an oracle to
/// [`SequentialDiagnoser::run`] / [`SequentialDiagnoser::run_scripted`].
#[derive(Debug)]
pub struct SequentialDiagnoser<'e> {
    engine: &'e DiagnosticEngine,
    policy: StoppingPolicy,
    /// Workspace for current-belief propagations (base pass + diagnosis).
    base_ws: PropagationWorkspace,
    /// Workspace + distribution buffer for hypothetical VOI queries.
    scratch: VoiScratch,
    /// Accumulated evidence, kept in lockstep with `observation`.
    evidence: Evidence,
    /// Accumulated observation (drives `diagnose_with` and failing marks).
    observation: Observation,
    /// The latent blocks whose entropy the VOI kernel scores.
    latents: Vec<VarId>,
    /// Reused per-latent entropy buffer for the base pass.
    latent_entropy: Vec<f64>,
    /// Unapplied candidate measurements with their latest gains.
    candidates: Vec<ScoredCandidate>,
    /// How candidates are ranked (myopic / cost-weighted / lookahead).
    strategy: Strategy,
    /// Prices for tests, suite switches and probes.
    cost_model: CostModel,
    /// The expectimax evaluator, present iff `strategy` is lookahead.
    planner: Option<LookaheadPlanner>,
    /// Reused candidate-id buffer for planner calls.
    var_buf: Vec<VarId>,
}

impl<'e> SequentialDiagnoser<'e> {
    /// Builds a diagnoser over a compiled engine with every observable
    /// model variable as a candidate measurement.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidStoppingPolicy`] for malformed policies and
    /// propagates variable-lookup errors.
    pub fn new(engine: &'e DiagnosticEngine, policy: StoppingPolicy) -> Result<Self> {
        policy.validate()?;
        let model = engine.model();
        let latents: Vec<VarId> = model
            .circuit_model()
            .latents()
            .iter()
            .map(|name| model.var(name))
            .collect::<Result<_>>()?;
        let candidates: Vec<ScoredCandidate> = model
            .circuit_model()
            .observables()
            .iter()
            .map(|name| {
                Ok(ScoredCandidate {
                    name: name.to_string(),
                    var: model.var(name)?,
                    probe: false,
                    gain: 0.0,
                    cost: 0.0,
                    score: 0.0,
                })
            })
            .collect::<Result<_>>()?;
        let latent_capacity = latents.len();
        Ok(SequentialDiagnoser {
            base_ws: engine.make_workspace(),
            scratch: VoiScratch::new(engine),
            evidence: Evidence::new(),
            observation: Observation::new(),
            latents,
            latent_entropy: Vec::with_capacity(latent_capacity),
            candidates,
            strategy: Strategy::Myopic,
            cost_model: CostModel::unit(),
            planner: None,
            var_buf: Vec::new(),
            engine,
            policy,
        })
    }

    /// Replaces the candidate-selection strategy. Switching to
    /// [`Strategy::Lookahead`] (re)builds the expectimax planner with all
    /// buffers sized for the requested depth, so the decision loop stays
    /// allocation-free afterwards.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidStrategy`] for malformed strategies.
    pub fn set_strategy(&mut self, strategy: Strategy) -> Result<()> {
        strategy.validate()?;
        match strategy {
            Strategy::Lookahead { depth } => {
                if self.planner.as_ref().map(LookaheadPlanner::depth) != Some(depth) {
                    self.planner = Some(LookaheadPlanner::new(self.engine, depth)?);
                }
            }
            _ => self.planner = None,
        }
        self.strategy = strategy;
        Ok(())
    }

    /// The active candidate-selection strategy.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// Replaces the measurement cost model. The loop calls
    /// [`CostModel::note_measured`] on it after every applied
    /// measurement, keeping the current-suite tracking in lockstep with
    /// the bench.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidCostModel`] for malformed models.
    pub fn set_cost_model(&mut self, cost_model: CostModel) -> Result<()> {
        cost_model.validate()?;
        self.cost_model = cost_model;
        Ok(())
    }

    /// The active measurement cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost_model
    }

    /// Replaces the candidate measurement set. Accepts observables *and*
    /// latents (the latter turn the loop into adaptive step-two probe
    /// planning); names the observation already pins are rejected.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidObservation`] for unknown or
    /// already-observed names.
    pub fn set_candidates<I, N>(&mut self, names: I) -> Result<()>
    where
        I: IntoIterator<Item = N>,
        N: AsRef<str>,
    {
        let mut next = Vec::new();
        for name in names {
            let name = name.as_ref();
            let var = self
                .engine
                .model()
                .var(name)
                .map_err(|_| Error::InvalidObservation {
                    variable: name.into(),
                    reason: "not a model variable".into(),
                })?;
            if self.observation.state_of(name).is_some() {
                return Err(Error::InvalidObservation {
                    variable: name.into(),
                    reason: "already observed; cannot be a measurement candidate".into(),
                });
            }
            // A duplicate would leave a dangling twin after the first
            // copy is measured: `observe` removes one entry, and the
            // survivor's variable is then pinned by evidence, poisoning
            // every later scoring pass with an invalid hypothetical.
            if next.iter().any(|c: &ScoredCandidate| c.var == var) {
                return Err(Error::InvalidObservation {
                    variable: name.into(),
                    reason: "duplicate measurement candidate".into(),
                });
            }
            next.push(ScoredCandidate {
                name: name.to_string(),
                var,
                probe: self.latents.contains(&var),
                gain: 0.0,
                cost: 0.0,
                score: 0.0,
            });
        }
        self.candidates = next;
        Ok(())
    }

    /// The unapplied candidates with their gains from the latest
    /// [`SequentialDiagnoser::score_candidates`] pass (unsorted between
    /// passes).
    pub fn candidates(&self) -> &[ScoredCandidate] {
        &self.candidates
    }

    /// Everything observed so far.
    pub fn observation(&self) -> &Observation {
        &self.observation
    }

    /// The active stopping policy.
    pub fn policy(&self) -> &StoppingPolicy {
        &self.policy
    }

    /// Records a measurement: `variable = state`. If the variable was a
    /// pending candidate it stops being one.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidObservation`] for unknown variables or
    /// out-of-range states.
    pub fn observe(&mut self, variable: &str, state: usize) -> Result<()> {
        let var = self
            .engine
            .model()
            .var(variable)
            .map_err(|_| Error::InvalidObservation {
                variable: variable.into(),
                reason: "not a model variable".into(),
            })?;
        let card = self.engine.model().network().card(var);
        if state >= card {
            return Err(Error::InvalidObservation {
                variable: variable.into(),
                reason: format!("state {state} out of range {card}"),
            });
        }
        self.evidence.observe(var, state);
        self.observation.set(variable, state);
        if let Some(pos) = self.candidates.iter().position(|c| c.var == var) {
            self.candidates.swap_remove(pos);
        }
        Ok(())
    }

    /// Marks an already-recorded variable as having failed its ATE limits.
    pub fn mark_failing(&mut self, variable: &str) {
        self.observation.mark_failing(variable);
    }

    /// Seeds the diagnoser with a whole observation (controls plus any
    /// already-taken measurements), preserving its failing marks.
    ///
    /// # Errors
    ///
    /// Propagates [`SequentialDiagnoser::observe`] errors.
    pub fn observe_all(&mut self, observation: &Observation) -> Result<()> {
        for (name, state) in observation.iter() {
            self.observe(name, state)?;
        }
        for name in observation.failing() {
            self.mark_failing(name);
        }
        Ok(())
    }

    /// The diagnosis over everything observed so far (posterior update
    /// plus the §IV-B candidate deduction), through the reused workspace
    /// and the evidence set this diagnoser keeps in lockstep with its
    /// observation (no per-call evidence rebuild).
    ///
    /// # Errors
    ///
    /// Same as [`DiagnosticEngine::diagnose`].
    pub fn diagnosis(&mut self) -> Result<Diagnosis> {
        self.engine
            .diagnose_with_evidence(&mut self.base_ws, &self.observation, &self.evidence)
    }

    /// Scores every unapplied candidate under the active [`Strategy`] and
    /// [`CostModel`] and returns them sorted by selection score, best
    /// first (ties and NaNs ordered by `f64::total_cmp`, like probe
    /// ranking).
    ///
    /// The information value is the one-step expected gain over the
    /// latent blocks for [`Strategy::Myopic`] and
    /// [`Strategy::CostWeighted`], and the depth-bounded expectimax value
    /// for [`Strategy::Lookahead`]; the selection score is the raw value
    /// (myopic) or value-per-tester-second (the other two).
    ///
    /// This is the per-decision hot path: one base propagation plus up to
    /// `card` hypothetical propagations per candidate (times the outcome
    /// tree for lookahead), all through the compiled tree and the reused
    /// workspaces — **zero junction-tree compilations, zero heap
    /// allocations** once the diagnoser is warm.
    ///
    /// # Errors
    ///
    /// Propagates propagation errors (e.g. impossible evidence).
    pub fn score_candidates(&mut self) -> Result<&[ScoredCandidate]> {
        let Self {
            engine,
            base_ws,
            scratch,
            evidence,
            latents,
            latent_entropy,
            candidates,
            strategy,
            cost_model,
            planner,
            var_buf,
            ..
        } = self;
        if candidates.is_empty() {
            return Ok(&[]);
        }
        let jt = engine.jt();
        let net = engine.model().network();
        match *strategy {
            Strategy::Myopic | Strategy::CostWeighted => {
                let view = jt.propagate_in(base_ws, evidence).map_err(Error::Bbn)?;
                latent_entropy.clear();
                for &v in latents.iter() {
                    latent_entropy.push(view.posterior_entropy(v).map_err(Error::Bbn)?);
                }
                let total_entropy: f64 = latent_entropy.iter().sum();
                let VoiScratch { ws: hyp_ws, dist } = scratch;
                for slot in candidates.iter_mut() {
                    let own = latents
                        .iter()
                        .position(|&l| l == slot.var)
                        .map_or(0.0, |i| latent_entropy[i]);
                    let card = net.card(slot.var);
                    view.posterior_into(slot.var, &mut dist[..card])
                        .map_err(Error::Bbn)?;
                    slot.gain = voi::expected_gain(
                        jt,
                        hyp_ws,
                        evidence,
                        slot.var,
                        &dist[..card],
                        latents,
                        total_entropy - own,
                    )?;
                }
            }
            Strategy::Lookahead { .. } => {
                let planner = planner.as_mut().expect("set_strategy built the planner");
                var_buf.clear();
                var_buf.extend(candidates.iter().map(|c| c.var));
                let values = planner.values(engine, evidence, var_buf)?;
                for (slot, &value) in candidates.iter_mut().zip(values) {
                    slot.gain = value;
                }
            }
        }
        for slot in candidates.iter_mut() {
            slot.cost = cost_model.cost_of(&slot.name, slot.probe);
            slot.score = match *strategy {
                Strategy::Myopic => slot.gain,
                Strategy::CostWeighted | Strategy::Lookahead { .. } => slot.gain / slot.cost,
            };
        }
        candidates.sort_unstable_by(|a, b| b.score.total_cmp(&a.score));
        Ok(candidates)
    }

    /// Whether `diagnosis` isolates a fault under the active policy.
    fn isolated(&self, diagnosis: &Diagnosis) -> bool {
        diagnosis
            .candidates()
            .first()
            .is_some_and(|c| c.fault_mass >= self.policy.fault_mass_threshold)
    }

    /// Runs the closed loop: diagnose, stop or pick the best-scoring
    /// candidate under the active strategy, ask the `oracle` to measure
    /// it, absorb the answer, repeat. The oracle is handed the chosen
    /// variable's name and returns the binned state plus its limit
    /// verdict (see [`Measured`]); on the ATE this executes one
    /// [`abbd_ate::TestDef`] out of program order, in step two it is a
    /// physical probe.
    ///
    /// The gain floor compares [`StoppingPolicy::min_gain`] against the
    /// best *information value* among the candidates (not the best
    /// cost-normalised score): an expensive measurement that would still
    /// teach us something keeps the loop alive, it just gets deferred
    /// behind cheaper ones.
    ///
    /// # Errors
    ///
    /// Propagates diagnosis/propagation errors and whatever the oracle
    /// returns (conventionally [`Error::Oracle`]).
    pub fn run<F>(&mut self, oracle: F) -> Result<SequentialOutcome>
    where
        F: FnMut(&str) -> Result<Measured>,
    {
        self.run_inner(oracle, None)
    }

    /// [`SequentialDiagnoser::run`] capturing a full [`DecisionTrace`]
    /// alongside the outcome: every decision's complete candidate ranking
    /// (value, cost, selection score), the chosen measurement with the
    /// oracle's answer, and the posterior fault mass per latent block
    /// after absorbing it. The golden-trace conformance corpus serialises
    /// these traces to pin the whole adaptive stack down.
    ///
    /// # Errors
    ///
    /// Same as [`SequentialDiagnoser::run`].
    pub fn run_traced<F>(&mut self, oracle: F) -> Result<(SequentialOutcome, DecisionTrace)>
    where
        F: FnMut(&str) -> Result<Measured>,
    {
        let mut trace = DecisionTrace {
            strategy: self.strategy,
            steps: Vec::new(),
            stop: StopReason::Exhausted,
            final_fault_mass: Vec::new(),
            top_candidate: None,
        };
        let outcome = self.run_inner(oracle, Some(&mut trace))?;
        trace.stop = outcome.stop;
        trace.final_fault_mass = fault_mass_entries(&outcome.diagnosis);
        trace.top_candidate = outcome.diagnosis.top_candidate().map(str::to_string);
        Ok((outcome, trace))
    }

    fn run_inner<F>(
        &mut self,
        mut oracle: F,
        mut trace: Option<&mut DecisionTrace>,
    ) -> Result<SequentialOutcome>
    where
        F: FnMut(&str) -> Result<Measured>,
    {
        let mut applied = Vec::new();
        loop {
            let diagnosis = self.diagnosis()?;
            if let Some(trace) = trace.as_deref_mut() {
                if let Some(step) = trace.steps.last_mut() {
                    step.fault_mass = fault_mass_entries(&diagnosis);
                }
            }
            if self.isolated(&diagnosis) {
                return Ok(SequentialOutcome {
                    diagnosis,
                    applied,
                    stop: StopReason::Isolated,
                });
            }
            if applied.len() >= self.policy.max_steps {
                return Ok(SequentialOutcome {
                    diagnosis,
                    applied,
                    stop: StopReason::MaxSteps,
                });
            }
            let min_gain = self.policy.min_gain;
            let scored = self.score_candidates()?;
            let Some(best) = scored.first() else {
                return Ok(SequentialOutcome {
                    diagnosis,
                    applied,
                    stop: StopReason::Exhausted,
                });
            };
            let best_value = scored
                .iter()
                .map(ScoredCandidate::expected_information_gain)
                .fold(f64::NEG_INFINITY, f64::max);
            if best_value < min_gain {
                return Ok(SequentialOutcome {
                    diagnosis,
                    applied,
                    stop: StopReason::GainBelowThreshold,
                });
            }
            let (name, gain, cost) = (best.name.clone(), best.gain, best.cost);
            if let Some(trace) = trace.as_deref_mut() {
                trace.steps.push(TracedDecision {
                    scores: scored
                        .iter()
                        .map(|c| TracedScore {
                            variable: c.name.clone(),
                            gain: c.gain,
                            cost: c.cost,
                            score: c.score,
                        })
                        .collect(),
                    chosen: name.clone(),
                    state: 0,
                    failing: false,
                    fault_mass: Vec::new(),
                });
            }
            let measured = oracle(&name)?;
            self.observe(&name, measured.state)?;
            if measured.failing {
                self.mark_failing(&name);
            }
            self.cost_model.note_measured(&name);
            if let Some(trace) = trace.as_deref_mut() {
                let step = trace.steps.last_mut().expect("pushed above");
                step.state = measured.state;
                step.failing = measured.failing;
            }
            applied.push(AppliedMeasurement {
                variable: name,
                expected_information_gain: Some(gain),
                cost: Some(cost),
                state: measured.state,
                failing: measured.failing,
            });
        }
    }

    /// [`SequentialDiagnoser::run`] with the measurement order fixed in
    /// advance (the ATE's program order) instead of chosen by information
    /// gain — the baseline the adaptive loop is compared against. The same
    /// stopping policy applies between measurements (minus the gain floor,
    /// which only exists for scored runs); names already observed or
    /// absent from the candidate set are skipped.
    ///
    /// # Errors
    ///
    /// Same as [`SequentialDiagnoser::run`].
    pub fn run_scripted<F>(&mut self, order: &[&str], mut oracle: F) -> Result<SequentialOutcome>
    where
        F: FnMut(&str) -> Result<Measured>,
    {
        let mut applied = Vec::new();
        let mut next = order.iter();
        loop {
            let diagnosis = self.diagnosis()?;
            if self.isolated(&diagnosis) {
                return Ok(SequentialOutcome {
                    diagnosis,
                    applied,
                    stop: StopReason::Isolated,
                });
            }
            if applied.len() >= self.policy.max_steps {
                return Ok(SequentialOutcome {
                    diagnosis,
                    applied,
                    stop: StopReason::MaxSteps,
                });
            }
            let Some(name) = next.find(|n| self.candidates.iter().any(|c| c.name == **n)) else {
                return Ok(SequentialOutcome {
                    diagnosis,
                    applied,
                    stop: StopReason::Exhausted,
                });
            };
            let measured = oracle(name)?;
            self.observe(name, measured.state)?;
            if measured.failing {
                self.mark_failing(name);
            }
            self.cost_model.note_measured(name);
            applied.push(AppliedMeasurement {
                variable: (*name).to_string(),
                expected_information_gain: None,
                cost: None,
                state: measured.state,
                failing: measured.failing,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The shared pin/bias/load/aux fixture: out1 pins bias tightly,
    /// out2 is mushy, out3 only reflects aux (see [`crate::fixtures`]).
    fn engine() -> DiagnosticEngine {
        crate::fixtures::toy_sequential_engine()
    }

    /// A device where bias is dead: out1/out2 read 0, out3 reads 1.
    fn dead_bias_oracle(name: &str) -> Result<Measured> {
        Ok(match name {
            "out1" | "out2" => Measured::failing(0),
            "out3" => Measured::passing(1),
            other => {
                return Err(Error::Oracle {
                    variable: other.into(),
                    reason: "no such net on the bench".into(),
                })
            }
        })
    }

    #[test]
    fn policy_validation() {
        assert!(StoppingPolicy::default().validate().is_ok());
        assert!(StoppingPolicy::exhaustive().validate().is_ok());
        let bad = StoppingPolicy {
            fault_mass_threshold: 0.0,
            ..Default::default()
        };
        assert!(matches!(
            bad.validate(),
            Err(Error::InvalidStoppingPolicy(_))
        ));
        let bad = StoppingPolicy {
            min_gain: -1.0,
            ..Default::default()
        };
        assert!(matches!(
            SequentialDiagnoser::new(&engine(), bad),
            Err(Error::InvalidStoppingPolicy(_))
        ));
    }

    #[test]
    fn adaptive_loop_isolates_dead_bias_via_the_informative_output() {
        let eng = engine();
        let mut d = SequentialDiagnoser::new(&eng, StoppingPolicy::default()).unwrap();
        d.observe("pin", 1).unwrap();
        let outcome = d.run(dead_bias_oracle).unwrap();
        assert_eq!(outcome.stop, StopReason::Isolated);
        assert_eq!(outcome.diagnosis.top_candidate(), Some("bias"));
        // out1 mirrors bias almost perfectly, so the loop asks for it
        // first and needs nothing else.
        assert_eq!(outcome.applied[0].variable, "out1");
        assert!(outcome.tests_used() < 3, "{:?}", outcome.applied);
        assert!(outcome.applied[0].expected_information_gain.unwrap() > 0.0);
    }

    #[test]
    fn healthy_device_stops_on_gain_floor() {
        let eng = engine();
        let mut d = SequentialDiagnoser::new(
            &eng,
            StoppingPolicy {
                // Unreachable isolation: force the gain floor to fire.
                fault_mass_threshold: 1.0,
                max_steps: 32,
                min_gain: 0.3,
            },
        )
        .unwrap();
        d.observe("pin", 1).unwrap();
        let outcome = d
            .run(|name| {
                Ok(match name {
                    "out1" | "out2" | "out3" => Measured::passing(1),
                    _ => unreachable!(),
                })
            })
            .unwrap();
        assert_eq!(outcome.stop, StopReason::GainBelowThreshold);
        assert!(outcome.diagnosis.candidates().is_empty());
        // Healthy outputs stop carrying information quickly.
        assert!(outcome.tests_used() < 3, "{:?}", outcome.applied);
    }

    #[test]
    fn max_steps_bounds_the_loop() {
        let eng = engine();
        let mut d = SequentialDiagnoser::new(
            &eng,
            StoppingPolicy {
                fault_mass_threshold: 1.0,
                max_steps: 1,
                min_gain: 0.0,
            },
        )
        .unwrap();
        d.observe("pin", 1).unwrap();
        let outcome = d.run(dead_bias_oracle).unwrap();
        assert_eq!(outcome.stop, StopReason::MaxSteps);
        assert_eq!(outcome.tests_used(), 1);
    }

    #[test]
    fn exhaustive_run_reproduces_one_shot_diagnosis() {
        let eng = engine();
        let mut d = SequentialDiagnoser::new(&eng, StoppingPolicy::exhaustive()).unwrap();
        d.observe("pin", 1).unwrap();
        let outcome = d.run(dead_bias_oracle).unwrap();
        assert_eq!(outcome.stop, StopReason::Exhausted);
        assert_eq!(outcome.tests_used(), 3);

        let mut full = Observation::new();
        full.set("pin", 1)
            .set("out1", 0)
            .set("out2", 0)
            .set("out3", 1);
        full.mark_failing("out1").mark_failing("out2");
        let one_shot = eng.diagnose(&full).unwrap();
        assert_eq!(outcome.diagnosis.posteriors(), one_shot.posteriors());
        assert_eq!(outcome.diagnosis.fault_mass(), one_shot.fault_mass());
        assert_eq!(outcome.diagnosis.top_candidate(), one_shot.top_candidate());
    }

    #[test]
    fn scripted_run_follows_program_order() {
        let eng = engine();
        let mut d = SequentialDiagnoser::new(&eng, StoppingPolicy::exhaustive()).unwrap();
        d.observe("pin", 1).unwrap();
        let outcome = d
            .run_scripted(&["out3", "out2", "out1"], dead_bias_oracle)
            .unwrap();
        assert_eq!(outcome.stop, StopReason::Exhausted);
        let order: Vec<&str> = outcome
            .applied
            .iter()
            .map(|a| a.variable.as_str())
            .collect();
        assert_eq!(order, ["out3", "out2", "out1"]);
        assert!(outcome
            .applied
            .iter()
            .all(|a| a.expected_information_gain.is_none()));
    }

    #[test]
    fn adaptive_uses_no_more_tests_than_scripted_on_this_case() {
        let eng = engine();
        let policy = StoppingPolicy::default();
        let mut adaptive = SequentialDiagnoser::new(&eng, policy).unwrap();
        adaptive.observe("pin", 1).unwrap();
        let a = adaptive.run(dead_bias_oracle).unwrap();

        let mut fixed = SequentialDiagnoser::new(&eng, policy).unwrap();
        fixed.observe("pin", 1).unwrap();
        // Program order happens to lead with the least informative test.
        let f = fixed
            .run_scripted(&["out3", "out2", "out1"], dead_bias_oracle)
            .unwrap();
        assert!(
            a.tests_used() <= f.tests_used(),
            "adaptive {} > fixed {}",
            a.tests_used(),
            f.tests_used()
        );
    }

    #[test]
    fn candidate_management_and_errors() {
        let eng = engine();
        let mut d = SequentialDiagnoser::new(&eng, StoppingPolicy::default()).unwrap();
        assert_eq!(d.candidates().len(), 3);
        d.set_candidates(["out1", "aux"]).unwrap();
        assert_eq!(d.candidates().len(), 2);
        assert!(!d.candidates()[0].is_probe(), "out1 is an observable test");
        assert!(d.candidates()[1].is_probe(), "aux is a latent probe");
        assert!(matches!(
            d.set_candidates(["ghost"]),
            Err(Error::InvalidObservation { .. })
        ));
        assert!(
            matches!(
                d.set_candidates(["out1", "out1"]),
                Err(Error::InvalidObservation { .. })
            ),
            "duplicate candidates must be rejected up front"
        );
        d.observe("out1", 1).unwrap();
        assert_eq!(d.candidates().len(), 1, "observing a candidate consumes it");
        assert!(matches!(
            d.set_candidates(["out1"]),
            Err(Error::InvalidObservation { .. })
        ));
        assert!(matches!(
            d.observe("out1", 9),
            Err(Error::InvalidObservation { .. })
        ));
        assert!(matches!(
            d.observe("ghost", 0),
            Err(Error::InvalidObservation { .. })
        ));
        // Latent candidates are allowed (step-two probe planning).
        let scored = d.score_candidates().unwrap();
        assert_eq!(scored.len(), 1);
        assert_eq!(scored[0].name(), "aux");
        assert!(scored[0].expected_information_gain() >= 0.0);
    }

    #[test]
    fn oracle_failures_propagate() {
        let eng = engine();
        let mut d = SequentialDiagnoser::new(&eng, StoppingPolicy::default()).unwrap();
        d.observe("pin", 1).unwrap();
        let err = d.run(|name| {
            Err(Error::Oracle {
                variable: name.into(),
                reason: "bench on fire".into(),
            })
        });
        assert!(matches!(err, Err(Error::Oracle { .. })));
    }

    #[test]
    fn seeding_from_observation_preserves_failing_marks() {
        let eng = engine();
        let mut seed = Observation::new();
        seed.set("pin", 1).set("out1", 0);
        seed.mark_failing("out1");
        let mut d = SequentialDiagnoser::new(&eng, StoppingPolicy::default()).unwrap();
        d.observe_all(&seed).unwrap();
        assert_eq!(d.observation().failing(), &["out1".to_string()]);
        assert_eq!(d.candidates().len(), 2);
        let diag = d.diagnosis().unwrap();
        assert_eq!(diag.top_candidate(), Some("bias"));
    }

    /// The tentpole regression: the steady-state decision loop never
    /// compiles a junction tree.
    #[test]
    fn steady_state_performs_zero_compilations() {
        let eng = engine();
        let mut d = SequentialDiagnoser::new(&eng, StoppingPolicy::exhaustive()).unwrap();
        d.observe("pin", 1).unwrap();
        d.score_candidates().unwrap(); // warm-up
        let before = abbd_bbn::jointree_compile_count();
        let outcome = d.run(dead_bias_oracle).unwrap();
        assert_eq!(outcome.stop, StopReason::Exhausted);
        assert_eq!(
            abbd_bbn::jointree_compile_count(),
            before,
            "sequential decisions must reuse the compiled tree"
        );
    }
}
