//! # abbd-core — block-level Bayesian diagnosis of analogue circuits
//!
//! The primary contribution of *Block-Level Bayesian Diagnosis of Analogue
//! Electronic Circuits* (DATE 2010), reimplemented as a library:
//!
//! 1. **Structure modelling** — [`CircuitModel`]: model variables with
//!    functional types and voltage state bands (from
//!    [`abbd_dlog2bbn::ModelSpec`]) plus the cause–effect dependency DAG.
//! 2. **Parameter modelling** — [`ModelBuilder`]: the product expert's CPT
//!    estimates ([`ExpertKnowledge`]) fine-tuned on ATE-derived cases with
//!    EM or conjugate gradient ([`LearnAlgorithm`]), yielding a
//!    [`DiagnosticModel`].
//! 3. **Diagnostic mode** — [`DiagnosticEngine`]: enter the controllable
//!    and observable block states of a failing device as an
//!    [`Observation`], read back posterior state probabilities for every
//!    block, and receive the ranked failing-block [`Candidate`]s produced
//!    by the automated §IV-B deduction ([`DeductionPolicy`]).
//!
//! Reports in the paper's Table VII layout come from [`render_state_table`]
//! and [`render_candidates`].
//!
//! The serving surface is the [`session`] module: compile once into a
//! [`CompiledModel`] (immutable, `Arc`-shareable, `Send + Sync`), then
//! open any number of concurrent [`DiagnosisSession`]s — each owning only
//! its evidence, workspaces and cost ledger. A session speaks one
//! [`Action`] vocabulary for specification tests *and* step-two physical
//! probes: [`DiagnosisSession::rank_actions`] scores the mixed candidate
//! set under a [`Strategy`] — raw information gain, gain per
//! [`CostModel`] tester-second, or the depth-bounded expectimax of
//! [`LookaheadPlanner`] — and [`DiagnosisSession::run`] closes the loop
//! against an [`ActionExecutor`], stopping once a [`StoppingPolicy`]
//! condition fires, all through one compiled junction tree and reusable
//! propagation workspaces. [`SessionRequest`] / [`SessionReport`] mirror
//! one decision round over serde for a service boundary. The legacy
//! entry points (`SequentialDiagnoser`, `rank_probes`) remain as thin
//! deprecated wrappers; the [`session`] docs carry the migration table.
//!
//! ## Hierarchical diagnosis
//!
//! For boards an order of magnitude bigger than one block, the
//! [`hierarchy`] module compiles an abstraction tree over a single fitted
//! [`DiagnosticModel`]: [`HierarchicalModel`] holds an abstract
//! board-level root (interface rails, one binary pseudo-latent per block,
//! the blocks' summary observables) plus one lazily compiled sub-model
//! per block, extracted with [`abbd_bbn::extract_submodel`] so block
//! posteriors given full interface evidence match the flat model exactly.
//! [`HierarchicalSession`] drives the two-phase loop through the same
//! [`Action`] vocabulary: isolate a suspect block on the root, descend
//! once its fault mass crosses [`HierarchicalModel::descend_threshold`],
//! lift the board evidence down, and finish block-locally. The
//! [`hierarchy`] module docs spell out the extraction contract, the
//! interface semantics and the descent policy.
//!
//! ## Model lifecycle
//!
//! The [`fleet`] module closes the learning loop at serving time: a
//! [`TraceAggregator`] folds completed sessions into per-model
//! sufficient statistics, a background [`Refitter`] re-fits CPTs and
//! measurement prices from them, and a [`ModelLifecycle`] gates each
//! candidate on a [`conformance`] reference corpus plus a recent-trace
//! holdout before atomically hot-swapping the default version —
//! in-flight sessions keep their pinned compile, and any retained
//! version can be reactivated ([`ModelLifecycle::activate`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
#[deny(missing_docs)]
pub mod conformance;
mod deduce;
mod engine;
mod error;
mod explain;
#[doc(hidden)]
pub mod fixtures;
#[deny(missing_docs)]
pub mod fleet;
#[deny(missing_docs)]
pub mod hierarchy;
mod model;
mod planner;
mod probe;
mod report;
mod sequential;
#[deny(missing_docs)]
pub mod session;
mod voi;

pub use builder::{DiagnosticModel, ExpertKnowledge, LearnAlgorithm, LearnSummary, ModelBuilder};
pub use conformance::{GoldenCorpus, ReplayCase, ReplayMismatch, ReplayOutcome};
pub use deduce::{
    ancestor_fault_probability, conditional_fault_expectation, deduce_candidates, Candidate,
    DeductionPolicy, HealthClass,
};
pub use engine::{Diagnosis, DiagnosticEngine, Observation};
pub use error::{Error, Result};
pub use explain::FindingImpact;
pub use fleet::{
    compile_candidate, AggregateSnapshot, GateRejection, ModelLifecycle, RefitPolicy, RefitReport,
    Refitter, TraceAggregator, VersionInfo,
};
pub use hierarchy::{
    BlockSpec, HierarchicalModel, HierarchicalSession, HierarchicalTrace, DEFAULT_DESCEND_THRESHOLD,
};
pub use model::CircuitModel;
pub use planner::{
    CostModel, LookaheadPlanner, Strategy, DEFAULT_LOOKAHEAD_DISCOUNT, MAX_LOOKAHEAD_DEPTH,
};
pub use probe::ProbeSuggestion;
pub use report::{render_candidates, render_state_table};
#[allow(deprecated)]
pub use sequential::{Measured, ScoredCandidate, SequentialDiagnoser};
pub use session::{
    Action, ActionExecutor, AppliedMeasurement, CompiledModel, DecisionTrace, DiagnosisSession,
    Outcome, Ranked, ScoredAction, SequentialOutcome, SessionReport, SessionRequest, StopReason,
    StoppingPolicy, TracedDecision, TracedScore,
};
