//! # abbd-core — block-level Bayesian diagnosis of analogue circuits
//!
//! The primary contribution of *Block-Level Bayesian Diagnosis of Analogue
//! Electronic Circuits* (DATE 2010), reimplemented as a library:
//!
//! 1. **Structure modelling** — [`CircuitModel`]: model variables with
//!    functional types and voltage state bands (from
//!    [`abbd_dlog2bbn::ModelSpec`]) plus the cause–effect dependency DAG.
//! 2. **Parameter modelling** — [`ModelBuilder`]: the product expert's CPT
//!    estimates ([`ExpertKnowledge`]) fine-tuned on ATE-derived cases with
//!    EM or conjugate gradient ([`LearnAlgorithm`]), yielding a
//!    [`DiagnosticModel`].
//! 3. **Diagnostic mode** — [`DiagnosticEngine`]: enter the controllable
//!    and observable block states of a failing device as an
//!    [`Observation`], read back posterior state probabilities for every
//!    block, and receive the ranked failing-block [`Candidate`]s produced
//!    by the automated §IV-B deduction ([`DeductionPolicy`]).
//!
//! Reports in the paper's Table VII layout come from [`render_state_table`]
//! and [`render_candidates`]. When diagnosis leaves several candidates,
//! [`DiagnosticEngine::rank_probes`] orders the internal blocks by value
//! of information for the paper's step two (physical probing), and
//! [`SequentialDiagnoser`] closes the loop: pick the best unapplied test
//! under a [`Strategy`] — raw information gain, gain per [`CostModel`]
//! tester-second, or the depth-bounded expectimax of
//! [`LookaheadPlanner`] — execute it, re-diagnose, and stop once a
//! [`StoppingPolicy`] condition fires — all through one compiled junction
//! tree and reusable propagation workspaces.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod deduce;
mod engine;
mod error;
mod explain;
#[doc(hidden)]
pub mod fixtures;
mod model;
mod planner;
mod probe;
mod report;
mod sequential;
mod voi;

pub use builder::{DiagnosticModel, ExpertKnowledge, LearnAlgorithm, LearnSummary, ModelBuilder};
pub use deduce::{
    ancestor_fault_probability, conditional_fault_expectation, deduce_candidates, Candidate,
    DeductionPolicy, HealthClass,
};
pub use engine::{Diagnosis, DiagnosticEngine, Observation};
pub use error::{Error, Result};
pub use explain::FindingImpact;
pub use model::CircuitModel;
pub use planner::{CostModel, LookaheadPlanner, Strategy, MAX_LOOKAHEAD_DEPTH};
pub use probe::ProbeSuggestion;
pub use report::{render_candidates, render_state_table};
pub use sequential::{
    AppliedMeasurement, DecisionTrace, Measured, ScoredCandidate, SequentialDiagnoser,
    SequentialOutcome, StopReason, StoppingPolicy, TracedDecision, TracedScore,
};
