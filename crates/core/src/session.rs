//! The unified diagnosis session API: one shared compiled model, one
//! `Action` vocabulary for specification tests and physical probes.
//!
//! The paper's workflow is a single loop — observe ATE results, update
//! the block posteriors, pick the next measurement — but the crate's
//! historical surface split it across four parallel entry points
//! ([`crate::DiagnosticEngine::diagnose`], `SequentialDiagnoser`,
//! `DiagnosticEngine::rank_probes` and [`LookaheadPlanner`]), none of
//! which let concurrent callers share a compiled model. This module
//! restructures the API around two types:
//!
//! * [`CompiledModel`] — the immutable compilation artifact (fitted
//!   network, junction-tree schedule, deduction policy, latent/observable
//!   classification). Compiled **once**, wrapped in an [`Arc`], and served
//!   to any number of concurrent sessions; it is `Send + Sync` and
//!   cloning the handle never recompiles (pinned by the concurrency
//!   tests via [`abbd_bbn::jointree_compile_count`]).
//! * [`DiagnosisSession`] — one device under diagnosis. It owns only its
//!   evidence, reusable propagation workspaces and the cost ledger, and
//!   speaks a single vocabulary: [`Action`] (test *or* probe),
//!   [`Outcome`], [`Ranked`]. The candidate set may freely mix
//!   specification tests and step-two physical probes, so "measure
//!   `reg4` or probe `hcbg` next?" is *one* decision, not two phases.
//!
//! # Migration from the legacy entry points
//!
//! | old entry point | new call |
//! |-----------------|----------|
//! | `DiagnosticEngine::new(model)` | `CompiledModel::compile(model)?.shared()` |
//! | `DiagnosticEngine::diagnose(&obs)` | seed with [`DiagnosisSession::observe_all`], then [`DiagnosisSession::diagnose`] |
//! | `SequentialDiagnoser::new(&engine, policy)` | [`DiagnosisSession::new`]`(compiled, policy)` |
//! | `SequentialDiagnoser::run(oracle)` | [`DiagnosisSession::run`] with an [`ActionExecutor`] |
//! | `SequentialDiagnoser::score_candidates()` | [`DiagnosisSession::rank_actions`] |
//! | `DiagnosticEngine::rank_probes(&obs)` | [`DiagnosisSession::set_actions`] with [`Action::Probe`] candidates, then [`DiagnosisSession::rank_actions`] |
//! | `LookaheadPlanner::values(...)` | [`DiagnosisSession::set_strategy`]`(Strategy::Lookahead { depth })`, then [`DiagnosisSession::rank_actions`] |
//! | `Measured` | [`Outcome`] |
//!
//! The legacy types still exist as thin `#[deprecated]` wrappers over
//! this module, so existing code keeps compiling (and the golden-trace
//! corpus replays byte-for-byte through either surface).
//!
//! # Service boundary
//!
//! [`SessionRequest`] / [`SessionReport`] are serde mirrors of one
//! decision round — everything a stateless diagnosis service needs to
//! accept a device's observations and answer with posteriors, fail
//! candidates and the ranked next actions. [`CompiledModel::serve`] is
//! the one-call binding.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), abbd_core::Error> {
//! use abbd_core::{Action, DiagnosisSession, Outcome, StoppingPolicy};
//!
//! let compiled = abbd_core::fixtures::toy_compiled_model();
//! let mut session = DiagnosisSession::new(compiled, StoppingPolicy::default())?;
//! session.observe("pin", 1)?;
//! // Mixed candidates: two electrical tests and one physical probe.
//! session.set_actions([
//!     Action::test("out1"),
//!     Action::test("out2"),
//!     Action::probe("aux"),
//! ])?;
//! while let Some(next) = session.next_action()? {
//!     let outcome = match next.action.target() {
//!         "out1" | "out2" => Outcome::failing(0),
//!         _ => Outcome::passing(1),
//!     };
//!     session.apply(&next.action, outcome)?;
//! }
//! assert_eq!(session.diagnose()?.top_candidate(), Some("bias"));
//! # Ok(())
//! # }
//! ```

use crate::builder::DiagnosticModel;
use crate::deduce::{deduce_candidates, Candidate, DeductionPolicy, HealthClass};
use crate::engine::{Diagnosis, Observation};
use crate::error::{Error, Result};
use crate::planner::{CostModel, LookaheadPlanner, Strategy};
use crate::voi::{self, VoiScratch};
use abbd_bbn::{Evidence, JunctionTree, PropagationWorkspace, VarId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// One measurement the diagnosis loop can take next: an electrical
/// specification test on an observable variable, or a step-two physical
/// probe (FIB/SEM) of an internal latent block.
///
/// The two kinds share one ranking and one execution path — the unified
/// candidate set is what lets the planner interleave a decisive probe
/// between two cheap tests when that is the better plan.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Action {
    /// Execute the specification test that measures this observable
    /// model variable.
    Test(String),
    /// Physically probe this internal (latent) block.
    Probe(String),
}

impl Action {
    /// A test action on an observable variable.
    pub fn test(target: impl Into<String>) -> Self {
        Action::Test(target.into())
    }

    /// A probe action on a latent block.
    pub fn probe(target: impl Into<String>) -> Self {
        Action::Probe(target.into())
    }

    /// The model variable the action measures.
    pub fn target(&self) -> &str {
        match self {
            Action::Test(name) | Action::Probe(name) => name,
        }
    }

    /// `true` for [`Action::Probe`].
    pub fn is_probe(&self) -> bool {
        matches!(self, Action::Probe(_))
    }
}

impl std::fmt::Display for Action {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Action::Test(name) => write!(f, "test {name}"),
            Action::Probe(name) => write!(f, "probe {name}"),
        }
    }
}

/// The answer a measurement returns for one executed action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Outcome {
    /// The observed (binned) state of the measured variable.
    pub state: usize,
    /// Whether the raw measurement failed its ATE limits — failing
    /// observables become self-candidates when nothing upstream explains
    /// them, exactly as in [`Observation::mark_failing`].
    pub failing: bool,
}

impl Outcome {
    /// A passing measurement that binned into `state`.
    pub fn passing(state: usize) -> Self {
        Outcome {
            state,
            failing: false,
        }
    }

    /// A limit-violating measurement that binned into `state`.
    pub fn failing(state: usize) -> Self {
        Outcome {
            state,
            failing: true,
        }
    }
}

/// An item of a ranked recommendation: the action plus the scores that
/// ranked it. This is the serde-friendly projection of a scoring pass —
/// [`ScoredAction`] is the in-place zero-allocation storage behind it.
#[derive(Debug, Clone, PartialEq)]
pub struct Ranked<A> {
    /// The recommended action.
    pub action: A,
    /// Its information value (nats): one-step expected gain under
    /// [`Strategy::Myopic`] / [`Strategy::CostWeighted`], the expectimax
    /// value under [`Strategy::Lookahead`].
    pub gain: f64,
    /// Its [`CostModel`] cost at decision time (tester-seconds).
    pub cost: f64,
    /// The strategy-adjusted selection score it was ranked by.
    pub score: f64,
}

// The serde shim's derive rejects generics, so `Ranked<A>` carries
// hand-written impls (the data model is four fields, nothing subtle).
impl<A: Serialize> Serialize for Ranked<A> {
    fn to_value(&self) -> serde::Value {
        serde::Value::Obj(vec![
            ("action".to_string(), self.action.to_value()),
            ("gain".to_string(), self.gain.to_value()),
            ("cost".to_string(), self.cost.to_value()),
            ("score".to_string(), self.score.to_value()),
        ])
    }

    fn write_json(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(b"{\"action\":");
        self.action.write_json(out);
        out.extend_from_slice(b",\"gain\":");
        self.gain.write_json(out);
        out.extend_from_slice(b",\"cost\":");
        self.cost.write_json(out);
        out.extend_from_slice(b",\"score\":");
        self.score.write_json(out);
        out.push(b'}');
    }

    fn write_binary(&self, out: &mut Vec<u8>) {
        serde::binary::write_obj(4, out);
        serde::binary::write_key("action", out);
        self.action.write_binary(out);
        serde::binary::write_key("gain", out);
        self.gain.write_binary(out);
        serde::binary::write_key("cost", out);
        self.cost.write_binary(out);
        serde::binary::write_key("score", out);
        self.score.write_binary(out);
    }
}

impl<A: Deserialize> Deserialize for Ranked<A> {
    fn from_value(value: &serde::Value) -> std::result::Result<Self, serde::DeError> {
        let entries = value
            .as_obj()
            .ok_or_else(|| serde::DeError::expected("object", "Ranked"))?;
        let field = |name: &str| {
            serde::obj_get(entries, name).ok_or_else(|| serde::DeError::missing(name, "Ranked"))
        };
        Ok(Ranked {
            action: Deserialize::from_value(field("action")?)?,
            gain: Deserialize::from_value(field("gain")?)?,
            cost: Deserialize::from_value(field("cost")?)?,
            score: Deserialize::from_value(field("score")?)?,
        })
    }

    fn read_from<'de, R: serde::Reader<'de>>(
        reader: &mut R,
    ) -> std::result::Result<Self, serde::DeError> {
        reader.begin_object()?;
        let mut action = None;
        let mut gain = None;
        let mut cost = None;
        let mut score = None;
        while let Some(key) = reader.object_key()? {
            match &*key {
                "action" if action.is_none() => action = Some(A::read_from(reader)?),
                "gain" if gain.is_none() => gain = Some(f64::read_from(reader)?),
                "cost" if cost.is_none() => cost = Some(f64::read_from(reader)?),
                "score" if score.is_none() => score = Some(f64::read_from(reader)?),
                _ => reader.skip_value()?,
            }
        }
        let missing = |name| serde::DeError::missing(name, "Ranked");
        Ok(Ranked {
            action: action.ok_or_else(|| missing("action"))?,
            gain: gain.ok_or_else(|| missing("gain"))?,
            cost: cost.ok_or_else(|| missing("cost"))?,
            score: score.ok_or_else(|| missing("score"))?,
        })
    }
}

/// One unapplied candidate action with its latest scores — the
/// persistent, allocation-free storage [`DiagnosisSession::rank_actions`]
/// sorts in place. Project into the serde vocabulary with
/// [`ScoredAction::to_ranked`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredAction {
    action: Action,
    var: VarId,
    probe: bool,
    gain: f64,
    cost: f64,
    score: f64,
}

impl ScoredAction {
    /// The candidate action.
    pub fn action(&self) -> &Action {
        &self.action
    }

    /// The candidate variable's name (the action's target).
    pub fn name(&self) -> &str {
        self.action.target()
    }

    /// `true` when the candidate is a step-two physical probe of a
    /// latent block, priced at [`CostModel`]'s probe cost rather than an
    /// ordinary specification test.
    pub fn is_probe(&self) -> bool {
        self.probe
    }

    /// The candidate's information value (nats) from the latest scoring
    /// pass: the one-step expected information gain under
    /// [`Strategy::Myopic`] / [`Strategy::CostWeighted`], the expectimax
    /// value `V_depth` under [`Strategy::Lookahead`].
    pub fn expected_information_gain(&self) -> f64 {
        self.gain
    }

    /// The [`CostModel`] cost of taking this measurement now
    /// (tester-seconds).
    pub fn cost(&self) -> f64 {
        self.cost
    }

    /// The strategy-adjusted selection score the candidates are ranked
    /// by: the raw value for [`Strategy::Myopic`], value-per-cost
    /// otherwise.
    pub fn score(&self) -> f64 {
        self.score
    }

    /// Projects into the serde-friendly [`Ranked`] vocabulary (clones the
    /// action name — use outside the zero-allocation scoring loop).
    pub fn to_ranked(&self) -> Ranked<Action> {
        Ranked {
            action: self.action.clone(),
            gain: self.gain,
            cost: self.cost,
            score: self.score,
        }
    }
}

/// Executes chosen actions against a real or simulated bench: the
/// adapter a [`DiagnosisSession`] closed loop drives. On an ATE this runs
/// one `abbd_ate::TestDef` out of program order for [`Action::Test`] and
/// reads an internal net for [`Action::Probe`]; in tests it is usually a
/// closure answering from a table.
///
/// Any `FnMut(&Action) -> Result<Outcome>` closure is an executor.
pub trait ActionExecutor {
    /// Executes one action, returning the binned state and limit verdict.
    ///
    /// # Errors
    ///
    /// Conventionally [`Error::Oracle`] when the bench cannot perform
    /// the measurement.
    fn execute(&mut self, action: &Action) -> Result<Outcome>;
}

impl<F> ActionExecutor for F
where
    F: FnMut(&Action) -> Result<Outcome>,
{
    fn execute(&mut self, action: &Action) -> Result<Outcome> {
        self(action)
    }
}

/// When the closed loop stops.
///
/// Thresholds compose: the loop keeps measuring while *none* of the stop
/// conditions hold, so a tight `fault_mass_threshold` with a loose
/// `min_gain` behaves like pure isolation-driven testing, while
/// `max_steps` bounds worst-case tester time regardless.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StoppingPolicy {
    /// Stop once the top fail candidate's fault mass reaches this level
    /// (the block is considered isolated). Must lie in `(0, 1]`; `1.0`
    /// effectively disables isolation stopping (posterior mass on a
    /// discrete fault never quite reaches certainty), which is how the
    /// equivalence tests force the loop to exhaust every measurement.
    pub fault_mass_threshold: f64,
    /// Hard ceiling on applied measurements (tester-time budget),
    /// counted over the session's whole ledger.
    pub max_steps: usize,
    /// Stop when the best candidate's expected information gain (nats)
    /// drops below this value — measuring further would cost tester time
    /// without telling us anything. `0.0` disables the check (gains are
    /// clamped non-negative).
    pub min_gain: f64,
}

impl StoppingPolicy {
    /// Checks the thresholds are mutually sane.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidStoppingPolicy`] when the fault-mass
    /// threshold leaves `(0, 1]` or `min_gain` is negative/non-finite.
    pub fn validate(&self) -> Result<()> {
        if !(self.fault_mass_threshold > 0.0 && self.fault_mass_threshold <= 1.0) {
            return Err(Error::InvalidStoppingPolicy(format!(
                "fault_mass_threshold {} outside (0, 1]",
                self.fault_mass_threshold
            )));
        }
        if !self.min_gain.is_finite() || self.min_gain < 0.0 {
            return Err(Error::InvalidStoppingPolicy(format!(
                "min_gain {} must be finite and non-negative",
                self.min_gain
            )));
        }
        Ok(())
    }

    /// A policy that never stops early: threshold `1.0`, no gain floor, a
    /// practically unbounded step budget. [`DiagnosisSession::run`] under
    /// this policy applies every candidate measurement, which makes the
    /// final diagnosis equal the one-shot [`DiagnosticEngine::diagnose`]
    /// over the full observation (the equivalence the property tests pin).
    ///
    /// [`DiagnosticEngine::diagnose`]: crate::DiagnosticEngine::diagnose
    pub fn exhaustive() -> Self {
        StoppingPolicy {
            fault_mass_threshold: 1.0,
            max_steps: usize::MAX,
            min_gain: 0.0,
        }
    }
}

impl Default for StoppingPolicy {
    /// Isolation at 90% fault mass, at most 32 measurements, and a 1 mnat
    /// gain floor (below that the remaining tests are spec filler, not
    /// diagnosis).
    fn default() -> Self {
        StoppingPolicy {
            fault_mass_threshold: 0.9,
            max_steps: 32,
            min_gain: 1e-3,
        }
    }
}

/// Why a closed loop ([`DiagnosisSession::run`] or the stepping
/// [`DiagnosisSession::next_action`]) ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StopReason {
    /// The top fail candidate crossed the fault-mass threshold.
    Isolated,
    /// The measurement budget ran out.
    MaxSteps,
    /// The best remaining measurement's expected gain fell below
    /// [`StoppingPolicy::min_gain`].
    GainBelowThreshold,
    /// Every candidate measurement has been applied.
    Exhausted,
}

/// One applied measurement in a session's ledger, in execution order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppliedMeasurement {
    /// The measured model variable.
    pub variable: String,
    /// The expected information gain that made the loop choose it (the
    /// strategy's value for lookahead runs — see
    /// [`ScoredAction::expected_information_gain`]). `None` for scripted
    /// (fixed-order) or manually applied measurements, which never score.
    pub expected_information_gain: Option<f64>,
    /// The [`CostModel`] cost charged for the measurement at selection
    /// time. `None` for scripted or manually applied measurements.
    pub cost: Option<f64>,
    /// The state the measurement reported.
    pub state: usize,
    /// Whether the measurement was flagged as limit-failing.
    pub failing: bool,
}

/// The result of a closed-loop run: the final diagnosis, the measurements
/// taken (in order) and why the loop stopped.
#[derive(Debug, Clone, PartialEq)]
pub struct SequentialOutcome {
    /// The diagnosis over everything observed when the loop stopped.
    pub diagnosis: Diagnosis,
    /// Applied measurements, in execution order.
    pub applied: Vec<AppliedMeasurement>,
    /// Why the loop stopped.
    pub stop: StopReason,
}

impl SequentialOutcome {
    /// Number of measurements the loop spent.
    pub fn tests_used(&self) -> usize {
        self.applied.len()
    }

    /// Total [`CostModel`] tester-seconds the loop's measurements cost
    /// (scripted measurements, which carry no cost, contribute zero).
    pub fn tester_seconds(&self) -> f64 {
        self.applied.iter().filter_map(|a| a.cost).sum()
    }
}

/// One candidate's entry in a traced decision's ranking.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TracedScore {
    /// The candidate variable.
    pub variable: String,
    /// Its information value (see
    /// [`ScoredAction::expected_information_gain`]).
    pub gain: f64,
    /// Its [`CostModel`] cost at decision time.
    pub cost: f64,
    /// Its strategy-adjusted selection score.
    pub score: f64,
}

/// One decision of a traced closed-loop run: the full candidate ranking,
/// what was chosen, what the measurement answered, and the posterior
/// fault mass per latent block after absorbing the answer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TracedDecision {
    /// Every unapplied candidate with its scores, best first.
    pub scores: Vec<TracedScore>,
    /// The chosen (best-scoring) candidate.
    pub chosen: String,
    /// The state the measurement reported.
    pub state: usize,
    /// Whether the measurement was flagged as limit-failing.
    pub failing: bool,
    /// `(latent, posterior fault mass)` after absorbing the answer, in
    /// model order.
    pub fault_mass: Vec<(String, f64)>,
}

/// The complete decision record of one traced closed loop — the
/// executable evidence the golden-trace conformance corpus replays. See
/// [`DiagnosisSession::run_traced`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTrace {
    /// The strategy the run selected candidates with.
    pub strategy: Strategy,
    /// Every decision, in execution order.
    pub steps: Vec<TracedDecision>,
    /// Why the loop stopped.
    pub stop: StopReason,
    /// `(latent, posterior fault mass)` at the final diagnosis.
    pub final_fault_mass: Vec<(String, f64)>,
    /// The final diagnosis's top fail candidate, if any.
    pub top_candidate: Option<String>,
}

/// The diagnosis's per-latent fault mass as ordered entries (the
/// `BTreeMap` iterates in name order, which keeps traces deterministic).
pub(crate) fn fault_mass_entries(diagnosis: &Diagnosis) -> Vec<(String, f64)> {
    diagnosis
        .fault_mass()
        .iter()
        .map(|(name, &mass)| (name.clone(), mass))
        .collect()
}

/// The immutable compilation artifact behind every diagnosis: the fitted
/// model, its compiled junction tree, the deduction policy, and the
/// latent/observable classification — everything that is *per model*
/// rather than *per device*.
///
/// Compile once with [`CompiledModel::compile`], share with
/// [`CompiledModel::shared`], and open any number of concurrent
/// [`DiagnosisSession`]s on the [`Arc`]. The type is `Send + Sync` and
/// every session propagates through the same compiled schedule, so the
/// junction-tree compile count stays at one no matter how many threads
/// serve from it (the concurrency tests pin exactly that).
#[derive(Debug, Clone)]
pub struct CompiledModel {
    model: DiagnosticModel,
    jt: JunctionTree,
    policy: DeductionPolicy,
    /// Latent blocks, in spec order: the probe targets and the entropy
    /// scoring set.
    latents: Vec<(String, VarId)>,
    /// Observable variables, in spec order: the default test candidates.
    observables: Vec<(String, VarId)>,
}

impl CompiledModel {
    /// Compiles a fitted model into the shareable serving artifact with
    /// the default deduction policy. This is the one expensive structural
    /// step (junction-tree triangulation and schedule compilation);
    /// everything downstream reuses it.
    ///
    /// # Errors
    ///
    /// Propagates junction-tree compilation and variable-lookup errors.
    pub fn compile(model: DiagnosticModel) -> Result<Self> {
        let jt = JunctionTree::compile(model.network()).map_err(Error::Bbn)?;
        let latents: Vec<(String, VarId)> = model
            .circuit_model()
            .latents()
            .iter()
            .map(|name| Ok((name.to_string(), model.var(name)?)))
            .collect::<Result<_>>()?;
        let observables: Vec<(String, VarId)> = model
            .circuit_model()
            .observables()
            .iter()
            .map(|name| Ok((name.to_string(), model.var(name)?)))
            .collect::<Result<_>>()?;
        Ok(CompiledModel {
            model,
            jt,
            policy: DeductionPolicy::default(),
            latents,
            observables,
        })
    }

    /// Replaces the deduction policy (builder style, before sharing).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidPolicy`] for malformed thresholds.
    pub fn with_policy(mut self, policy: DeductionPolicy) -> Result<Self> {
        policy.validate()?;
        self.policy = policy;
        Ok(self)
    }

    /// Wraps the artifact for concurrent sharing.
    pub fn shared(self) -> Arc<Self> {
        Arc::new(self)
    }

    /// Replaces the policy in place (crate-internal: the engine facade's
    /// `with_policy` uses this through `Arc::make_mut`).
    pub(crate) fn set_policy(&mut self, policy: DeductionPolicy) {
        self.policy = policy;
    }

    /// The fitted model behind the compilation.
    pub fn model(&self) -> &DiagnosticModel {
        &self.model
    }

    /// The active deduction policy.
    pub fn policy(&self) -> &DeductionPolicy {
        &self.policy
    }

    /// The compiled junction tree every session propagates through.
    pub(crate) fn jt(&self) -> &JunctionTree {
        &self.jt
    }

    /// The latent blocks `(name, id)`, in spec order.
    pub(crate) fn latent_vars(&self) -> &[(String, VarId)] {
        &self.latents
    }

    /// The observable variables `(name, id)`, in spec order.
    pub(crate) fn observable_vars(&self) -> &[(String, VarId)] {
        &self.observables
    }

    /// The latent block names, in spec order (the valid probe targets).
    pub fn latent_names(&self) -> impl Iterator<Item = &str> + '_ {
        self.latents.iter().map(|(n, _)| n.as_str())
    }

    /// The observable variable names, in spec order (the valid test
    /// targets and the default candidate set of a fresh session).
    pub fn observable_names(&self) -> impl Iterator<Item = &str> + '_ {
        self.observables.iter().map(|(n, _)| n.as_str())
    }

    /// Allocates a propagation workspace sized for the compiled tree.
    pub fn make_workspace(&self) -> PropagationWorkspace {
        self.jt.make_workspace()
    }

    /// Converts an observation into network evidence.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidObservation`] for unknown variables or
    /// out-of-range states.
    pub fn evidence_from(&self, observation: &Observation) -> Result<Evidence> {
        let mut evidence = Evidence::new();
        for (name, state) in observation.iter() {
            let var = self
                .model
                .var(name)
                .map_err(|_| Error::InvalidObservation {
                    variable: name.into(),
                    reason: "not a model variable".into(),
                })?;
            let card = self.model.network().card(var);
            if state >= card {
                return Err(Error::InvalidObservation {
                    variable: name.into(),
                    reason: format!("state {state} out of range {card}"),
                });
            }
            evidence.observe(var, state);
        }
        Ok(evidence)
    }

    /// The model's baseline ("Init. prob.%" in paper Table VII): state
    /// distributions with no evidence entered.
    ///
    /// # Errors
    ///
    /// Propagates propagation errors.
    pub fn baseline(&self) -> Result<Vec<(String, Vec<f64>)>> {
        let mut ws = self.make_workspace();
        let cal = self
            .jt
            .propagate_in(&mut ws, &Evidence::new())
            .map_err(Error::Bbn)?;
        let mut out = Vec::new();
        for v in self.model.circuit_model().spec().variables() {
            let id = self.model.var(&v.name)?;
            out.push((v.name.clone(), cal.posterior(id).map_err(Error::Bbn)?));
        }
        Ok(out)
    }

    /// The diagnosis kernel: posterior update (Bayes theorem over the
    /// whole network) followed by the §IV-B candidate deduction, entirely
    /// inside the caller's reusable workspace. `evidence` must be the
    /// caller's derivation of `observation` (kept in lockstep), so the
    /// per-decision loop never pays for rebuilding the evidence map.
    ///
    /// Runs under the compiled model's own [`DeductionPolicy`]; sessions
    /// carrying a per-session override go through
    /// [`CompiledModel::diagnose_with_policy_in`] instead.
    ///
    /// # Errors
    ///
    /// Propagates propagation errors, including
    /// [`abbd_bbn::Error::ImpossibleEvidence`] (wrapped) when the
    /// observation has zero probability under the model.
    pub fn diagnose_in(
        &self,
        ws: &mut PropagationWorkspace,
        observation: &Observation,
        evidence: &Evidence,
    ) -> Result<Diagnosis> {
        self.diagnose_with_policy_in(ws, observation, evidence, &self.policy)
    }

    /// [`CompiledModel::diagnose_in`] under an explicit
    /// [`DeductionPolicy`] instead of the compiled default — the kernel
    /// behind per-session policy overrides. The policy only affects the
    /// *deduction* layer (classification thresholds and the candidate
    /// walk); the posterior update is identical, so overriding it never
    /// recompiles or re-propagates anything extra.
    ///
    /// # Errors
    ///
    /// Same as [`CompiledModel::diagnose_in`].
    pub fn diagnose_with_policy_in(
        &self,
        ws: &mut PropagationWorkspace,
        observation: &Observation,
        evidence: &Evidence,
        policy: &DeductionPolicy,
    ) -> Result<Diagnosis> {
        let cal = self.jt.propagate_in(ws, evidence).map_err(Error::Bbn)?;

        let circuit_model = self.model.circuit_model();
        let mut posteriors = Vec::new();
        for v in circuit_model.spec().variables() {
            let id = self.model.var(&v.name)?;
            posteriors.push((v.name.clone(), cal.posterior(id).map_err(Error::Bbn)?));
        }

        let mut fault_mass: BTreeMap<String, f64> = BTreeMap::new();
        for name in circuit_model.latents() {
            let dist = posteriors
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, d)| d.as_slice())
                .expect("latents come from the same spec");
            let mass: f64 = circuit_model
                .fault_states(name)
                .iter()
                .filter_map(|&s| dist.get(s))
                .sum();
            fault_mass.insert(name.to_string(), mass);
        }
        let classes: BTreeMap<String, HealthClass> = fault_mass
            .iter()
            .map(|(n, &m)| (n.clone(), policy.classify(m)))
            .collect();
        let observables = circuit_model.observables();
        let failing: Vec<String> = observation
            .failing()
            .iter()
            .filter(|name| observables.contains(&name.as_str()))
            .cloned()
            .collect();
        let candidates = deduce_candidates(
            circuit_model,
            self.model.network(),
            evidence,
            &fault_mass,
            &failing,
            policy,
        )?;

        Ok(Diagnosis::from_parts(
            observation.clone(),
            posteriors,
            fault_mass,
            classes,
            candidates,
            cal.log_likelihood(),
        ))
    }

    /// One-shot convenience over [`CompiledModel::diagnose_in`]: builds
    /// the evidence and a fresh workspace per call. Long-lived loops
    /// should hold a [`DiagnosisSession`] instead.
    ///
    /// # Errors
    ///
    /// Same as [`CompiledModel::diagnose_in`], plus observation
    /// validation errors.
    pub fn diagnose(&self, observation: &Observation) -> Result<Diagnosis> {
        let evidence = self.evidence_from(observation)?;
        self.diagnose_in(&mut self.make_workspace(), observation, &evidence)
    }

    /// Serves one stateless decision round: seed a fresh session from the
    /// request, diagnose, rank the candidate actions, and assemble the
    /// serde report — the service boundary a diagnosis server exposes
    /// per device per round.
    ///
    /// # Errors
    ///
    /// Propagates observation/action validation and propagation errors.
    pub fn serve(self: &Arc<Self>, request: &SessionRequest) -> Result<SessionReport> {
        let mut session = DiagnosisSession::new(Arc::clone(self), request.policy)?;
        session.serve_round(request)
    }
}

/// One decision round's input at the service boundary: the device's
/// observations so far plus how to rank what to measure next. The serde
/// mirror of seeding a [`DiagnosisSession`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionRequest {
    /// Everything observed on the device so far (controls and
    /// measurements, with failing marks).
    pub observation: Observation,
    /// The candidate actions to rank. Empty = every observable as a
    /// test candidate (the fresh-session default).
    pub actions: Vec<Action>,
    /// How candidates are ranked.
    pub strategy: Strategy,
    /// The stopping thresholds to evaluate against.
    pub policy: StoppingPolicy,
    /// The measurement prices.
    pub cost: CostModel,
    /// Per-request [`DeductionPolicy`] override; `None` (the wire
    /// default — absent fields deserialize as `None`) diagnoses under the
    /// compiled model's policy. Overriding it never recompiles: the
    /// policy only enters at the deduction layer.
    #[serde(default)]
    pub deduction: Option<DeductionPolicy>,
    /// Marks the request as an **incremental** (delta) round: its
    /// observation carries only the measurements *new since the last
    /// round*, not the device's cumulative evidence. A delta asserts
    /// consistency with the session's history — re-sending an
    /// already-stored variable with the *same* state is an idempotent
    /// no-op, but a contradicting state is refused whole with
    /// [`Error::InconsistentDelta`] (a full round would silently
    /// overwrite instead). On a fresh session there is no history, so a
    /// delta behaves exactly like a full round. Wire default: `false`.
    #[serde(default)]
    pub delta: bool,
    /// Observed wall cost of the measurements taken since the last round,
    /// as `(variable, tester_seconds)` pairs. Purely telemetry: the values
    /// never influence this round's answer, they feed the fleet-learning
    /// aggregate ([`crate::fleet`]) so a background refit can re-price the
    /// [`CostModel`] from production testers. Wire default: empty.
    #[serde(default)]
    pub timings: Vec<(String, f64)>,
}

impl SessionRequest {
    /// A request over `observation` with default candidates, strategy,
    /// policy and unit costs.
    pub fn new(observation: Observation) -> Self {
        SessionRequest {
            observation,
            actions: Vec::new(),
            strategy: Strategy::default(),
            policy: StoppingPolicy::default(),
            cost: CostModel::unit(),
            deduction: None,
            delta: false,
            timings: Vec::new(),
        }
    }

    /// The same request flagged as an incremental (delta) round: the
    /// observation is interpreted as *new since the last round* and must
    /// not contradict the session's stored evidence.
    #[must_use]
    pub fn into_delta(mut self) -> Self {
        self.delta = true;
        self
    }
}

/// One decision round's output at the service boundary: the posterior
/// picture plus the ranked next actions. The serde mirror of
/// [`DiagnosisSession::diagnose`] + [`DiagnosisSession::rank_actions`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionReport {
    /// Posterior state distributions for every model variable, in spec
    /// order.
    pub posteriors: Vec<(String, Vec<f64>)>,
    /// `(latent, posterior fault mass)`, in name order.
    pub fault_mass: Vec<(String, f64)>,
    /// Ranked fail candidates (most suspicious first).
    pub candidates: Vec<Candidate>,
    /// The top fail candidate, if any.
    pub top_candidate: Option<String>,
    /// `ln P(observation)` under the fitted model.
    pub log_likelihood: f64,
    /// The candidate actions ranked best-first under the request's
    /// strategy and cost model.
    pub ranked: Vec<Ranked<Action>>,
    /// Why the loop should stop, if any stopping condition already
    /// holds; `None` means the top ranked action is worth taking.
    pub stop: Option<StopReason>,
}

/// One device under diagnosis: the per-query state served off a shared
/// [`CompiledModel`].
///
/// A session owns its accumulated evidence, two reusable
/// [`PropagationWorkspace`]s (current beliefs, hypothetical queries),
/// fixed scoring buffers and the cost ledger — nothing else. Opening a
/// session never compiles anything; after the first scoring pass a
/// decision performs **zero junction-tree compilations and zero heap
/// allocations** in the scoring loop (asserted by `tests/zero_alloc.rs`),
/// so thousands of concurrent sessions can serve off one compilation.
///
/// Drive it three ways:
///
/// * **closed loop** — [`DiagnosisSession::run`] with an
///   [`ActionExecutor`] (see [`DiagnosisSession::run_traced`] for the
///   golden-trace capture, [`DiagnosisSession::run_scripted`] for the
///   fixed-order baseline);
/// * **stepping** — alternate [`DiagnosisSession::next_action`] /
///   [`DiagnosisSession::apply`] and stop when `next_action` returns
///   `None` ([`DiagnosisSession::stop_reason`] says why);
/// * **one-shot** — seed with [`DiagnosisSession::observe_all`], read
///   [`DiagnosisSession::diagnose`] / [`DiagnosisSession::rank_actions`].
#[derive(Debug)]
pub struct DiagnosisSession {
    compiled: Arc<CompiledModel>,
    policy: StoppingPolicy,
    /// Workspace for current-belief propagations (base pass + diagnosis).
    base_ws: PropagationWorkspace,
    /// Workspace + distribution buffer for hypothetical VOI queries.
    scratch: VoiScratch,
    /// Accumulated evidence, kept in lockstep with `observation`.
    evidence: Evidence,
    /// Accumulated observation (drives the kernel and failing marks).
    observation: Observation,
    /// The latent blocks whose entropy the VOI kernel scores.
    latents: Vec<VarId>,
    /// Reused per-latent entropy buffer for the base pass.
    latent_entropy: Vec<f64>,
    /// Unapplied candidate actions with their latest scores.
    candidates: Vec<ScoredAction>,
    /// How candidates are ranked (myopic / cost-weighted / lookahead).
    strategy: Strategy,
    /// Prices for tests, suite switches and probes.
    cost_model: CostModel,
    /// The expectimax evaluator, present iff `strategy` is lookahead.
    planner: Option<LookaheadPlanner>,
    /// Reused candidate-id buffer for planner calls.
    var_buf: Vec<VarId>,
    /// Per-session deduction-policy override; `None` = the compiled
    /// model's policy.
    deduction: Option<DeductionPolicy>,
    /// The cost ledger: every measurement applied to this session.
    applied: Vec<AppliedMeasurement>,
    /// Why the stepping loop last declined to recommend, if it did.
    stop: Option<StopReason>,
    /// The recommendation [`DiagnosisSession::next_action`] last made:
    /// `(target, gain, cost)`, consumed by the matching `apply`.
    pending: Option<(String, f64, f64)>,
    /// The decision trace under capture, if tracing is enabled.
    trace: Option<DecisionTrace>,
    /// The diagnosis computed by the last `next_action` stop evaluation.
    last_diagnosis: Option<Diagnosis>,
}

impl DiagnosisSession {
    /// Opens a session on a shared compiled model with every observable
    /// variable as a test candidate.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidStoppingPolicy`] for malformed policies.
    pub fn new(compiled: Arc<CompiledModel>, policy: StoppingPolicy) -> Result<Self> {
        policy.validate()?;
        let latents: Vec<VarId> = compiled.latent_vars().iter().map(|&(_, id)| id).collect();
        let candidates: Vec<ScoredAction> = compiled
            .observable_vars()
            .iter()
            .map(|(name, var)| ScoredAction {
                action: Action::Test(name.clone()),
                var: *var,
                probe: false,
                gain: 0.0,
                cost: 0.0,
                score: 0.0,
            })
            .collect();
        let latent_capacity = latents.len();
        Ok(DiagnosisSession {
            base_ws: compiled.make_workspace(),
            scratch: VoiScratch::new(&compiled),
            evidence: Evidence::new(),
            observation: Observation::new(),
            latents,
            latent_entropy: Vec::with_capacity(latent_capacity),
            candidates,
            strategy: Strategy::Myopic,
            cost_model: CostModel::unit(),
            planner: None,
            var_buf: Vec::new(),
            deduction: None,
            applied: Vec::new(),
            stop: None,
            pending: None,
            trace: None,
            last_diagnosis: None,
            compiled,
            policy,
        })
    }

    /// The shared compilation this session serves off.
    pub fn compiled(&self) -> &Arc<CompiledModel> {
        &self.compiled
    }

    /// Replaces the candidate-selection strategy. Switching to
    /// [`Strategy::Lookahead`] (re)builds the expectimax planner with all
    /// buffers sized for the requested depth, so the decision loop stays
    /// allocation-free afterwards.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidStrategy`] for malformed strategies.
    pub fn set_strategy(&mut self, strategy: Strategy) -> Result<()> {
        strategy.validate()?;
        match strategy {
            Strategy::Lookahead { depth } => {
                if self.planner.as_ref().map(LookaheadPlanner::depth) != Some(depth) {
                    self.planner = Some(LookaheadPlanner::new(&self.compiled, depth)?);
                }
            }
            _ => self.planner = None,
        }
        self.strategy = strategy;
        Ok(())
    }

    /// The active candidate-selection strategy.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// Replaces the measurement cost model. The loop calls
    /// [`CostModel::note_measured`] on it after every applied
    /// measurement, keeping the current-suite tracking in lockstep with
    /// the bench.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidCostModel`] for malformed models.
    pub fn set_cost_model(&mut self, cost_model: CostModel) -> Result<()> {
        cost_model.validate()?;
        self.cost_model = cost_model;
        Ok(())
    }

    /// The active measurement cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost_model
    }

    /// Overrides the deduction policy for *this session only* (`None`
    /// restores the compiled model's policy). Two sessions on one shared
    /// [`CompiledModel`] can classify and deduce under different
    /// thresholds without recompiling anything — the policy only enters
    /// at the deduction layer, downstream of the shared junction tree.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidPolicy`] for malformed thresholds.
    pub fn set_deduction_policy(&mut self, policy: Option<DeductionPolicy>) -> Result<()> {
        if let Some(policy) = &policy {
            policy.validate()?;
        }
        self.deduction = policy;
        Ok(())
    }

    /// The deduction policy this session diagnoses under: the per-session
    /// override if one is set, otherwise the compiled model's policy.
    pub fn deduction_policy(&self) -> &DeductionPolicy {
        self.deduction.as_ref().unwrap_or(self.compiled.policy())
    }

    /// Replaces the candidate action set — the session's *mixed* menu of
    /// specification tests and physical probes, ranked together.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidAction`] for unknown targets, a
    /// [`Action::Test`] on a latent block, a [`Action::Probe`] on a
    /// non-latent, duplicate targets, or targets the observation already
    /// pins.
    pub fn set_actions<I>(&mut self, actions: I) -> Result<()>
    where
        I: IntoIterator<Item = Action>,
    {
        self.candidates = self.validate_actions(actions, &Observation::new())?;
        Ok(())
    }

    /// Builds a validated candidate list without mutating the session —
    /// the pure core of [`DiagnosisSession::set_actions`].
    /// `pending_observation` names measurements that *will* be absorbed
    /// alongside the actions (a [`SessionRequest`]'s observation), so a
    /// transactional absorb can reject a candidate the same request
    /// already pins.
    fn validate_actions<I>(
        &self,
        actions: I,
        pending_observation: &Observation,
    ) -> Result<Vec<ScoredAction>>
    where
        I: IntoIterator<Item = Action>,
    {
        let mut next = Vec::new();
        for action in actions {
            let name = action.target();
            let var = self
                .compiled
                .model()
                .var(name)
                .map_err(|_| Error::InvalidAction {
                    action: action.to_string(),
                    reason: "not a model variable".into(),
                })?;
            let latent = self.latents.contains(&var);
            if action.is_probe() && !latent {
                return Err(Error::InvalidAction {
                    action: action.to_string(),
                    reason: "probes target latent blocks; use Action::Test".into(),
                });
            }
            if !action.is_probe() && latent {
                return Err(Error::InvalidAction {
                    action: action.to_string(),
                    reason: "latent blocks cannot be tested electrically; use Action::Probe".into(),
                });
            }
            if self.observation.state_of(name).is_some()
                || pending_observation.state_of(name).is_some()
            {
                return Err(Error::InvalidAction {
                    action: action.to_string(),
                    reason: "already observed; cannot be a measurement candidate".into(),
                });
            }
            // A duplicate would leave a dangling twin after the first
            // copy is measured: `observe` removes one entry, and the
            // survivor's variable is then pinned by evidence, poisoning
            // every later scoring pass with an invalid hypothetical.
            if next.iter().any(|c: &ScoredAction| c.var == var) {
                return Err(Error::InvalidAction {
                    action: action.to_string(),
                    reason: "duplicate measurement candidate".into(),
                });
            }
            next.push(ScoredAction {
                probe: action.is_probe(),
                action,
                var,
                gain: 0.0,
                cost: 0.0,
                score: 0.0,
            });
        }
        Ok(next)
    }

    /// [`DiagnosisSession::set_actions`] from bare variable names,
    /// classifying each as a test or probe by whether it is a latent
    /// block (the legacy `set_candidates` behaviour).
    ///
    /// # Errors
    ///
    /// Same as [`DiagnosisSession::set_actions`], surfaced as
    /// [`Error::InvalidObservation`] for unknown names (legacy
    /// compatibility).
    pub fn set_candidates<I, N>(&mut self, names: I) -> Result<()>
    where
        I: IntoIterator<Item = N>,
        N: AsRef<str>,
    {
        let actions: Vec<Action> = names
            .into_iter()
            .map(|name| {
                let name = name.as_ref();
                let var =
                    self.compiled
                        .model()
                        .var(name)
                        .map_err(|_| Error::InvalidObservation {
                            variable: name.into(),
                            reason: "not a model variable".into(),
                        })?;
                Ok(if self.latents.contains(&var) {
                    Action::probe(name)
                } else {
                    Action::test(name)
                })
            })
            .collect::<Result<_>>()?;
        self.set_actions(actions).map_err(|e| match e {
            // Legacy callers match on InvalidObservation and read the
            // bare variable name, so strip the action rendering
            // (`test x` / `probe x`) back down to `x`.
            Error::InvalidAction { action, reason } => {
                let variable = action
                    .strip_prefix("test ")
                    .or_else(|| action.strip_prefix("probe "))
                    .unwrap_or(&action)
                    .to_string();
                Error::InvalidObservation { variable, reason }
            }
            other => other,
        })
    }

    /// The unapplied candidates with their scores from the latest
    /// [`DiagnosisSession::rank_actions`] pass (unsorted between passes).
    pub fn actions(&self) -> &[ScoredAction] {
        &self.candidates
    }

    /// Everything observed so far.
    pub fn observation(&self) -> &Observation {
        &self.observation
    }

    /// The active stopping policy.
    pub fn policy(&self) -> &StoppingPolicy {
        &self.policy
    }

    /// The per-session deduction-policy override, if any (the hierarchy
    /// layer copies it onto a freshly descended child session).
    pub(crate) fn deduction_override(&self) -> Option<DeductionPolicy> {
        self.deduction
    }

    /// The session's cost ledger: every measurement applied, in
    /// execution order.
    pub fn applied(&self) -> &[AppliedMeasurement] {
        &self.applied
    }

    /// Why the last [`DiagnosisSession::next_action`] declined to
    /// recommend (cleared by the next successful apply).
    pub fn stop_reason(&self) -> Option<StopReason> {
        self.stop
    }

    /// Records a measurement: `variable = state`. If the variable was a
    /// pending candidate it stops being one.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidObservation`] for unknown variables or
    /// out-of-range states.
    pub fn observe(&mut self, variable: &str, state: usize) -> Result<()> {
        let var = self
            .compiled
            .model()
            .var(variable)
            .map_err(|_| Error::InvalidObservation {
                variable: variable.into(),
                reason: "not a model variable".into(),
            })?;
        let card = self.compiled.model().network().card(var);
        if state >= card {
            return Err(Error::InvalidObservation {
                variable: variable.into(),
                reason: format!("state {state} out of range {card}"),
            });
        }
        self.evidence.observe(var, state);
        self.observation.set(variable, state);
        if let Some(pos) = self.candidates.iter().position(|c| c.var == var) {
            self.candidates.swap_remove(pos);
        }
        Ok(())
    }

    /// Marks an already-recorded variable as having failed its ATE limits.
    pub fn mark_failing(&mut self, variable: &str) {
        self.observation.mark_failing(variable);
    }

    /// Seeds the session with a whole observation (controls plus any
    /// already-taken measurements), preserving its failing marks.
    ///
    /// # Errors
    ///
    /// Propagates [`DiagnosisSession::observe`] errors.
    pub fn observe_all(&mut self, observation: &Observation) -> Result<()> {
        for (name, state) in observation.iter() {
            self.observe(name, state)?;
        }
        for name in observation.failing() {
            self.mark_failing(name);
        }
        Ok(())
    }

    /// The diagnosis over everything observed so far (posterior update
    /// plus the §IV-B candidate deduction), through the reused workspace
    /// and the evidence set this session keeps in lockstep with its
    /// observation (no per-call evidence rebuild).
    ///
    /// # Errors
    ///
    /// Same as [`CompiledModel::diagnose`].
    pub fn diagnose(&mut self) -> Result<Diagnosis> {
        let policy = self.deduction.unwrap_or(*self.compiled.policy());
        self.compiled.diagnose_with_policy_in(
            &mut self.base_ws,
            &self.observation,
            &self.evidence,
            &policy,
        )
    }

    /// Scores every unapplied candidate action under the active
    /// [`Strategy`] and [`CostModel`] and returns them sorted by
    /// selection score, best first (ties and NaNs ordered by
    /// `f64::total_cmp`).
    ///
    /// The information value is the one-step expected gain over the
    /// latent blocks for [`Strategy::Myopic`] and
    /// [`Strategy::CostWeighted`], and the depth-bounded expectimax value
    /// for [`Strategy::Lookahead`]; the selection score is the raw value
    /// (myopic) or value-per-tester-second (the other two). Probes and
    /// tests rank in the *same* list — the probe's higher [`CostModel`]
    /// price is what keeps it behind cheap tests until the tests stop
    /// carrying information.
    ///
    /// This is the per-decision hot path: one base propagation plus up to
    /// `card` hypothetical propagations per candidate (times the outcome
    /// tree for lookahead), all through the compiled tree and the reused
    /// workspaces — **zero junction-tree compilations, zero heap
    /// allocations** once the session is warm.
    ///
    /// # Errors
    ///
    /// Propagates propagation errors (e.g. impossible evidence).
    pub fn rank_actions(&mut self) -> Result<&[ScoredAction]> {
        let Self {
            compiled,
            base_ws,
            scratch,
            evidence,
            latents,
            latent_entropy,
            candidates,
            strategy,
            cost_model,
            planner,
            var_buf,
            ..
        } = self;
        if candidates.is_empty() {
            return Ok(&[]);
        }
        let jt = compiled.jt();
        let net = compiled.model().network();
        match *strategy {
            Strategy::Myopic | Strategy::CostWeighted => {
                let view = jt.propagate_in(base_ws, evidence).map_err(Error::Bbn)?;
                latent_entropy.clear();
                for &v in latents.iter() {
                    latent_entropy.push(view.posterior_entropy(v).map_err(Error::Bbn)?);
                }
                let total_entropy: f64 = latent_entropy.iter().sum();
                let VoiScratch { ws: hyp_ws, dist } = scratch;
                for slot in candidates.iter_mut() {
                    let own = latents
                        .iter()
                        .position(|&l| l == slot.var)
                        .map_or(0.0, |i| latent_entropy[i]);
                    let card = net.card(slot.var);
                    view.posterior_into(slot.var, &mut dist[..card])
                        .map_err(Error::Bbn)?;
                    slot.gain = voi::expected_gain(
                        jt,
                        hyp_ws,
                        evidence,
                        slot.var,
                        &dist[..card],
                        latents,
                        total_entropy - own,
                    )?;
                }
            }
            Strategy::Lookahead { .. } => {
                let planner = planner.as_mut().expect("set_strategy built the planner");
                var_buf.clear();
                var_buf.extend(candidates.iter().map(|c| c.var));
                let values = planner.values(compiled, evidence, var_buf)?;
                for (slot, &value) in candidates.iter_mut().zip(values) {
                    slot.gain = value;
                }
            }
        }
        for slot in candidates.iter_mut() {
            slot.cost = cost_model.cost_of(slot.action.target(), slot.probe);
            slot.score = match *strategy {
                Strategy::Myopic => slot.gain,
                Strategy::CostWeighted | Strategy::Lookahead { .. } => slot.gain / slot.cost,
            };
        }
        candidates.sort_unstable_by(|a, b| b.score.total_cmp(&a.score));
        Ok(candidates)
    }

    /// Absorbs one [`SessionRequest`] into the session: ranking strategy,
    /// cost model, deduction-policy override, stopping policy, the
    /// request's observations, and (when non-empty) its candidate action
    /// set. [`CompiledModel::serve`] is exactly this on a fresh session;
    /// a *stateful* service round is this on a stored session — new
    /// observations accumulate onto what earlier rounds absorbed
    /// (re-observing a variable overwrites its state).
    ///
    /// The absorb is **transactional**: every part of the request is
    /// validated before anything is applied, so a failed absorb leaves
    /// the session exactly as it was (a service can check the session
    /// back into its store and let the client retry with a corrected
    /// request).
    ///
    /// A **delta** request ([`SessionRequest::delta`]) additionally
    /// asserts consistency with history: every variable it re-observes
    /// must carry the state the session already stores, or the whole
    /// round is refused with [`Error::InconsistentDelta`] before any
    /// state changes.
    ///
    /// # Errors
    ///
    /// Propagates observation/action/strategy/cost/policy validation
    /// errors.
    pub fn absorb_request(&mut self, request: &SessionRequest) -> Result<()> {
        // Validation phase — no session state is touched yet.
        request.policy.validate()?;
        request.strategy.validate()?;
        request.cost.validate()?;
        if let Some(deduction) = &request.deduction {
            deduction.validate()?;
        }
        if request.delta {
            for (name, state) in request.observation.iter() {
                if let Some(stored) = self.observation.state_of(name) {
                    if stored != state {
                        return Err(Error::InconsistentDelta {
                            variable: name.to_string(),
                            stored,
                            requested: state,
                        });
                    }
                }
            }
        }
        self.compiled.evidence_from(&request.observation)?;
        let staged_actions = if request.actions.is_empty() {
            None
        } else {
            Some(self.validate_actions(request.actions.iter().cloned(), &request.observation)?)
        };
        // Mutation phase. `set_strategy` goes first because the planner
        // (re)build is its own atomic failure point; the remaining
        // setters re-validate inputs that already passed above.
        self.set_strategy(request.strategy)?;
        self.set_cost_model(request.cost.clone())?;
        self.set_deduction_policy(request.deduction)?;
        self.policy = request.policy;
        self.observe_all(&request.observation)?;
        if let Some(actions) = staged_actions {
            self.candidates = actions;
        }
        Ok(())
    }

    /// One decision round's report: diagnose, rank the candidate set, and
    /// evaluate the stop verdict — the serde mirror a service answers
    /// with ([`CompiledModel::serve`] = open + [`DiagnosisSession::absorb_request`] +
    /// this; a session-store round skips the open).
    ///
    /// # Errors
    ///
    /// Propagates diagnosis and scoring errors.
    pub fn report(&mut self) -> Result<SessionReport> {
        let diagnosis = self.diagnose()?;
        // One scoring pass serves both the ranking and the stop verdict
        // (the scoring loop is the expensive part of a service round).
        let ranked: Vec<Ranked<Action>> = self
            .rank_actions()?
            .iter()
            .map(ScoredAction::to_ranked)
            .collect();
        let stop = if let Some(reason) = self.pre_scoring_stop(&diagnosis) {
            Some(reason)
        } else if ranked.is_empty() {
            Some(StopReason::Exhausted)
        } else {
            let best_value = ranked
                .iter()
                .map(|r| r.gain)
                .fold(f64::NEG_INFINITY, f64::max);
            (best_value < self.policy.min_gain).then_some(StopReason::GainBelowThreshold)
        };
        Ok(SessionReport {
            posteriors: diagnosis.posteriors().to_vec(),
            fault_mass: fault_mass_entries(&diagnosis),
            candidates: diagnosis.candidates().to_vec(),
            top_candidate: diagnosis.top_candidate().map(str::to_string),
            log_likelihood: diagnosis.log_likelihood(),
            ranked,
            stop,
        })
    }

    /// One whole service round with rollback:
    /// [`DiagnosisSession::absorb_request`] followed by
    /// [`DiagnosisSession::report`], restoring the session's full
    /// pre-round state if **either** phase fails. The absorb alone is
    /// already transactional for validation errors; what this adds is
    /// recovery from report-phase failures — above all
    /// [`abbd_bbn::Error::ImpossibleEvidence`], where the new
    /// observation only reveals its inconsistency during propagation,
    /// *after* the evidence was committed. Without the rollback a
    /// stored session would be permanently wedged: every later round
    /// re-propagates the impossible evidence and fails again.
    ///
    /// [`CompiledModel::serve`] is exactly this on a fresh session, so
    /// a service's stored-session rounds stay byte-identical to its
    /// stateless ones — including after a failed round.
    ///
    /// # Errors
    ///
    /// Same as [`DiagnosisSession::absorb_request`] and
    /// [`DiagnosisSession::report`]; on error the session is unchanged.
    pub fn serve_round(&mut self, request: &SessionRequest) -> Result<SessionReport> {
        let evidence = self.evidence.clone();
        let observation = self.observation.clone();
        let candidates = self.candidates.clone();
        let policy = self.policy;
        let strategy = self.strategy;
        let cost_model = self.cost_model.clone();
        let deduction = self.deduction;
        let result = self.absorb_request(request).and_then(|()| self.report());
        if result.is_err() {
            self.evidence = evidence;
            self.observation = observation;
            self.candidates = candidates;
            self.policy = policy;
            self.cost_model = cost_model;
            self.deduction = deduction;
            // The old strategy was valid when it was set, so restoring
            // it cannot fail; `let _` keeps the rollback path panic-free
            // regardless.
            let _ = self.set_strategy(strategy);
        }
        result
    }

    /// Whether `diagnosis` isolates a fault under the active policy.
    fn isolated(&self, diagnosis: &Diagnosis) -> bool {
        diagnosis
            .candidates()
            .first()
            .is_some_and(|c| c.fault_mass >= self.policy.fault_mass_threshold)
    }

    /// Evaluates the pre-scoring stop conditions against `diagnosis`:
    /// isolation and the step budget. (The gain-dependent conditions need
    /// a scoring pass and live in [`DiagnosisSession::next_action`].)
    fn pre_scoring_stop(&self, diagnosis: &Diagnosis) -> Option<StopReason> {
        if self.isolated(diagnosis) {
            Some(StopReason::Isolated)
        } else if self.applied.len() >= self.policy.max_steps {
            Some(StopReason::MaxSteps)
        } else {
            None
        }
    }

    /// Enables or disables decision tracing. Enabling starts a fresh
    /// [`DecisionTrace`]; every recommendation-and-apply round appends
    /// one [`TracedDecision`]. A recommendation made *before* the trace
    /// boundary is discarded (its ranking belongs to no trace), so the
    /// next applied measurement is ledgered without selection scores.
    pub fn set_tracing(&mut self, tracing: bool) {
        self.pending = None;
        self.trace = if tracing {
            Some(DecisionTrace {
                strategy: self.strategy,
                steps: Vec::new(),
                stop: StopReason::Exhausted,
                final_fault_mass: Vec::new(),
                top_candidate: None,
            })
        } else {
            None
        };
    }

    /// The decision trace under capture, if tracing is enabled.
    pub fn trace(&self) -> Option<&DecisionTrace> {
        self.trace.as_ref()
    }

    /// The next recommended action under the active strategy, or `None`
    /// when a stopping condition holds ([`DiagnosisSession::stop_reason`]
    /// says which). Re-diagnoses, re-scores the candidate set, and — when
    /// tracing — records the full ranking. Feed the recommendation (or
    /// any other action) to [`DiagnosisSession::apply`]; calling
    /// `next_action` again before applying supersedes the previous
    /// recommendation.
    ///
    /// # Errors
    ///
    /// Propagates diagnosis/propagation errors.
    pub fn next_action(&mut self) -> Result<Option<Ranked<Action>>> {
        // A recommendation that was never applied is superseded by this
        // evaluation (and its traced step with it).
        if self.pending.take().is_some() {
            if let Some(trace) = self.trace.as_mut() {
                trace.steps.pop();
            }
        }
        let diagnosis = self.diagnose()?;
        if let Some(trace) = self.trace.as_mut() {
            if let Some(step) = trace.steps.last_mut() {
                if step.fault_mass.is_empty() {
                    step.fault_mass = fault_mass_entries(&diagnosis);
                }
            }
        }
        if let Some(reason) = self.pre_scoring_stop(&diagnosis) {
            self.stop = Some(reason);
            self.last_diagnosis = Some(diagnosis);
            return Ok(None);
        }
        let min_gain = self.policy.min_gain;
        self.rank_actions()?;
        if self.candidates.is_empty() {
            self.stop = Some(StopReason::Exhausted);
            self.last_diagnosis = Some(diagnosis);
            return Ok(None);
        }
        let best_value = self
            .candidates
            .iter()
            .map(ScoredAction::expected_information_gain)
            .fold(f64::NEG_INFINITY, f64::max);
        if best_value < min_gain {
            self.stop = Some(StopReason::GainBelowThreshold);
            self.last_diagnosis = Some(diagnosis);
            return Ok(None);
        }
        let best = &self.candidates[0];
        let ranked = best.to_ranked();
        if let Some(trace) = self.trace.as_mut() {
            trace.steps.push(TracedDecision {
                scores: self
                    .candidates
                    .iter()
                    .map(|c| TracedScore {
                        variable: c.action.target().to_string(),
                        gain: c.gain,
                        cost: c.cost,
                        score: c.score,
                    })
                    .collect(),
                chosen: ranked.action.target().to_string(),
                state: 0,
                failing: false,
                fault_mass: Vec::new(),
            });
        }
        self.pending = Some((ranked.action.target().to_string(), ranked.gain, ranked.cost));
        self.stop = None;
        self.last_diagnosis = Some(diagnosis);
        Ok(Some(ranked))
    }

    /// Applies a measurement outcome: records it as evidence, charges the
    /// cost model, and appends to the ledger (and the trace, when the
    /// action matches the pending recommendation — measurements taken
    /// off-recommendation are ledgered without selection scores, like
    /// scripted runs).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidObservation`] for unknown targets or
    /// out-of-range states.
    pub fn apply(&mut self, action: &Action, outcome: Outcome) -> Result<()> {
        let name = action.target();
        self.observe(name, outcome.state)?;
        if outcome.failing {
            self.mark_failing(name);
        }
        self.cost_model.note_measured(name);
        let (gain, cost) = match self.pending.take() {
            Some((pending, gain, cost)) if pending == name => {
                if let Some(trace) = self.trace.as_mut() {
                    // `set_tracing` discards pre-trace recommendations,
                    // so a live trace here always has the pending step —
                    // but stay panic-free regardless.
                    if let Some(step) = trace.steps.last_mut() {
                        step.state = outcome.state;
                        step.failing = outcome.failing;
                    }
                }
                (Some(gain), Some(cost))
            }
            pending => {
                // The recommendation (if any) was not followed; its
                // traced step never happened.
                if pending.is_some() {
                    if let Some(trace) = self.trace.as_mut() {
                        trace.steps.pop();
                    }
                }
                (None, None)
            }
        };
        self.stop = None;
        self.applied.push(AppliedMeasurement {
            variable: name.to_string(),
            expected_information_gain: gain,
            cost,
            state: outcome.state,
            failing: outcome.failing,
        });
        Ok(())
    }

    /// Runs the closed loop: diagnose, stop or pick the best-scoring
    /// action under the active strategy, ask the executor to perform it,
    /// absorb the answer, repeat. On the ATE the executor runs one
    /// `abbd_ate::TestDef` out of program order for a test and reads an
    /// internal net for a probe.
    ///
    /// The gain floor compares [`StoppingPolicy::min_gain`] against the
    /// best *information value* among the candidates (not the best
    /// cost-normalised score): an expensive measurement that would still
    /// teach us something keeps the loop alive, it just gets deferred
    /// behind cheaper ones.
    ///
    /// # Errors
    ///
    /// Propagates diagnosis/propagation errors and whatever the executor
    /// returns (conventionally [`Error::Oracle`]).
    pub fn run<E>(&mut self, mut executor: E) -> Result<SequentialOutcome>
    where
        E: ActionExecutor,
    {
        let start = self.applied.len();
        while let Some(next) = self.next_action()? {
            let outcome = executor.execute(&next.action)?;
            self.apply(&next.action, outcome)?;
        }
        Ok(SequentialOutcome {
            diagnosis: self
                .last_diagnosis
                .take()
                .expect("next_action always diagnoses before stopping"),
            applied: self.applied[start..].to_vec(),
            stop: self.stop.expect("next_action set the stop reason"),
        })
    }

    /// [`DiagnosisSession::run`] capturing a full [`DecisionTrace`]
    /// alongside the outcome: every decision's complete candidate ranking
    /// (value, cost, selection score), the chosen action with the
    /// executor's answer, and the posterior fault mass per latent block
    /// after absorbing it. The golden-trace conformance corpus serialises
    /// these traces to pin the whole adaptive stack down.
    ///
    /// # Errors
    ///
    /// Same as [`DiagnosisSession::run`].
    pub fn run_traced<E>(&mut self, executor: E) -> Result<(SequentialOutcome, DecisionTrace)>
    where
        E: ActionExecutor,
    {
        self.set_tracing(true);
        let outcome = self.run(executor)?;
        let mut trace = self.trace.take().expect("tracing was just enabled");
        trace.strategy = self.strategy;
        trace.stop = outcome.stop;
        trace.final_fault_mass = fault_mass_entries(&outcome.diagnosis);
        trace.top_candidate = outcome.diagnosis.top_candidate().map(str::to_string);
        Ok((outcome, trace))
    }

    /// [`DiagnosisSession::run`] with the measurement order fixed in
    /// advance (the ATE's program order) instead of chosen by information
    /// gain — the baseline the adaptive loop is compared against. The same
    /// stopping policy applies between measurements (minus the gain floor,
    /// which only exists for scored runs); names already observed or
    /// absent from the candidate set are skipped.
    ///
    /// # Errors
    ///
    /// Same as [`DiagnosisSession::run`].
    pub fn run_scripted<E>(&mut self, order: &[&str], mut executor: E) -> Result<SequentialOutcome>
    where
        E: ActionExecutor,
    {
        let start = self.applied.len();
        let mut next = order.iter();
        loop {
            let diagnosis = self.diagnose()?;
            if let Some(reason) = self.pre_scoring_stop(&diagnosis) {
                self.stop = Some(reason);
                return Ok(SequentialOutcome {
                    diagnosis,
                    applied: self.applied[start..].to_vec(),
                    stop: reason,
                });
            }
            let Some(action) = next
                .find(|n| self.candidates.iter().any(|c| c.action.target() == **n))
                .map(|n| {
                    self.candidates
                        .iter()
                        .find(|c| c.action.target() == *n)
                        .expect("just located")
                        .action
                        .clone()
                })
            else {
                self.stop = Some(StopReason::Exhausted);
                return Ok(SequentialOutcome {
                    diagnosis,
                    applied: self.applied[start..].to_vec(),
                    stop: StopReason::Exhausted,
                });
            };
            let outcome = executor.execute(&action)?;
            self.apply(&action, outcome)?;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::toy_compiled_model;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn compiled_model_and_sessions_are_shareable() {
        assert_send_sync::<CompiledModel>();
        assert_send_sync::<DiagnosisSession>();
        assert_send_sync::<Arc<CompiledModel>>();
    }

    #[test]
    fn action_vocabulary_roundtrips() {
        let test = Action::test("out1");
        let probe = Action::probe("bias");
        assert_eq!(test.target(), "out1");
        assert!(!test.is_probe());
        assert!(probe.is_probe());
        assert_eq!(test.to_string(), "test out1");
        assert_eq!(probe.to_string(), "probe bias");
        for action in [test, probe] {
            let json = serde_json::to_string(&action).unwrap();
            let back: Action = serde_json::from_str(&json).unwrap();
            assert_eq!(back, action);
        }
        let ranked = Ranked {
            action: Action::test("out1"),
            gain: 0.5,
            cost: 2.0,
            score: 0.25,
        };
        let json = serde_json::to_string(&ranked).unwrap();
        let back: Ranked<Action> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ranked);
        assert_eq!(
            Outcome::passing(1),
            Outcome {
                state: 1,
                failing: false
            }
        );
        assert_eq!(
            Outcome::failing(0),
            Outcome {
                state: 0,
                failing: true
            }
        );
    }

    #[test]
    fn session_validates_action_kinds() {
        let compiled = toy_compiled_model();
        let mut s = DiagnosisSession::new(compiled, StoppingPolicy::default()).unwrap();
        assert!(matches!(
            s.set_actions([Action::probe("out1")]),
            Err(Error::InvalidAction { .. })
        ));
        assert!(matches!(
            s.set_actions([Action::test("bias")]),
            Err(Error::InvalidAction { .. })
        ));
        assert!(matches!(
            s.set_actions([Action::test("ghost")]),
            Err(Error::InvalidAction { .. })
        ));
        assert!(matches!(
            s.set_actions([Action::test("out1"), Action::test("out1")]),
            Err(Error::InvalidAction { .. })
        ));
        s.observe("out3", 1).unwrap();
        assert!(matches!(
            s.set_actions([Action::test("out3")]),
            Err(Error::InvalidAction { .. })
        ));
        s.set_actions([Action::test("out1"), Action::probe("aux")])
            .unwrap();
        assert_eq!(s.actions().len(), 2);
        assert!(s.actions()[1].is_probe());
    }

    #[test]
    fn stepping_api_matches_closed_loop() {
        let compiled = toy_compiled_model();
        let dead_bias = |action: &Action| {
            Ok(match action.target() {
                "out1" | "out2" => Outcome::failing(0),
                _ => Outcome::passing(1),
            })
        };
        let mut looped =
            DiagnosisSession::new(Arc::clone(&compiled), StoppingPolicy::default()).unwrap();
        looped.observe("pin", 1).unwrap();
        let outcome = looped.run(dead_bias).unwrap();

        let mut stepped =
            DiagnosisSession::new(Arc::clone(&compiled), StoppingPolicy::default()).unwrap();
        stepped.observe("pin", 1).unwrap();
        let mut applied = Vec::new();
        while let Some(next) = stepped.next_action().unwrap() {
            let answer = dead_bias(&next.action).unwrap();
            stepped.apply(&next.action, answer).unwrap();
            applied.push(next.action.target().to_string());
        }
        assert_eq!(stepped.stop_reason(), Some(outcome.stop));
        assert_eq!(applied.len(), outcome.tests_used());
        for (a, b) in applied.iter().zip(&outcome.applied) {
            assert_eq!(*a, b.variable);
        }
        assert_eq!(
            stepped.diagnose().unwrap().top_candidate(),
            outcome.diagnosis.top_candidate()
        );
        assert_eq!(stepped.applied().len(), applied.len());
    }

    #[test]
    fn repeated_next_action_supersedes_the_recommendation() {
        let compiled = toy_compiled_model();
        let mut s = DiagnosisSession::new(compiled, StoppingPolicy::default()).unwrap();
        s.observe("pin", 1).unwrap();
        s.set_tracing(true);
        let first = s.next_action().unwrap().unwrap();
        let second = s.next_action().unwrap().unwrap();
        assert_eq!(first, second, "no evidence changed between evaluations");
        assert_eq!(
            s.trace().unwrap().steps.len(),
            1,
            "superseded recommendations must not pile up traced steps"
        );
        s.apply(&second.action, Outcome::failing(0)).unwrap();
        assert_eq!(s.trace().unwrap().steps.len(), 1);
        assert_eq!(s.applied().len(), 1);
    }

    /// Regression: enabling tracing between a recommendation and its
    /// apply must not panic — the pre-trace recommendation is discarded
    /// and the measurement is ledgered without scores.
    #[test]
    fn tracing_enabled_mid_recommendation_does_not_panic() {
        let compiled = toy_compiled_model();
        let mut s = DiagnosisSession::new(compiled, StoppingPolicy::default()).unwrap();
        s.observe("pin", 1).unwrap();
        let next = s.next_action().unwrap().unwrap();
        s.set_tracing(true);
        s.apply(&next.action, Outcome::failing(0)).unwrap();
        assert!(s.trace().unwrap().steps.is_empty());
        assert_eq!(s.applied().len(), 1);
        assert_eq!(
            s.applied()[0].expected_information_gain,
            None,
            "a pre-trace recommendation is ledgered unscored"
        );
    }

    #[test]
    fn off_recommendation_applies_are_ledgered_without_scores() {
        let compiled = toy_compiled_model();
        let mut s = DiagnosisSession::new(compiled, StoppingPolicy::default()).unwrap();
        s.observe("pin", 1).unwrap();
        s.set_tracing(true);
        let next = s.next_action().unwrap().unwrap();
        let other = s
            .actions()
            .iter()
            .find(|c| c.name() != next.action.target())
            .unwrap()
            .action()
            .clone();
        s.apply(&other, Outcome::passing(1)).unwrap();
        assert_eq!(s.applied().len(), 1);
        assert_eq!(s.applied()[0].expected_information_gain, None);
        assert!(
            s.trace().unwrap().steps.is_empty(),
            "unfollowed step dropped"
        );
    }

    #[test]
    fn mixed_candidates_rank_probes_and_tests_together() {
        let compiled = toy_compiled_model();
        let mut s = DiagnosisSession::new(compiled, StoppingPolicy::default()).unwrap();
        s.observe("pin", 1).unwrap();
        s.set_actions([
            Action::test("out1"),
            Action::test("out2"),
            Action::probe("bias"),
        ])
        .unwrap();
        let ranked = s.rank_actions().unwrap();
        assert_eq!(ranked.len(), 3);
        assert!(ranked.iter().any(|c| c.is_probe()));
        assert!(ranked.iter().all(|c| c.expected_information_gain() >= 0.0));
        for pair in ranked.windows(2) {
            assert!(pair[0].score() >= pair[1].score());
        }
    }

    /// Two sessions on one shared compilation diagnosing under
    /// *different* deduction policies: the override changes the
    /// classification (and therefore the candidate verdict) without a
    /// single extra junction-tree compilation.
    #[test]
    fn per_session_policy_overrides_share_one_compilation() {
        use crate::deduce::DeductionPolicy;
        let compiles_before = abbd_bbn::jointree_compile_count();
        let compiled = toy_compiled_model();
        assert_eq!(abbd_bbn::jointree_compile_count() - compiles_before, 1);

        let seed = |s: &mut DiagnosisSession| {
            s.observe("pin", 1).unwrap();
            s.observe("out1", 0).unwrap();
            s.mark_failing("out1");
        };
        let mut default_session =
            DiagnosisSession::new(Arc::clone(&compiled), StoppingPolicy::default()).unwrap();
        seed(&mut default_session);
        let baseline = default_session.diagnose().unwrap();
        let top_mass = baseline.candidates()[0].fault_mass;

        // A policy whose faulty threshold sits just above the top
        // candidate's mass: the same posteriors now classify as
        // ambiguous, not faulty.
        let strict = DeductionPolicy {
            faulty_threshold: (top_mass + 0.01).min(0.99),
            healthy_threshold: 0.01,
            seed_with_best_ambiguous: false,
            ..DeductionPolicy::default()
        };
        let mut strict_session =
            DiagnosisSession::new(Arc::clone(&compiled), StoppingPolicy::default()).unwrap();
        strict_session
            .set_deduction_policy(Some(strict))
            .expect("strict policy is well-formed");
        assert_eq!(strict_session.deduction_policy(), &strict);
        seed(&mut strict_session);
        let overridden = strict_session.diagnose().unwrap();

        assert_eq!(
            baseline.posteriors(),
            overridden.posteriors(),
            "the override must not touch the posterior update"
        );
        assert_ne!(
            baseline.classes(),
            overridden.classes(),
            "different thresholds must classify differently"
        );
        assert_eq!(
            baseline.top_candidate(),
            Some("bias"),
            "default policy indicts the dead bias block"
        );
        assert!(
            !overridden.candidates().iter().any(|c| c.variable == "bias"),
            "no ambiguity seeding + unreachable threshold = no latent indicted"
        );

        // The default session is untouched by its sibling's override, and
        // clearing the override restores the compiled policy.
        assert_eq!(
            default_session.diagnose().unwrap().classes(),
            baseline.classes()
        );
        strict_session.set_deduction_policy(None).unwrap();
        assert_eq!(strict_session.deduction_policy(), compiled.policy());
        assert_eq!(
            strict_session.diagnose().unwrap().classes(),
            baseline.classes()
        );

        // An inverted policy is rejected and leaves the override alone.
        assert!(matches!(
            strict_session.set_deduction_policy(Some(DeductionPolicy {
                faulty_threshold: 0.2,
                healthy_threshold: 0.8,
                ..DeductionPolicy::default()
            })),
            Err(Error::InvalidPolicy(_))
        ));

        // The serde boundary threads the override through `serve`.
        let mut observation = Observation::new();
        observation.set("pin", 1).set("out1", 0);
        observation.mark_failing("out1");
        let mut request = SessionRequest::new(observation);
        request.deduction = Some(strict);
        let report = compiled.serve(&request).unwrap();
        assert!(!report.candidates.iter().any(|c| c.variable == "bias"));
        let json = serde_json::to_string(&request).unwrap();
        let back: SessionRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, request);

        assert_eq!(
            abbd_bbn::jointree_compile_count() - compiles_before,
            1,
            "policy overrides must never recompile the junction tree"
        );
    }

    /// A model where impossible evidence is reachable: `src` is pinned
    /// to state 0 by its prior and `out` mirrors it deterministically,
    /// so observing `out = 1` has probability zero.
    fn deterministic_compiled_model() -> Arc<CompiledModel> {
        use crate::builder::{ExpertKnowledge, ModelBuilder};
        use crate::model::CircuitModel;
        use abbd_dlog2bbn::{FunctionalType, ModelSpec, StateBand, VariableSpec};
        let var = |name: &str, ftype| VariableSpec {
            name: name.into(),
            ftype,
            bands: vec![
                StateBand::new("0", 0.0, 1.0, "bad"),
                StateBand::new("1", 1.0, 2.0, "good"),
            ],
            ckt_ref: None,
        };
        let spec = ModelSpec::new([
            var("src", FunctionalType::Latent),
            var("out", FunctionalType::Observe),
        ])
        .expect("static spec");
        let mut model = CircuitModel::new(spec);
        model.depends("src", "out").expect("static edge");
        let mut expert = ExpertKnowledge::new(10.0);
        expert.cpt("src", [[1.0, 0.0]]);
        expert.cpt("out", [[1.0, 0.0], [0.0, 1.0]]);
        let fitted = ModelBuilder::new(model)
            .with_expert(expert)
            .build_expert_only()
            .expect("deterministic CPTs build");
        CompiledModel::compile(fitted).expect("compiles").shared()
    }

    /// Regression for the stored-session poisoning bug: an observation
    /// that only reveals its inconsistency at propagation time (after
    /// the absorb committed it) must be rolled back, leaving the
    /// session answering exactly as before the failed round.
    #[test]
    fn a_failed_report_phase_rolls_the_session_back() {
        let compiled = deterministic_compiled_model();
        let mut session =
            DiagnosisSession::new(Arc::clone(&compiled), StoppingPolicy::default()).unwrap();

        let mut consistent = Observation::new();
        consistent.set("out", 0);
        let baseline = session
            .serve_round(&SessionRequest::new(consistent.clone()))
            .expect("consistent evidence serves");

        // `out = 1` validates (known variable, in-range state) but has
        // zero probability — the failure happens in the report phase.
        let mut impossible = Observation::new();
        impossible.set("out", 1);
        let err = session
            .serve_round(&SessionRequest::new(impossible))
            .expect_err("impossible evidence must fail the round");
        assert!(
            matches!(err, Error::Bbn(abbd_bbn::Error::ImpossibleEvidence)),
            "unexpected error: {err:?}"
        );

        // The poisoned observation must not linger: the session still
        // answers the consistent round identically, and on a fresh
        // session too (full state equivalence, not just recovery).
        assert_eq!(session.observation().state_of("out"), Some(0));
        let replay = session
            .serve_round(&SessionRequest::new(consistent.clone()))
            .expect("session recovered");
        assert_eq!(replay, baseline);
        let fresh = compiled
            .serve(&SessionRequest::new(consistent))
            .expect("fresh serve");
        assert_eq!(fresh, baseline);
    }

    /// Delta rounds absorb only what is new, answer identically to the
    /// equivalent cumulative full round, and refuse contradictions whole
    /// — the absorb stays transactional, so a failed delta leaves the
    /// session exactly as it was.
    #[test]
    fn delta_rounds_accumulate_and_refuse_contradictions() {
        let compiled = toy_compiled_model();
        let mut session =
            DiagnosisSession::new(Arc::clone(&compiled), StoppingPolicy::default()).unwrap();

        // Round 1: a full round with the controls.
        let mut controls = Observation::new();
        controls.set("pin", 1);
        session
            .serve_round(&SessionRequest::new(controls))
            .expect("controls round serves");

        // Round 2: the delta carries only the new measurement, yet the
        // report matches the cumulative full round on a fresh session.
        let mut new_only = Observation::new();
        new_only.set("out1", 0);
        new_only.mark_failing("out1");
        let delta_report = session
            .serve_round(&SessionRequest::new(new_only).into_delta())
            .expect("delta round serves");
        let mut cumulative = Observation::new();
        cumulative.set("pin", 1).set("out1", 0);
        cumulative.mark_failing("out1");
        let reference = compiled
            .serve(&SessionRequest::new(cumulative.clone()))
            .expect("cumulative serve");
        assert_eq!(delta_report, reference);

        // On a fresh session there is no history to contradict, so a
        // delta behaves exactly like a full round.
        assert_eq!(
            compiled
                .serve(&SessionRequest::new(cumulative).into_delta())
                .expect("fresh delta serve"),
            reference
        );

        // Re-sending an already-stored state is an idempotent no-op...
        let mut same = Observation::new();
        same.set("out1", 0);
        assert_eq!(
            session
                .serve_round(&SessionRequest::new(same).into_delta())
                .expect("idempotent delta"),
            delta_report
        );

        // ...but a contradicting state is refused whole, naming the
        // conflict, and nothing from the rejected delta leaks in.
        let mut conflict = Observation::new();
        conflict.set("out2", 1);
        conflict.set("out1", 1);
        let err = session
            .serve_round(&SessionRequest::new(conflict).into_delta())
            .expect_err("contradicting delta must fail");
        assert_eq!(
            err,
            Error::InconsistentDelta {
                variable: "out1".into(),
                stored: 0,
                requested: 1,
            }
        );
        assert_eq!(session.observation().state_of("out2"), None);
        let replay = session
            .serve_round(&SessionRequest::new(Observation::new()).into_delta())
            .expect("session recovered");
        assert_eq!(replay, delta_report);
    }

    #[test]
    fn serve_round_trips_the_service_boundary() {
        let compiled = toy_compiled_model();
        let mut observation = Observation::new();
        observation.set("pin", 1).set("out1", 0);
        observation.mark_failing("out1");
        let request = SessionRequest::new(observation);
        let report = compiled.serve(&request).unwrap();
        assert_eq!(report.posteriors.len(), 7);
        assert_eq!(report.fault_mass.len(), 3);
        assert_eq!(report.ranked.len(), 2, "out1 is observed, two tests left");
        assert!(report.log_likelihood < 0.0);
        assert_eq!(report.top_candidate.as_deref(), Some("bias"));
        // The boundary is serde-stable in both directions.
        let request_json = serde_json::to_string(&request).unwrap();
        let request_back: SessionRequest = serde_json::from_str(&request_json).unwrap();
        assert_eq!(request_back, request);
        let report_json = serde_json::to_string(&report).unwrap();
        let report_back: SessionReport = serde_json::from_str(&report_json).unwrap();
        assert_eq!(report_back, report);
        // A fully measured, isolated device reports a stop.
        let mut done = Observation::new();
        done.set("pin", 1)
            .set("out1", 0)
            .set("out2", 0)
            .set("out3", 1);
        done.mark_failing("out1");
        done.mark_failing("out2");
        let verdict = compiled.serve(&SessionRequest::new(done)).unwrap();
        assert_eq!(verdict.stop, Some(StopReason::Isolated));
    }
}
