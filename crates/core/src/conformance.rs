//! Conformance replay: one implementation of "does this compiled model
//! still produce the answers we pinned?" shared by the golden-trace test
//! suite and the server-side refit gate.
//!
//! Two layers live here:
//!
//! - [`replay`] / [`verify`]: run a pinned observation through a
//!   [`CompiledModel`] and compare the isolated top candidate against the
//!   expected one. The fleet-learning gate ([`crate::fleet`]) replays its
//!   reference corpus through every refit candidate before promotion.
//! - [`GoldenCorpus`]: byte-for-byte comparison (or regeneration) of
//!   rendered trace files against a directory of golden JSON, extracted
//!   from `tests/golden_traces.rs` so every corpus consumer reports
//!   mismatches identically.

use crate::engine::Observation;
use crate::error::Result;
use crate::session::{CompiledModel, SessionRequest};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// One pinned scenario: an observation and the top candidate the model is
/// expected to isolate from it (when `expected_top` is `None` the case
/// only checks that the replay runs, not what it concludes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplayCase {
    /// Scenario label used in mismatch reports (e.g. `"d1"`).
    pub name: String,
    /// The evidence to absorb in one shot.
    pub observation: Observation,
    /// The fault the model must rank first, if pinned.
    pub expected_top: Option<String>,
}

/// What one [`replay`] concluded.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplayOutcome {
    /// The scenario label, copied from the case.
    pub name: String,
    /// The top-ranked fault candidate under the replayed model.
    pub top_candidate: Option<String>,
    /// Log-likelihood of the case's evidence under the replayed model.
    pub log_likelihood: f64,
    /// Posterior fault mass per latent block after absorbing the evidence.
    pub fault_mass: Vec<(String, f64)>,
}

/// A reference case whose replay disagreed with its pinned expectation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplayMismatch {
    /// The scenario label.
    pub name: String,
    /// What the corpus pinned.
    pub expected: Option<String>,
    /// What the candidate model concluded instead.
    pub got: Option<String>,
}

/// Replays one reference case through a compiled model: absorbs the
/// case's observation in a single session round and reports the resulting
/// isolation.
///
/// # Errors
///
/// Propagates session errors (malformed observations, impossible
/// evidence) from the underlying serve round.
pub fn replay(compiled: &Arc<CompiledModel>, case: &ReplayCase) -> Result<ReplayOutcome> {
    let report = compiled.serve(&SessionRequest::new(case.observation.clone()))?;
    Ok(ReplayOutcome {
        name: case.name.clone(),
        top_candidate: report.top_candidate,
        log_likelihood: report.log_likelihood,
        fault_mass: report.fault_mass,
    })
}

/// Replays every case and collects the ones whose pinned `expected_top`
/// the model no longer reproduces.
///
/// # Errors
///
/// Fails on the first case whose replay itself errors; a case that merely
/// *concludes differently* is returned as a mismatch, not an error.
pub fn verify(compiled: &Arc<CompiledModel>, cases: &[ReplayCase]) -> Result<Vec<ReplayMismatch>> {
    let mut mismatches = Vec::new();
    for case in cases {
        let outcome = replay(compiled, case)?;
        if let Some(expected) = &case.expected_top {
            if outcome.top_candidate.as_deref() != Some(expected.as_str()) {
                mismatches.push(ReplayMismatch {
                    name: case.name.clone(),
                    expected: case.expected_top.clone(),
                    got: outcome.top_candidate,
                });
            }
        }
    }
    Ok(mismatches)
}

/// Builds self-pinned reference cases: each observation is replayed
/// through `compiled` and the *incumbent's own* top candidate becomes the
/// expectation. A refit candidate gated on these cases must agree with
/// the model it replaces on every pinned scenario — a corruption
/// detector, not a quality bar.
///
/// # Errors
///
/// Propagates replay errors (e.g. an observation naming unknown
/// variables).
pub fn self_references<I>(compiled: &Arc<CompiledModel>, scenarios: I) -> Result<Vec<ReplayCase>>
where
    I: IntoIterator<Item = (String, Observation)>,
{
    let mut cases = Vec::new();
    for (name, observation) in scenarios {
        let mut case = ReplayCase {
            name,
            observation,
            expected_top: None,
        };
        let outcome = replay(compiled, &case)?;
        case.expected_top = outcome.top_candidate;
        cases.push(case);
    }
    Ok(cases)
}

/// A directory of golden files with byte-for-byte conformance semantics.
///
/// Construction reads the `ABBD_REGEN_GOLDEN` environment variable once:
/// when set to `1`, [`GoldenCorpus::conform`] rewrites files instead of
/// comparing them, which is how an intentional behavioural change is
/// blessed.
#[derive(Debug, Clone)]
pub struct GoldenCorpus {
    dir: PathBuf,
    regen: bool,
}

impl GoldenCorpus {
    /// Opens a corpus rooted at `dir`, honouring `ABBD_REGEN_GOLDEN=1`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        GoldenCorpus {
            dir: dir.into(),
            regen: std::env::var("ABBD_REGEN_GOLDEN").is_ok_and(|v| v == "1"),
        }
    }

    /// `true` when conform calls rewrite the corpus instead of diffing.
    pub fn regenerating(&self) -> bool {
        self.regen
    }

    /// The corpus root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Absolute path of one corpus entry.
    pub fn path(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }

    /// Compares (or regenerates) one golden file, returning a description
    /// of the mismatch if any: the first diverging line for a content
    /// change, or an unreadable-file note for a missing entry.
    pub fn conform(&self, name: &str, rendered: &str) -> Option<String> {
        let path = self.path(name);
        if self.regen {
            std::fs::create_dir_all(&self.dir).expect("golden dir is creatable");
            std::fs::write(&path, rendered).expect("golden file is writable");
            return None;
        }
        match std::fs::read_to_string(&path) {
            Err(e) => Some(format!("{name}: unreadable ({e}); regenerate the corpus")),
            Ok(stored) if stored == rendered => None,
            Ok(stored) => {
                let diverges = stored
                    .lines()
                    .zip(rendered.lines())
                    .position(|(a, b)| a != b)
                    .map_or_else(
                        || "lengths differ".to_string(),
                        |line| format!("first divergence at line {}", line + 1),
                    );
                Some(format!("{name}: trace diverged ({diverges})"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    fn toy() -> Arc<CompiledModel> {
        fixtures::toy_compiled_model()
    }

    fn toy_observation(compiled: &Arc<CompiledModel>) -> Observation {
        let mut obs = Observation::new();
        for name in compiled.observable_names() {
            obs.set(name, 0);
        }
        obs
    }

    #[test]
    fn replay_reports_an_isolation() {
        let compiled = toy();
        let case = ReplayCase {
            name: "toy".into(),
            observation: toy_observation(&compiled),
            expected_top: None,
        };
        let outcome = replay(&compiled, &case).unwrap();
        assert_eq!(outcome.name, "toy");
        assert!(outcome.log_likelihood.is_finite());
        assert!(!outcome.fault_mass.is_empty());
    }

    #[test]
    fn self_references_pin_the_incumbent_and_verify_clean() {
        let compiled = toy();
        let refs =
            self_references(&compiled, [("toy".to_string(), toy_observation(&compiled))]).unwrap();
        assert_eq!(refs.len(), 1);
        // The incumbent trivially conforms to its own pins.
        assert!(verify(&compiled, &refs).unwrap().is_empty());
        // A wrong pin is reported as a mismatch, not an error.
        let mut wrong = refs;
        wrong[0].expected_top = Some("no-such-block".into());
        let mismatches = verify(&compiled, &wrong).unwrap();
        assert_eq!(mismatches.len(), 1);
        assert_eq!(mismatches[0].expected.as_deref(), Some("no-such-block"));
    }

    #[test]
    fn golden_corpus_diffs_and_reports_first_divergence() {
        let dir =
            std::env::temp_dir().join(format!("abbd-conformance-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let corpus = GoldenCorpus::new(&dir);
        if corpus.regenerating() {
            // Under ABBD_REGEN_GOLDEN=1 conform always rewrites; the diff
            // semantics below are meaningless, so skip.
            return;
        }
        std::fs::write(corpus.path("t.json"), "a\nb\n").unwrap();
        assert!(corpus.conform("t.json", "a\nb\n").is_none());
        let m = corpus.conform("t.json", "a\nc\n").unwrap();
        assert!(m.contains("line 2"), "got: {m}");
        assert!(corpus.conform("missing.json", "x").is_some());
        std::fs::remove_dir_all(&dir).ok();
    }
}
