//! Report rendering: the paper's Table VII layout (model variables, usable
//! states, voltage limits, remarks, and probability columns) plus candidate
//! summaries.

use crate::builder::DiagnosticModel;
use crate::engine::Diagnosis;
use std::fmt::Write as _;

/// Renders a Table VII-style state-probability table: one row per
/// `(variable, state)`, the baseline column, and one column per diagnosis.
///
/// `columns` pairs a short label (e.g. `"d1"`) with a diagnosis.
pub fn render_state_table(
    model: &DiagnosticModel,
    baseline: &[(String, Vec<f64>)],
    columns: &[(&str, &Diagnosis)],
) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{:<12} {:>5} {:>9} {:>9} {:<22} {:>8}",
        "MVar.", "State", "LL(V)", "UL(V)", "Remarks", "Init(%)"
    );
    for (label, _) in columns {
        let _ = write!(out, " {:>7}", format!("{label}(%)"));
    }
    out.push('\n');
    let width = 12 + 1 + 5 + 1 + 9 + 1 + 9 + 1 + 22 + 1 + 8 + columns.len() * 8;
    out.push_str(&"-".repeat(width));
    out.push('\n');

    for v in model.circuit_model().spec().variables() {
        let base = baseline
            .iter()
            .find(|(n, _)| n == &v.name)
            .map(|(_, d)| d.as_slice())
            .unwrap_or(&[]);
        for (s, band) in v.bands.iter().enumerate() {
            let name_cell = if s == 0 { v.name.as_str() } else { "" };
            let init = base.get(s).copied().unwrap_or(f64::NAN) * 100.0;
            let _ = write!(
                out,
                "{:<12} {:>5} {:>9.3} {:>9.3} {:<22} {:>8.1}",
                name_cell,
                band.label,
                band.lo,
                band.hi,
                truncate(&band.remark, 22),
                init
            );
            for (_, diagnosis) in columns {
                let p = diagnosis
                    .posterior_of(&v.name)
                    .and_then(|d| d.get(s))
                    .copied()
                    .unwrap_or(f64::NAN)
                    * 100.0;
                let _ = write!(out, " {p:>7.1}");
            }
            out.push('\n');
        }
    }
    out
}

/// Renders the ranked candidate list of one diagnosis.
pub fn render_candidates(diagnosis: &Diagnosis) -> String {
    if diagnosis.candidates().is_empty() {
        return "no failing block candidates (observation consistent with a healthy device)\n"
            .to_string();
    }
    let mut out = String::from("rank  candidate     fault-mass  class\n");
    for (i, c) in diagnosis.candidates().iter().enumerate() {
        let _ = writeln!(
            out,
            "{:>4}  {:<12} {:>10.3}  {:?}",
            i + 1,
            c.variable,
            c.fault_mass,
            c.class
        );
    }
    out
}

fn truncate(text: &str, max: usize) -> String {
    if text.len() <= max {
        text.to_string()
    } else {
        format!(
            "{}…",
            &text[..text
                .char_indices()
                .take(max - 1)
                .last()
                .map(|(i, c)| i + c.len_utf8())
                .unwrap_or(0)]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{ExpertKnowledge, ModelBuilder};
    use crate::engine::{DiagnosticEngine, Observation};
    use crate::model::CircuitModel;
    use abbd_dlog2bbn::{FunctionalType, ModelSpec, StateBand, VariableSpec};

    fn engine() -> DiagnosticEngine {
        let spec = ModelSpec::new([
            VariableSpec {
                name: "bias".into(),
                ftype: FunctionalType::Latent,
                bands: vec![
                    StateBand::new("0", 0.0, 1.0, "non operational"),
                    StateBand::new("1", 1.0, 1.4, "nominal operating"),
                ],
                ckt_ref: None,
            },
            VariableSpec {
                name: "out".into(),
                ftype: FunctionalType::Observe,
                bands: vec![
                    StateBand::new("0", 0.0, 4.5, "out of regulation with long remark"),
                    StateBand::new("1", 4.5, 5.5, "in regulation"),
                ],
                ckt_ref: None,
            },
        ])
        .unwrap();
        let mut m = CircuitModel::new(spec);
        m.depends("bias", "out").unwrap();
        let mut e = ExpertKnowledge::new(5.0);
        e.cpt("bias", [[0.2, 0.8]]);
        e.cpt("out", [[0.9, 0.1], [0.1, 0.9]]);
        let dm = ModelBuilder::new(m)
            .with_expert(e)
            .build_expert_only()
            .unwrap();
        DiagnosticEngine::new(dm).unwrap()
    }

    #[test]
    fn table_contains_all_rows_and_columns() {
        let eng = engine();
        let baseline = eng.baseline().unwrap();
        let mut obs = Observation::new();
        obs.set("out", 0);
        let d = eng.diagnose(&obs).unwrap();
        let table = render_state_table(eng.model(), &baseline, &[("d1", &d)]);
        assert!(table.contains("bias"));
        assert!(table.contains("out"));
        assert!(table.contains("d1(%)"));
        assert!(table.contains("Init(%)"));
        // 4 state rows + header + separator
        assert_eq!(table.lines().count(), 6);
        // The observed state shows 100%.
        let out0_row = table
            .lines()
            .find(|l| l.contains("out of regulation"))
            .unwrap();
        assert!(out0_row.contains("100.0"), "row: {out0_row}");
    }

    #[test]
    fn candidates_rendering() {
        let eng = engine();
        let mut obs = Observation::new();
        obs.set("out", 0);
        let d = eng.diagnose(&obs).unwrap();
        let text = render_candidates(&d);
        assert!(text.contains("bias"));
        assert!(text.contains("rank"));

        let mut ok = Observation::new();
        ok.set("out", 1);
        let healthy = eng.diagnose(&ok).unwrap();
        let text = render_candidates(&healthy);
        assert!(text.contains("healthy"));
    }

    #[test]
    fn truncate_helper() {
        assert_eq!(truncate("short", 10), "short");
        let long = truncate("a very long remark indeed", 10);
        assert!(long.chars().count() <= 11);
        assert!(long.ends_with('…'));
    }
}
