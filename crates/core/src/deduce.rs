//! Automated candidate deduction — the paper's §IV-B backward iteration
//! ("with the knowledge of probability values for all non-observable
//! blocks, in combination with parent–child relationships, a common parent
//! block can be iteratively deduced…") formalised as a thresholded
//! root-cause walk with explaining-away.
//!
//! The procedure:
//!
//! 1. classify every latent block by its posterior fault-state mass:
//!    `FAULTY` above the faulty threshold, `HEALTHY` below the healthy
//!    threshold, `AMBIGUOUS` between;
//! 2. collect suspects: every `FAULTY` latent (seed) plus all non-healthy
//!    latent ancestors reachable from seeds through latent variables;
//! 3. *exonerate by explanation*: prune a suspect whenever the probability
//!    that **at least one of its latent ancestors is faulty** reaches the
//!    faulty threshold — its failure is then an expected consequence, and
//!    "the suspicion falls back to the parent" exactly as in the paper;
//! 4. add a *self-candidate* for any observable block whose measurement
//!    failed but whose latent ancestry is likely healthy (the block itself
//!    is broken);
//! 5. rank the survivors by fault mass.
//!
//! With the default thresholds this reproduces the paper's candidate lists
//! for all five regulator case studies (d1 → `{warnvpst, hcbg}`, d2 →
//! `{enb13}`, d3 → `{warnvpst}`, d4 → `{lcbg}`, d5 → `{enbsw}`).

use crate::error::{Error, Result};
use crate::model::CircuitModel;
use abbd_bbn::{Evidence, Network, VarId, VariableElimination};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Health classification of a latent block under a diagnosis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HealthClass {
    /// Fault mass at or above the faulty threshold.
    Faulty,
    /// Fault mass between the thresholds.
    Ambiguous,
    /// Fault mass at or below the healthy threshold.
    Healthy,
}

/// Thresholds of the deduction walk.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeductionPolicy {
    /// Fault-state posterior mass at or above which a block is FAULTY.
    pub faulty_threshold: f64,
    /// Fault-state posterior mass at or below which a block is HEALTHY.
    pub healthy_threshold: f64,
    /// When no latent reaches the faulty threshold, seed the walk with the
    /// highest-mass ambiguous latent instead of reporting nothing.
    pub seed_with_best_ambiguous: bool,
    /// Joint tables larger than this fall back to an independence
    /// approximation when computing ancestor-disjunction probabilities.
    pub max_joint_cells: usize,
}

impl Default for DeductionPolicy {
    fn default() -> Self {
        DeductionPolicy {
            faulty_threshold: 0.55,
            healthy_threshold: 0.35,
            seed_with_best_ambiguous: true,
            max_joint_cells: 1 << 16,
        }
    }
}

impl DeductionPolicy {
    /// Validates threshold consistency.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidPolicy`] when thresholds are out of `[0, 1]`
    /// or inverted.
    pub fn validate(&self) -> Result<()> {
        let ok_range = |x: f64| (0.0..=1.0).contains(&x);
        if !ok_range(self.faulty_threshold) || !ok_range(self.healthy_threshold) {
            return Err(Error::InvalidPolicy("thresholds must lie in [0, 1]".into()));
        }
        if self.healthy_threshold >= self.faulty_threshold {
            return Err(Error::InvalidPolicy(
                "healthy threshold must be below the faulty threshold".into(),
            ));
        }
        if self.max_joint_cells == 0 {
            return Err(Error::InvalidPolicy(
                "max_joint_cells must be positive".into(),
            ));
        }
        Ok(())
    }

    /// Classifies a fault-mass value.
    pub fn classify(&self, fault_mass: f64) -> HealthClass {
        if fault_mass >= self.faulty_threshold {
            HealthClass::Faulty
        } else if fault_mass <= self.healthy_threshold {
            HealthClass::Healthy
        } else {
            HealthClass::Ambiguous
        }
    }
}

/// One ranked fail candidate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Candidate {
    /// Model-variable name of the suspected block.
    pub variable: String,
    /// For latent candidates: posterior mass on fault states. For
    /// observable self-candidates: confidence that no upstream block
    /// explains the failure.
    pub fault_mass: f64,
    /// Classification that put it on the list (`Faulty` for observable
    /// self-candidates).
    pub class: HealthClass,
    /// Probability that at least one latent ancestor is faulty — the
    /// explaining-away pressure this candidate survived.
    pub ancestor_fault_probability: f64,
    /// How strongly the block's fault state is already implied by its
    /// *inputs being what they are* (controls at their observed values,
    /// latent parents healthy) — condition pressure this candidate
    /// survived.
    pub conditional_fault_expectation: f64,
}

/// CPT-level fault expectation of `variable` given its parents' *benign*
/// configuration: control/observable parents take their observed (or most
/// probable) states, latent parents take their most probable **non-fault**
/// state. A high value means the block is expected to sit in a fault-band
/// state purely because of the test conditions — the paper's
/// "non-operational because the stimulus says so" situation (e.g. every
/// enable is off when the pins are grounded), which must not produce a
/// candidate.
///
/// # Errors
///
/// Propagates inference errors.
pub fn conditional_fault_expectation(
    model: &CircuitModel,
    network: &Network,
    evidence: &Evidence,
    variable: &str,
) -> Result<f64> {
    let var = network
        .var(variable)
        .ok_or_else(|| Error::UnknownVariable(variable.into()))?;
    let parents = network.parents(var).to_vec();
    if parents.is_empty() {
        return Ok(0.0);
    }
    let ve = VariableElimination::new(network);
    let mut parent_states = Vec::with_capacity(parents.len());
    for p in &parents {
        let p_name = network.name(*p).to_string();
        let is_latent = model.latents().iter().any(|l| *l == p_name);
        let state = if let Some(s) = evidence.state_of(*p) {
            s
        } else {
            let posterior = ve.posterior(evidence, *p).map_err(Error::Bbn)?;
            if is_latent {
                // Most probable non-fault state.
                let faults = model.fault_states(&p_name);
                posterior
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| !faults.contains(i))
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            } else {
                posterior
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            }
        };
        parent_states.push(state);
    }
    let row = network.cpt_row(var, &parent_states).map_err(Error::Bbn)?;
    Ok(model
        .fault_states(variable)
        .iter()
        .filter_map(|&s| row.get(s))
        .sum())
}

/// Probability that at least one latent ancestor of `variable` is in a
/// fault state, given the evidence. Exact via a joint marginal when the
/// ancestor state space fits `policy.max_joint_cells`; otherwise an
/// independence approximation over the single-variable posteriors.
///
/// # Errors
///
/// Propagates inference errors.
pub fn ancestor_fault_probability(
    model: &CircuitModel,
    network: &Network,
    evidence: &Evidence,
    variable: &str,
    policy: &DeductionPolicy,
) -> Result<f64> {
    let ancestors = model.latent_ancestors(variable);
    if ancestors.is_empty() {
        return Ok(0.0);
    }
    let ids: Vec<VarId> = ancestors
        .iter()
        .map(|a| {
            network
                .var(a)
                .ok_or_else(|| Error::UnknownVariable(a.clone()))
        })
        .collect::<Result<_>>()?;
    let cells: usize = ids.iter().map(|v| network.card(*v)).product();
    let ve = VariableElimination::new(network);
    if cells <= policy.max_joint_cells {
        let joint = ve.joint_marginal(evidence, &ids).map_err(Error::Bbn)?;
        // P(all ancestors healthy): sum cells where every ancestor avoids
        // its fault states.
        let fault_sets: Vec<Vec<usize>> = ancestors.iter().map(|a| model.fault_states(a)).collect();
        let mut healthy = 0.0;
        for (idx, p) in joint.values().iter().enumerate() {
            let assignment = joint.assignment_of(idx);
            let all_ok = assignment
                .iter()
                .zip(&fault_sets)
                .all(|(s, faults)| !faults.contains(s));
            if all_ok {
                healthy += p;
            }
        }
        Ok((1.0 - healthy).clamp(0.0, 1.0))
    } else {
        let mut healthy = 1.0;
        for (a, id) in ancestors.iter().zip(&ids) {
            let post = ve.posterior(evidence, *id).map_err(Error::Bbn)?;
            let mass: f64 = model
                .fault_states(a)
                .iter()
                .filter_map(|&s| post.get(s))
                .sum();
            healthy *= 1.0 - mass.clamp(0.0, 1.0);
        }
        Ok((1.0 - healthy).clamp(0.0, 1.0))
    }
}

/// Runs the deduction over per-latent fault masses.
///
/// * `fault_mass` maps every latent variable to its posterior fault-state
///   mass (computed by the diagnostic engine).
/// * `failing_observables` lists observable variables whose source
///   measurement failed its ATE limits — candidates of last resort.
///
/// # Errors
///
/// Returns [`Error::InvalidPolicy`] for malformed thresholds and
/// propagates inference errors from the exoneration queries.
pub fn deduce_candidates(
    model: &CircuitModel,
    network: &Network,
    evidence: &Evidence,
    fault_mass: &BTreeMap<String, f64>,
    failing_observables: &[String],
    policy: &DeductionPolicy,
) -> Result<Vec<Candidate>> {
    policy.validate()?;

    let classes: BTreeMap<&str, HealthClass> = fault_mass
        .iter()
        .map(|(name, &mass)| (name.as_str(), policy.classify(mass)))
        .collect();
    let class_of = |name: &str| classes.get(name).copied().unwrap_or(HealthClass::Healthy);

    // Seeds: faulty latents; fallback to the single worst ambiguous latent.
    let mut seeds: Vec<&str> = fault_mass
        .iter()
        .filter(|(name, _)| class_of(name) == HealthClass::Faulty)
        .map(|(name, _)| name.as_str())
        .collect();
    if seeds.is_empty() && policy.seed_with_best_ambiguous {
        if let Some((best, _)) = fault_mass
            .iter()
            .filter(|(name, _)| class_of(name) == HealthClass::Ambiguous)
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("fault mass has no NaN"))
        {
            seeds.push(best.as_str());
        }
    }

    // Walk upwards through non-healthy latent ancestors.
    let mut suspects: Vec<&str> = Vec::new();
    let mut stack: Vec<&str> = seeds.clone();
    while let Some(v) = stack.pop() {
        if !suspects.contains(&v) {
            suspects.push(v);
            for anc in model.latent_ancestors(v) {
                if let Some((key, _)) = fault_mass.get_key_value(&anc) {
                    if class_of(key) != HealthClass::Healthy && !suspects.contains(&key.as_str()) {
                        stack.push(key.as_str());
                    }
                }
            }
        }
    }

    // Exonerate suspects explained by their ancestry or by the test
    // conditions themselves.
    let mut candidates: Vec<Candidate> = Vec::new();
    for &v in &suspects {
        let p_anc = ancestor_fault_probability(model, network, evidence, v, policy)?;
        let p_cond = conditional_fault_expectation(model, network, evidence, v)?;
        if p_anc < policy.faulty_threshold && p_cond < policy.faulty_threshold {
            candidates.push(Candidate {
                variable: v.to_string(),
                fault_mass: fault_mass[v],
                class: class_of(v),
                ancestor_fault_probability: p_anc,
                conditional_fault_expectation: p_cond,
            });
        }
    }
    candidates.sort_by(|a, b| {
        b.fault_mass
            .partial_cmp(&a.fault_mass)
            .expect("fault mass has no NaN")
    });

    // Self-candidates: failing observables with healthy-looking ancestry
    // whose failure is not the expected outcome of the conditions.
    let mut self_candidates: Vec<Candidate> = Vec::new();
    for name in failing_observables {
        let p_anc = ancestor_fault_probability(model, network, evidence, name, policy)?;
        let p_cond = conditional_fault_expectation(model, network, evidence, name)?;
        if p_anc < policy.faulty_threshold && p_cond < policy.faulty_threshold {
            self_candidates.push(Candidate {
                variable: name.clone(),
                fault_mass: 1.0 - p_anc,
                class: HealthClass::Faulty,
                ancestor_fault_probability: p_anc,
                conditional_fault_expectation: p_cond,
            });
        }
    }
    self_candidates.sort_by(|a, b| {
        b.fault_mass
            .partial_cmp(&a.fault_mass)
            .expect("fault mass has no NaN")
    });
    candidates.extend(self_candidates);
    Ok(candidates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{ExpertKnowledge, ModelBuilder};
    use abbd_dlog2bbn::{FunctionalType, ModelSpec, StateBand, VariableSpec};

    /// A miniature of the regulator's latent chain:
    /// root -> mid -> {leaf_a, leaf_b} (all latent), leaves drive one
    /// observable each, plus `obs_c` driven directly by `root`.
    fn model() -> CircuitModel {
        let var = |name: &str, ftype| VariableSpec {
            name: name.into(),
            ftype,
            bands: vec![
                StateBand::new("0", 0.0, 1.0, "non-operational"),
                StateBand::new("1", 1.0, 2.0, "operational"),
            ],
            ckt_ref: None,
        };
        let spec = ModelSpec::new([
            var("root", FunctionalType::Latent),
            var("mid", FunctionalType::Latent),
            var("leaf_a", FunctionalType::Latent),
            var("leaf_b", FunctionalType::Latent),
            var("obs_a", FunctionalType::Observe),
            var("obs_b", FunctionalType::Observe),
            var("obs_c", FunctionalType::Observe),
        ])
        .unwrap();
        let mut m = CircuitModel::new(spec);
        m.depends("root", "mid").unwrap();
        m.depends("mid", "leaf_a").unwrap();
        m.depends("mid", "leaf_b").unwrap();
        m.depends("leaf_a", "obs_a").unwrap();
        m.depends("leaf_b", "obs_b").unwrap();
        m.depends("root", "obs_c").unwrap();
        m
    }

    fn network(m: &CircuitModel) -> Network {
        let mut e = ExpertKnowledge::new(10.0);
        e.cpt("root", [[0.05, 0.95]]);
        e.cpt("mid", [[0.97, 0.03], [0.05, 0.95]]);
        e.cpt("leaf_a", [[0.95, 0.05], [0.05, 0.95]]);
        e.cpt("leaf_b", [[0.95, 0.05], [0.05, 0.95]]);
        e.cpt("obs_a", [[0.97, 0.03], [0.03, 0.97]]);
        e.cpt("obs_b", [[0.97, 0.03], [0.03, 0.97]]);
        e.cpt("obs_c", [[0.97, 0.03], [0.03, 0.97]]);
        ModelBuilder::new(m.clone())
            .with_expert(e)
            .build_expert_only()
            .unwrap()
            .network()
            .clone()
    }

    fn masses(pairs: &[(&str, f64)]) -> BTreeMap<String, f64> {
        pairs.iter().map(|(n, m)| (n.to_string(), *m)).collect()
    }

    fn evidence_for(net: &Network, pairs: &[(&str, usize)]) -> Evidence {
        let mut e = Evidence::new();
        for (n, s) in pairs {
            e.observe(net.var(n).unwrap(), *s);
        }
        e
    }

    #[test]
    fn policy_validation() {
        assert!(DeductionPolicy::default().validate().is_ok());
        let bad = DeductionPolicy {
            faulty_threshold: 0.3,
            healthy_threshold: 0.5,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        let oob = DeductionPolicy {
            faulty_threshold: 1.5,
            ..Default::default()
        };
        assert!(oob.validate().is_err());
        let zero = DeductionPolicy {
            max_joint_cells: 0,
            ..Default::default()
        };
        assert!(zero.validate().is_err());
        let p = DeductionPolicy::default();
        assert_eq!(p.classify(0.9), HealthClass::Faulty);
        assert_eq!(p.classify(0.45), HealthClass::Ambiguous);
        assert_eq!(p.classify(0.1), HealthClass::Healthy);
    }

    #[test]
    fn single_faulty_leaf_with_healthy_parents_is_the_candidate() {
        // Mirrors paper cases d2/d5: obs_a fails, obs_b and obs_c fine.
        let m = model();
        let net = network(&m);
        let ev = evidence_for(&net, &[("obs_a", 0), ("obs_b", 1), ("obs_c", 1)]);
        let fm = masses(&[
            ("root", 0.02),
            ("mid", 0.05),
            ("leaf_a", 0.95),
            ("leaf_b", 0.03),
        ]);
        let c = deduce_candidates(
            &m,
            &net,
            &ev,
            &fm,
            &["obs_a".into()],
            &DeductionPolicy::default(),
        )
        .unwrap();
        assert_eq!(c[0].variable, "leaf_a");
        assert_eq!(c[0].class, HealthClass::Faulty);
        // obs_a is explained by leaf_a, so no self-candidate for it.
        assert!(!c.iter().any(|x| x.variable == "obs_a"), "{c:?}");
    }

    #[test]
    fn faulty_siblings_fall_back_to_ambiguous_parent_chain() {
        // Mirrors paper case d1: both leaves look faulty, mid and root are
        // ambiguous -> the ambiguous ancestors are reported, leaves pruned
        // because their ancestor disjunction is high.
        let m = model();
        let net = network(&m);
        let ev = evidence_for(&net, &[("obs_a", 0), ("obs_b", 0)]);
        let fm = masses(&[
            ("root", 0.45),
            ("mid", 0.48),
            ("leaf_a", 0.9),
            ("leaf_b", 0.88),
        ]);
        let c = deduce_candidates(&m, &net, &ev, &fm, &[], &DeductionPolicy::default()).unwrap();
        let names: Vec<&str> = c.iter().map(|c| c.variable.as_str()).collect();
        // Under this evidence, P(root bad or mid bad) is high (both failing
        // leaves), so the leaves are pruned; mid survives only if its own
        // ancestor disjunction (root alone) stays below threshold.
        assert!(!names.contains(&"leaf_a"), "{names:?}");
        assert!(!names.contains(&"leaf_b"), "{names:?}");
        assert!(
            names.contains(&"mid") || names.contains(&"root"),
            "{names:?}"
        );
    }

    #[test]
    fn clearly_faulty_root_explains_everything() {
        // Mirrors paper case d4: root is implicated by obs_c too.
        let m = model();
        let net = network(&m);
        let ev = evidence_for(&net, &[("obs_a", 0), ("obs_b", 0), ("obs_c", 0)]);
        let fm = masses(&[
            ("root", 0.9),
            ("mid", 0.92),
            ("leaf_a", 0.95),
            ("leaf_b", 0.93),
        ]);
        let c = deduce_candidates(&m, &net, &ev, &fm, &[], &DeductionPolicy::default()).unwrap();
        assert_eq!(c.len(), 1, "{c:?}");
        assert_eq!(c[0].variable, "root");
        assert_eq!(c[0].ancestor_fault_probability, 0.0);
    }

    #[test]
    fn lone_observable_failure_becomes_self_candidate() {
        let m = model();
        let net = network(&m);
        // Everything healthy upstream; obs_a failed its limits anyway.
        let ev = evidence_for(&net, &[("obs_a", 1), ("obs_b", 1), ("obs_c", 1)]);
        let fm = masses(&[
            ("root", 0.02),
            ("mid", 0.03),
            ("leaf_a", 0.04),
            ("leaf_b", 0.03),
        ]);
        let c = deduce_candidates(
            &m,
            &net,
            &ev,
            &fm,
            &["obs_a".into()],
            &DeductionPolicy::default(),
        )
        .unwrap();
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].variable, "obs_a");
        assert!(c[0].fault_mass > 0.8);
    }

    #[test]
    fn all_healthy_yields_no_candidates() {
        let m = model();
        let net = network(&m);
        let ev = evidence_for(&net, &[("obs_a", 1), ("obs_b", 1), ("obs_c", 1)]);
        let fm = masses(&[
            ("root", 0.05),
            ("mid", 0.04),
            ("leaf_a", 0.03),
            ("leaf_b", 0.02),
        ]);
        let c = deduce_candidates(&m, &net, &ev, &fm, &[], &DeductionPolicy::default()).unwrap();
        assert!(c.is_empty());
    }

    #[test]
    fn ambiguous_fallback_seed() {
        let m = model();
        let net = network(&m);
        // obs_b and obs_c pass, which exonerates mid and root; obs_a's
        // failure leaves leaf_a merely ambiguous.
        let ev = evidence_for(&net, &[("obs_a", 0), ("obs_b", 1), ("obs_c", 1)]);
        let fm = masses(&[
            ("root", 0.1),
            ("mid", 0.2),
            ("leaf_a", 0.5),
            ("leaf_b", 0.1),
        ]);
        let with = deduce_candidates(&m, &net, &ev, &fm, &[], &DeductionPolicy::default()).unwrap();
        assert_eq!(with.len(), 1);
        assert_eq!(with[0].variable, "leaf_a");
        assert_eq!(with[0].class, HealthClass::Ambiguous);

        let without = deduce_candidates(
            &m,
            &net,
            &ev,
            &fm,
            &[],
            &DeductionPolicy {
                seed_with_best_ambiguous: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(without.is_empty());
    }

    #[test]
    fn approximate_and_exact_disjunction_agree_roughly() {
        let m = model();
        let net = network(&m);
        let ev = evidence_for(&net, &[("obs_a", 0), ("obs_b", 0)]);
        let exact =
            ancestor_fault_probability(&m, &net, &ev, "leaf_a", &DeductionPolicy::default())
                .unwrap();
        let approx = ancestor_fault_probability(
            &m,
            &net,
            &ev,
            "leaf_a",
            &DeductionPolicy {
                max_joint_cells: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            (exact - approx).abs() < 0.25,
            "exact {exact} vs approx {approx}"
        );
        // No latent ancestors -> zero.
        let root =
            ancestor_fault_probability(&m, &net, &ev, "root", &DeductionPolicy::default()).unwrap();
        assert_eq!(root, 0.0);
    }
}
