//! Property tests for the sequential adaptive diagnoser: over random
//! models, random device responses and random fixed orders, a sequential
//! run that never stops early must land exactly where the one-shot
//! diagnosis of the full observation lands.

use abbd_core::{
    Action, CircuitModel, DiagnosisSession, DiagnosticEngine, Error, ModelBuilder, Observation,
    Outcome, StoppingPolicy,
};
use abbd_dlog2bbn::{FunctionalType, ModelSpec, StateBand, VariableSpec};
use proptest::prelude::*;
use std::sync::Arc;

const OUTS: [&str; 3] = ["out1", "out2", "out3"];

/// pin (control) -> bias (latent) -> {out1, out2}; load (latent) -> out2;
/// aux (latent) -> out3 — with every CPT row parameterised by `raw`.
fn engine_from(raw: &[f64]) -> DiagnosticEngine {
    let var = |name: &str, ftype| VariableSpec {
        name: name.into(),
        ftype,
        bands: vec![
            StateBand::new("0", 0.0, 1.0, "bad"),
            StateBand::new("1", 1.0, 2.0, "good"),
        ],
        ckt_ref: None,
    };
    let spec = ModelSpec::new([
        var("pin", FunctionalType::Control),
        var("bias", FunctionalType::Latent),
        var("load", FunctionalType::Latent),
        var("aux", FunctionalType::Latent),
        var("out1", FunctionalType::Observe),
        var("out2", FunctionalType::Observe),
        var("out3", FunctionalType::Observe),
    ])
    .unwrap();
    let mut m = CircuitModel::new(spec);
    m.depends("pin", "bias").unwrap();
    m.depends("bias", "out1").unwrap();
    m.depends("bias", "out2").unwrap();
    m.depends("load", "out2").unwrap();
    m.depends("aux", "out3").unwrap();

    let p = |i: usize| raw[i % raw.len()];
    let row = |i: usize| [p(i), 1.0 - p(i)];
    let mut e = abbd_core::ExpertKnowledge::new(10.0);
    e.cpt("pin", [[0.5, 0.5]]);
    e.cpt("bias", [row(0), row(1)]);
    e.cpt("load", [row(2)]);
    e.cpt("aux", [row(3)]);
    e.cpt("out1", [row(4), row(5)]);
    e.cpt("out2", [row(6), row(7), row(8), row(9)]);
    e.cpt("out3", [row(10), row(11)]);
    let dm = ModelBuilder::new(m)
        .with_expert(e)
        .build_expert_only()
        .unwrap();
    DiagnosticEngine::new(dm).unwrap()
}

/// The full observation a device with outputs `outs` under `pin` yields
/// (state 0 marked failing, the usual "band 0 is non-operational" rule).
fn full_observation(pin: usize, outs: &[usize]) -> Observation {
    let mut obs = Observation::new();
    obs.set("pin", pin);
    for (name, &state) in OUTS.iter().zip(outs) {
        obs.set(*name, state);
        if state == 0 {
            obs.mark_failing(*name);
        }
    }
    obs
}

fn device_oracle(outs: Vec<usize>) -> impl FnMut(&Action) -> Result<Outcome, Error> {
    move |action| {
        let i = OUTS.iter().position(|v| *v == action.target()).unwrap();
        Ok(Outcome {
            state: outs[i],
            failing: outs[i] == 0,
        })
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..Default::default() })]

    /// Threshold 1.0, no gain floor, full measurement budget: the
    /// adaptive loop applies every test (in whatever order it likes) and
    /// must reproduce the one-shot diagnosis of the full program exactly.
    #[test]
    fn exhaustive_adaptive_run_equals_one_shot_diagnosis(
        raw in proptest::collection::vec(0.05f64..0.95, 12),
        outs in proptest::collection::vec(0usize..2, 3),
        pin in 0usize..2,
    ) {
        let engine = engine_from(&raw);
        let mut d = DiagnosisSession::new(Arc::clone(engine.compiled()), StoppingPolicy::exhaustive()).unwrap();
        d.observe("pin", pin).unwrap();
        let outcome = d.run(device_oracle(outs.clone())).unwrap();
        prop_assert_eq!(outcome.tests_used(), 3);

        let one_shot = engine.diagnose(&full_observation(pin, &outs)).unwrap();
        prop_assert_eq!(outcome.diagnosis.posteriors(), one_shot.posteriors());
        prop_assert_eq!(outcome.diagnosis.fault_mass(), one_shot.fault_mass());
        prop_assert!(
            (outcome.diagnosis.log_likelihood() - one_shot.log_likelihood()).abs() < 1e-12
        );
        // Candidate *sets* agree (order can differ with tied fault mass).
        let mut a: Vec<&str> = outcome
            .diagnosis
            .candidates()
            .iter()
            .map(|c| c.variable.as_str())
            .collect();
        let mut b: Vec<&str> = one_shot
            .candidates()
            .iter()
            .map(|c| c.variable.as_str())
            .collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    /// The scripted (fixed-order) runner under the same never-stop policy
    /// agrees too, for any permutation of the program.
    #[test]
    fn exhaustive_scripted_run_equals_one_shot_diagnosis(
        raw in proptest::collection::vec(0.05f64..0.95, 12),
        outs in proptest::collection::vec(0usize..2, 3),
        first in 0usize..3,
    ) {
        let engine = engine_from(&raw);
        let mut order: Vec<&str> = OUTS.to_vec();
        order.rotate_left(first);
        let mut d = DiagnosisSession::new(Arc::clone(engine.compiled()), StoppingPolicy::exhaustive()).unwrap();
        d.observe("pin", 1).unwrap();
        let outcome = d.run_scripted(&order, device_oracle(outs.clone())).unwrap();
        prop_assert_eq!(outcome.tests_used(), 3);
        let one_shot = engine.diagnose(&full_observation(1, &outs)).unwrap();
        prop_assert_eq!(outcome.diagnosis.posteriors(), one_shot.posteriors());
    }

    /// Stopping early never *invents* evidence: an isolation stop's top
    /// candidate keeps its fault mass above threshold, and gains reported
    /// along the way are non-negative and finite.
    #[test]
    fn early_stops_are_sound(
        raw in proptest::collection::vec(0.05f64..0.95, 12),
        outs in proptest::collection::vec(0usize..2, 3),
        threshold in 0.5f64..0.99,
    ) {
        let engine = engine_from(&raw);
        let policy = StoppingPolicy {
            fault_mass_threshold: threshold,
            max_steps: 32,
            min_gain: 0.0,
        };
        let mut d = DiagnosisSession::new(Arc::clone(engine.compiled()), policy).unwrap();
        d.observe("pin", 1).unwrap();
        let outcome = d.run(device_oracle(outs)).unwrap();
        for step in &outcome.applied {
            let gain = step.expected_information_gain.unwrap();
            prop_assert!(gain.is_finite() && gain >= 0.0);
        }
        if outcome.stop == abbd_core::StopReason::Isolated {
            let top = outcome.diagnosis.candidates().first().unwrap();
            prop_assert!(top.fault_mass >= threshold);
        }
    }
}
