//! Property tests for the cost-aware lookahead planner: over random
//! fitted networks, random device responses and random cost assignments,
//!
//! * depth-1 lookahead under a unit cost model reproduces the myopic
//!   loop's decisions exactly (same measurements, same order, same
//!   outcome);
//! * cost-weighted rankings are invariant under uniform cost scaling
//!   (tester-seconds vs tester-minutes cannot change the plan);
//! * the expectimax value is monotone non-decreasing in lookahead depth
//!   (an extra level of planning can only add discounted non-negative
//!   follow-up value).

use abbd_core::{
    Action, CircuitModel, CostModel, DiagnosisSession, DiagnosticEngine, Error, LookaheadPlanner,
    ModelBuilder, Observation, Outcome, StoppingPolicy, Strategy,
};
use abbd_dlog2bbn::{FunctionalType, ModelSpec, StateBand, VariableSpec};
use proptest::prelude::*;
use std::sync::Arc;

const OUTS: [&str; 3] = ["out1", "out2", "out3"];

/// pin (control) -> bias (latent) -> {out1, out2}; load (latent) -> out2;
/// aux (latent) -> out3 — with every CPT row parameterised by `raw` (the
/// same randomised family as the sequential equivalence suite).
fn engine_from(raw: &[f64]) -> DiagnosticEngine {
    let var = |name: &str, ftype| VariableSpec {
        name: name.into(),
        ftype,
        bands: vec![
            StateBand::new("0", 0.0, 1.0, "bad"),
            StateBand::new("1", 1.0, 2.0, "good"),
        ],
        ckt_ref: None,
    };
    let spec = ModelSpec::new([
        var("pin", FunctionalType::Control),
        var("bias", FunctionalType::Latent),
        var("load", FunctionalType::Latent),
        var("aux", FunctionalType::Latent),
        var("out1", FunctionalType::Observe),
        var("out2", FunctionalType::Observe),
        var("out3", FunctionalType::Observe),
    ])
    .unwrap();
    let mut m = CircuitModel::new(spec);
    m.depends("pin", "bias").unwrap();
    m.depends("bias", "out1").unwrap();
    m.depends("bias", "out2").unwrap();
    m.depends("load", "out2").unwrap();
    m.depends("aux", "out3").unwrap();

    let p = |i: usize| raw[i % raw.len()];
    let row = |i: usize| [p(i), 1.0 - p(i)];
    let mut e = abbd_core::ExpertKnowledge::new(10.0);
    e.cpt("pin", [[0.5, 0.5]]);
    e.cpt("bias", [row(0), row(1)]);
    e.cpt("load", [row(2)]);
    e.cpt("aux", [row(3)]);
    e.cpt("out1", [row(4), row(5)]);
    e.cpt("out2", [row(6), row(7), row(8), row(9)]);
    e.cpt("out3", [row(10), row(11)]);
    let dm = ModelBuilder::new(m)
        .with_expert(e)
        .build_expert_only()
        .unwrap();
    DiagnosticEngine::new(dm).unwrap()
}

fn device_oracle(outs: Vec<usize>) -> impl FnMut(&Action) -> Result<Outcome, Error> {
    move |action| {
        let i = OUTS.iter().position(|v| *v == action.target()).unwrap();
        Ok(Outcome {
            state: outs[i],
            failing: outs[i] == 0,
        })
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..Default::default() })]

    /// `Lookahead { depth: 1 }` with a unit cost model is the myopic loop:
    /// identical measurement choices in identical order, identical stop
    /// reason, identical final posterior.
    #[test]
    fn depth1_unit_cost_lookahead_reproduces_myopic_decisions(
        raw in proptest::collection::vec(0.05f64..0.95, 12),
        outs in proptest::collection::vec(0usize..2, 3),
        pin in 0usize..2,
        threshold in 0.5f64..1.0,
    ) {
        let engine = engine_from(&raw);
        let policy = StoppingPolicy {
            fault_mass_threshold: threshold,
            max_steps: 32,
            min_gain: 0.0,
        };
        let mut myopic = DiagnosisSession::new(Arc::clone(engine.compiled()), policy).unwrap();
        myopic.observe("pin", pin).unwrap();
        let m = myopic.run(device_oracle(outs.clone())).unwrap();

        let mut lookahead = DiagnosisSession::new(Arc::clone(engine.compiled()), policy).unwrap();
        lookahead.set_strategy(Strategy::Lookahead { depth: 1 }).unwrap();
        lookahead.set_cost_model(CostModel::unit()).unwrap();
        lookahead.observe("pin", pin).unwrap();
        let l = lookahead.run(device_oracle(outs)).unwrap();

        prop_assert_eq!(l.stop, m.stop);
        let order = |o: &abbd_core::SequentialOutcome| -> Vec<(String, usize)> {
            o.applied.iter().map(|a| (a.variable.clone(), a.state)).collect()
        };
        prop_assert_eq!(order(&l), order(&m));
        prop_assert_eq!(l.diagnosis.posteriors(), m.diagnosis.posteriors());
        for (a, b) in l.applied.iter().zip(&m.applied) {
            // Depth-1 values are the myopic gains, bit for bit.
            prop_assert_eq!(a.expected_information_gain, b.expected_information_gain);
        }
    }

    /// Scaling every cost by the same positive factor cannot change a
    /// cost-weighted ranking: tester-seconds and tester-minutes describe
    /// the same economics.
    #[test]
    fn cost_weighted_ranking_is_invariant_under_uniform_scaling(
        raw in proptest::collection::vec(0.05f64..0.95, 12),
        costs in proptest::collection::vec(0.5f64..8.0, 3),
        factor in 0.001f64..1000.0,
        pin in 0usize..2,
    ) {
        let engine = engine_from(&raw);
        let mut base = CostModel::new(1.0, 2.0, 10.0).unwrap();
        for (name, secs) in OUTS.iter().zip(&costs) {
            base.set_cost(*name, *secs).unwrap();
        }
        let ranking = |cost: CostModel| -> Vec<String> {
            let mut d = DiagnosisSession::new(Arc::clone(engine.compiled()), StoppingPolicy::default()).unwrap();
            d.set_strategy(Strategy::CostWeighted).unwrap();
            d.set_cost_model(cost).unwrap();
            d.observe("pin", pin).unwrap();
            d.rank_actions()
                .unwrap()
                .iter()
                .map(|c| c.name().to_string())
                .collect()
        };
        let original = ranking(base.clone());
        let scaled = ranking(base.scaled(factor).unwrap());
        prop_assert_eq!(original, scaled);
    }

    /// The expectimax value never decreases with depth: each extra level
    /// adds the discounted value of the best follow-up plan, which is
    /// non-negative by construction.
    #[test]
    fn expectimax_value_is_monotone_in_depth(
        raw in proptest::collection::vec(0.05f64..0.95, 12),
        pin in 0usize..2,
    ) {
        let engine = engine_from(&raw);
        let mut obs = Observation::new();
        obs.set("pin", pin);
        let evidence = engine.evidence_from(&obs).unwrap();
        let vars: Vec<_> = OUTS
            .iter()
            .map(|n| engine.model().var(n).unwrap())
            .collect();
        let mut previous: Option<Vec<f64>> = None;
        for depth in 1..=3 {
            let mut planner = LookaheadPlanner::new(engine.compiled(), depth).unwrap();
            let values = planner.values(engine.compiled(), &evidence, &vars).unwrap().to_vec();
            for v in &values {
                prop_assert!(v.is_finite() && *v >= 0.0, "value {v} at depth {depth}");
            }
            if let Some(previous) = &previous {
                for (i, (lo, hi)) in previous.iter().zip(&values).enumerate() {
                    prop_assert!(
                        hi >= lo,
                        "candidate {i}: depth {depth} value {hi} < depth {} value {lo}",
                        depth - 1
                    );
                }
            }
            previous = Some(values);
        }
    }
}
