//! Minimal in-tree replacement for the `bytes` crate: a growable byte
//! buffer ([`BytesMut`]) and the append half of the [`BufMut`] trait, which
//! is all the datalog writer uses.

/// Write interface for growable byte sinks.
pub trait BufMut {
    /// Appends all of `src`.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, b: u8) {
        self.put_slice(&[b]);
    }
}

/// A growable, contiguous byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }

    /// Consumes the buffer, returning the underlying vector.
    pub fn into_vec(self) -> Vec<u8> {
        self.inner
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_read_back() {
        let mut b = BytesMut::with_capacity(8);
        b.put_slice(b"abc");
        b.put_u8(b'!');
        assert_eq!(b.len(), 4);
        assert_eq!(b.to_vec(), b"abc!".to_vec());
        assert_eq!(b.into_vec(), b"abc!".to_vec());
    }
}
