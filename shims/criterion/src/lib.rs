//! Minimal in-tree replacement for the `criterion` benchmark harness.
//!
//! Implements the subset the workspace's benches use: benchmark groups,
//! `bench_function` / `bench_with_input`, `sample_size`, `BenchmarkId`,
//! and the `criterion_group!` / `criterion_main!` macros. Timing is a
//! simple warmup-then-sample loop around `std::time::Instant`; results are
//! printed per bench and can be dumped as machine-readable JSON.
//!
//! Runner behaviour:
//! - `--test` (what `cargo test` passes to `harness = false` bench
//!   targets) runs every closure once and skips timing, so benches cannot
//!   bit-rot without failing the test suite;
//! - a bare (non-flag) CLI argument filters benches by substring;
//! - `CRITERION_JSON=<path>` writes all results to `<path>` as JSON;
//! - `CRITERION_QUICK=1` caps sampling at one round for fast smoke runs.

pub use std::hint::black_box;

use std::time::{Duration, Instant};

/// Identifier for a parameterised bench: renders as `name/param`.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id combining a function name and a parameter display.
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{param}"))
    }

    /// An id from a parameter alone.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{param}"))
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// One measured result.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Group name.
    pub group: String,
    /// Bench id within the group.
    pub bench: String,
    /// Mean wall time per iteration, nanoseconds.
    pub mean_ns: f64,
    /// Median wall time per iteration, nanoseconds.
    pub median_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
    /// Iterations per sample.
    pub iters_per_sample: u64,
}

/// The bench context handed to registered functions.
#[derive(Debug, Default)]
pub struct Criterion {
    test_mode: bool,
    quick: bool,
    filter: Option<String>,
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Builds a context from the process CLI arguments and environment.
    pub fn from_args() -> Self {
        let mut c = Criterion::default();
        for arg in std::env::args().skip(1) {
            if arg == "--test" {
                c.test_mode = true;
            } else if !arg.starts_with('-') {
                c.filter = Some(arg);
            }
        }
        if std::env::var("CRITERION_QUICK").is_ok() {
            c.quick = true;
        }
        c
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Convenience: a group-less bench under the group `""`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        self.benchmark_group("").bench_function(id, f);
        self
    }

    /// All results measured so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Renders every result as a JSON array (machine-readable baseline).
    pub fn results_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(&format!(
                "  {{\"group\": {:?}, \"bench\": {:?}, \"mean_ns\": {:.1}, \"median_ns\": {:.1}, \"samples\": {}, \"iters_per_sample\": {}}}",
                r.group, r.bench, r.mean_ns, r.median_ns, r.samples, r.iters_per_sample
            ));
        }
        out.push_str("\n]\n");
        out
    }

    /// Final reporting: honours `CRITERION_JSON`.
    pub fn final_summary(&self) {
        if self.test_mode {
            println!("criterion-shim: all benches executed once (test mode)");
            return;
        }
        if let Ok(path) = std::env::var("CRITERION_JSON") {
            if let Err(e) = std::fs::write(&path, self.results_json()) {
                eprintln!("criterion-shim: cannot write {path}: {e}");
            } else {
                println!(
                    "criterion-shim: wrote {} results to {path}",
                    self.results.len()
                );
            }
        }
    }

    fn wants(&self, group: &str, bench: &str) -> bool {
        match &self.filter {
            None => true,
            Some(f) => format!("{group}/{bench}").contains(f.as_str()),
        }
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        group: &str,
        bench: &str,
        sample_size: usize,
        mut f: F,
    ) {
        if !self.wants(group, bench) {
            return;
        }
        if self.test_mode {
            let mut b = Bencher {
                mode: Mode::Once,
                iters: 1,
                total: Duration::ZERO,
            };
            f(&mut b);
            println!("test-run {group}/{bench}: ok");
            return;
        }
        // Calibrate: find an iteration count taking >= ~2ms per sample.
        let mut iters: u64 = 1;
        loop {
            let mut b = Bencher {
                mode: Mode::Timed,
                iters,
                total: Duration::ZERO,
            };
            f(&mut b);
            if b.total >= Duration::from_millis(2) || iters >= 1 << 20 {
                break;
            }
            iters *= 4;
        }
        let samples = if self.quick { 3 } else { sample_size };
        let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let mut b = Bencher {
                mode: Mode::Timed,
                iters,
                total: Duration::ZERO,
            };
            f(&mut b);
            per_iter.push(b.total.as_nanos() as f64 / iters as f64);
        }
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let median = per_iter[per_iter.len() / 2];
        println!("bench {group}/{bench}: mean {:.1} ns, median {:.1} ns ({samples} samples x {iters} iters)", mean, median);
        self.results.push(BenchResult {
            group: group.to_string(),
            bench: bench.to_string(),
            mean_ns: mean,
            median_ns: median,
            samples,
            iters_per_sample: iters,
        });
    }
}

/// A named group of related benches.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per bench.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Registers and runs one bench.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        let (name, sample_size) = (self.name.clone(), self.sample_size);
        self.c.run_one(&name, &id.0, sample_size, f);
        self
    }

    /// Registers and runs one bench that receives an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (no-op in the shim; kept for API parity).
    pub fn finish(&mut self) {}
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Once,
    Timed,
}

/// The per-bench timing driver passed to bench closures.
#[derive(Debug)]
pub struct Bencher {
    mode: Mode,
    iters: u64,
    total: Duration,
}

impl Bencher {
    /// Times `routine`, running it `iters` times (once in test mode).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let iters = if self.mode == Mode::Once {
            1
        } else {
            self.iters
        };
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.total = start.elapsed();
    }
}

/// Bundles bench functions under one registration entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Generates `fn main` running every registered group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion {
            quick: true,
            ..Criterion::default()
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("param", 3), &3, |b, n| b.iter(|| n * 2));
        group.finish();
        assert_eq!(c.results().len(), 2);
        assert!(c.results_json().contains("\"bench\": \"param/3\""));
    }
}
