//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! in-tree serde shim. Parses the item's token stream directly (no syn),
//! supports plain structs (named, tuple, unit) and enums (unit, tuple and
//! struct variants), plus the `#[serde(default)]` and `#[serde(skip)]`
//! field attributes. Generic types are rejected with a compile error; the
//! workspace does not derive on any.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone)]
struct Field {
    name: String,
    skip: bool,
    default: bool,
}

#[derive(Debug, Clone)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug, Clone)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum Shape {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Serde flags found in one attribute run: (skip, default).
fn scan_attrs(tokens: &[TokenTree], mut i: usize) -> (usize, bool, bool) {
    let mut skip = false;
    let mut default = false;
    while i + 1 < tokens.len() {
        let is_hash = matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == '#');
        if !is_hash {
            break;
        }
        if let TokenTree::Group(g) = &tokens[i + 1] {
            if g.delimiter() == Delimiter::Bracket {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if let Some(TokenTree::Ident(id)) = inner.first() {
                    if id.to_string() == "serde" {
                        if let Some(TokenTree::Group(args)) = inner.get(1) {
                            for t in args.stream() {
                                if let TokenTree::Ident(flag) = t {
                                    match flag.to_string().as_str() {
                                        "skip" => skip = true,
                                        "default" => default = true,
                                        _ => {}
                                    }
                                }
                            }
                        }
                    }
                }
                i += 2;
                continue;
            }
        }
        break;
    }
    (i, skip, default)
}

/// Skips a `pub` / `pub(...)` visibility prefix.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if matches!(&tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        i += 1;
        if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    i
}

/// Advances past a type expression up to a top-level `,` (angle-depth aware).
fn skip_type(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut depth = 0i32;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
            _ => {}
        }
        i += 1;
    }
    i
}

fn parse_named_fields(group: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let (next, skip, default) = scan_attrs(&tokens, i);
        i = skip_vis(&tokens, next);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => return Err(format!("expected field name, found {other}")),
            None => break,
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("expected `:` after field `{name}`")),
        }
        i = skip_type(&tokens, i);
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        fields.push(Field {
            name,
            skip,
            default,
        });
    }
    Ok(fields)
}

/// Counts top-level comma-separated entries of a tuple field list.
fn tuple_arity(group: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut arity = 1usize;
    let mut depth = 0i32;
    let mut trailing_comma = true;
    for t in &tokens {
        trailing_comma = false;
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                arity += 1;
                trailing_comma = true;
            }
            _ => {}
        }
    }
    if trailing_comma {
        arity -= 1;
    }
    arity
}

fn parse_variants(group: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let (next, _, _) = scan_attrs(&tokens, i);
        i = next;
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => return Err(format!("expected variant name, found {other}")),
            None => break,
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(tuple_arity(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream())?)
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional `= discriminant`.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            while i < tokens.len()
                && !matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',')
            {
                i += 1;
            }
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    loop {
        let (next, _, _) = scan_attrs(&tokens, i);
        i = skip_vis(&tokens, next);
        match tokens.get(i) {
            Some(TokenTree::Ident(id)) => {
                let kw = id.to_string();
                if kw == "struct" || kw == "enum" {
                    break;
                }
                i += 1; // e.g. `#` free-standing idents like `unsafe`? advance defensively
            }
            Some(_) => i += 1,
            None => return Err("no struct/enum found".into()),
        }
    }
    let is_enum = matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "enum");
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected type name".into()),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("cannot derive for generic type `{name}`"));
    }
    match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if is_enum {
                Ok(Shape::Enum {
                    name,
                    variants: parse_variants(g.stream())?,
                })
            } else {
                Ok(Shape::NamedStruct {
                    name,
                    fields: parse_named_fields(g.stream())?,
                })
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis && !is_enum => {
            Ok(Shape::TupleStruct {
                name,
                arity: tuple_arity(g.stream()),
            })
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' && !is_enum => {
            Ok(Shape::UnitStruct { name })
        }
        _ => Err(format!("unsupported item body for `{name}`")),
    }
}

fn gen_serialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let mut body = String::from(
                "let mut entries: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n",
            );
            for f in fields.iter().filter(|f| !f.skip) {
                body.push_str(&format!(
                    "entries.push((\"{0}\".to_string(), ::serde::Serialize::to_value(&self.{0})));\n",
                    f.name
                ));
            }
            body.push_str("::serde::Value::Obj(entries)");
            impl_serialize(name, &body)
        }
        Shape::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                "::serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Arr(vec![{}])", items.join(", "))
            };
            impl_serialize(name, &body)
        }
        Shape::UnitStruct { name } => impl_serialize(name, "::serde::Value::Null"),
        Shape::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::Str(\"{v}\".to_string()),\n",
                        v = v.name
                    )),
                    VariantKind::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("f{i}")).collect();
                        let inner = if *arity == 1 {
                            "::serde::Serialize::to_value(f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Arr(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{v}({binds}) => ::serde::Value::Obj(vec![(\"{v}\".to_string(), {inner})]),\n",
                            v = v.name,
                            binds = binds.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let items: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                format!(
                                    "(\"{0}\".to_string(), ::serde::Serialize::to_value({0}))",
                                    f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Obj(vec![(\"{v}\".to_string(), ::serde::Value::Obj(vec![{items}]))]),\n",
                            v = v.name,
                            binds = binds.join(", "),
                            items = items.join(", ")
                        ));
                    }
                }
            }
            impl_serialize(name, &format!("match self {{\n{arms}\n}}"))
        }
    }
}

fn impl_serialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n  fn to_value(&self) -> ::serde::Value {{\n{body}\n  }}\n}}\n"
    )
}

fn named_field_init(fields: &[Field], ty: &str, source: &str) -> String {
    let mut init = String::new();
    for f in fields {
        if f.skip {
            init.push_str(&format!(
                "{}: ::std::default::Default::default(),\n",
                f.name
            ));
        } else if f.default {
            init.push_str(&format!(
                "{0}: match ::serde::obj_get({source}, \"{0}\") {{ Some(v) => ::serde::Deserialize::from_value(v)?, None => ::std::default::Default::default() }},\n",
                f.name
            ));
        } else {
            init.push_str(&format!(
                "{0}: match ::serde::obj_get({source}, \"{0}\") {{ Some(v) => ::serde::Deserialize::from_value(v)?, None => return Err(::serde::DeError::missing(\"{0}\", \"{ty}\")) }},\n",
                f.name
            ));
        }
    }
    init
}

fn gen_deserialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let body = format!(
                "let entries = value.as_obj().ok_or_else(|| ::serde::DeError::expected(\"object\", \"{name}\"))?;\nOk({name} {{\n{}\n}})",
                named_field_init(fields, name, "entries")
            );
            impl_deserialize(name, &body)
        }
        Shape::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                format!("Ok({name}(::serde::Deserialize::from_value(value)?))")
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                    .collect();
                format!(
                    "let items = value.as_arr().ok_or_else(|| ::serde::DeError::expected(\"array\", \"{name}\"))?;\nif items.len() != {arity} {{ return Err(::serde::DeError::expected(\"array of {arity}\", \"{name}\")); }}\nOk({name}({}))",
                    items.join(", ")
                )
            };
            impl_deserialize(name, &body)
        }
        Shape::UnitStruct { name } => impl_deserialize(name, &format!("Ok({name})")),
        Shape::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                match &v.kind {
                    VariantKind::Unit => unit_arms
                        .push_str(&format!("\"{v}\" => return Ok({name}::{v}),\n", v = v.name)),
                    VariantKind::Tuple(arity) => {
                        let build = if *arity == 1 {
                            format!(
                                "{name}::{}(::serde::Deserialize::from_value(inner)?)",
                                v.name
                            )
                        } else {
                            let items: Vec<String> = (0..*arity)
                                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                                .collect();
                            format!(
                                "{{ let items = inner.as_arr().ok_or_else(|| ::serde::DeError::expected(\"array\", \"{name}\"))?;\nif items.len() != {arity} {{ return Err(::serde::DeError::expected(\"array of {arity}\", \"{name}\")); }}\n{name}::{}({}) }}",
                                v.name,
                                items.join(", ")
                            )
                        };
                        tagged_arms
                            .push_str(&format!("\"{v}\" => return Ok({build}),\n", v = v.name));
                    }
                    VariantKind::Struct(fields) => {
                        tagged_arms.push_str(&format!(
                            "\"{v}\" => {{ let entries = inner.as_obj().ok_or_else(|| ::serde::DeError::expected(\"object\", \"{name}\"))?;\nreturn Ok({name}::{v} {{\n{init}\n}}); }}\n",
                            v = v.name,
                            init = named_field_init(fields, name, "entries")
                        ));
                    }
                }
            }
            let body = format!(
                "if let Some(tag) = value.as_str() {{\n  match tag {{\n{unit_arms}    _ => {{}}\n  }}\n}}\nif let Some(entries) = value.as_obj() {{\n  if entries.len() == 1 {{\n    let (tag, inner) = &entries[0];\n    let _ = inner;\n    match tag.as_str() {{\n{tagged_arms}      _ => {{}}\n    }}\n  }}\n}}\nErr(::serde::DeError::expected(\"variant\", \"{name}\"))"
            );
            impl_deserialize(name, &body)
        }
    }
}

fn impl_deserialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{\n  fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n  }}\n}}\n"
    )
}

/// Derives `serde::Serialize` (shim data model).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_shape(input) {
        Ok(shape) => gen_serialize(&shape).parse().unwrap(),
        Err(e) => compile_error(&format!("derive(Serialize): {e}")),
    }
}

/// Derives `serde::Deserialize` (shim data model).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_shape(input) {
        Ok(shape) => gen_deserialize(&shape).parse().unwrap(),
        Err(e) => compile_error(&format!("derive(Deserialize): {e}")),
    }
}
