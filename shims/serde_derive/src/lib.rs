//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! in-tree serde shim. Parses the item's token stream directly (no syn),
//! supports plain structs (named, tuple, unit) and enums (unit, tuple and
//! struct variants), plus the `#[serde(default)]` and `#[serde(skip)]`
//! field attributes. Generic types are rejected with a compile error; the
//! workspace does not derive on any.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone)]
struct Field {
    name: String,
    skip: bool,
    default: bool,
}

#[derive(Debug, Clone)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug, Clone)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum Shape {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Serde flags found in one attribute run: (skip, default).
fn scan_attrs(tokens: &[TokenTree], mut i: usize) -> (usize, bool, bool) {
    let mut skip = false;
    let mut default = false;
    while i + 1 < tokens.len() {
        let is_hash = matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == '#');
        if !is_hash {
            break;
        }
        if let TokenTree::Group(g) = &tokens[i + 1] {
            if g.delimiter() == Delimiter::Bracket {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if let Some(TokenTree::Ident(id)) = inner.first() {
                    if id.to_string() == "serde" {
                        if let Some(TokenTree::Group(args)) = inner.get(1) {
                            for t in args.stream() {
                                if let TokenTree::Ident(flag) = t {
                                    match flag.to_string().as_str() {
                                        "skip" => skip = true,
                                        "default" => default = true,
                                        _ => {}
                                    }
                                }
                            }
                        }
                    }
                }
                i += 2;
                continue;
            }
        }
        break;
    }
    (i, skip, default)
}

/// Skips a `pub` / `pub(...)` visibility prefix.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if matches!(&tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        i += 1;
        if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    i
}

/// Advances past a type expression up to a top-level `,` (angle-depth aware).
fn skip_type(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut depth = 0i32;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
            _ => {}
        }
        i += 1;
    }
    i
}

fn parse_named_fields(group: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let (next, skip, default) = scan_attrs(&tokens, i);
        i = skip_vis(&tokens, next);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => return Err(format!("expected field name, found {other}")),
            None => break,
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("expected `:` after field `{name}`")),
        }
        i = skip_type(&tokens, i);
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        fields.push(Field {
            name,
            skip,
            default,
        });
    }
    Ok(fields)
}

/// Counts top-level comma-separated entries of a tuple field list.
fn tuple_arity(group: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut arity = 1usize;
    let mut depth = 0i32;
    let mut trailing_comma = true;
    for t in &tokens {
        trailing_comma = false;
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                arity += 1;
                trailing_comma = true;
            }
            _ => {}
        }
    }
    if trailing_comma {
        arity -= 1;
    }
    arity
}

fn parse_variants(group: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let (next, _, _) = scan_attrs(&tokens, i);
        i = next;
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => return Err(format!("expected variant name, found {other}")),
            None => break,
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(tuple_arity(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream())?)
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional `= discriminant`.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            while i < tokens.len()
                && !matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',')
            {
                i += 1;
            }
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    loop {
        let (next, _, _) = scan_attrs(&tokens, i);
        i = skip_vis(&tokens, next);
        match tokens.get(i) {
            Some(TokenTree::Ident(id)) => {
                let kw = id.to_string();
                if kw == "struct" || kw == "enum" {
                    break;
                }
                i += 1; // e.g. `#` free-standing idents like `unsafe`? advance defensively
            }
            Some(_) => i += 1,
            None => return Err("no struct/enum found".into()),
        }
    }
    let is_enum = matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "enum");
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected type name".into()),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("cannot derive for generic type `{name}`"));
    }
    match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if is_enum {
                Ok(Shape::Enum {
                    name,
                    variants: parse_variants(g.stream())?,
                })
            } else {
                Ok(Shape::NamedStruct {
                    name,
                    fields: parse_named_fields(g.stream())?,
                })
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis && !is_enum => {
            Ok(Shape::TupleStruct {
                name,
                arity: tuple_arity(g.stream()),
            })
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' && !is_enum => {
            Ok(Shape::UnitStruct { name })
        }
        _ => Err(format!("unsupported item body for `{name}`")),
    }
}

/// `out.extend_from_slice(b"...");` for a static run of JSON text
/// (field names are ASCII identifiers, so `{:?}` escaping is exact).
fn extend_lit(text: &str) -> String {
    format!("out.extend_from_slice(b{text:?});\n")
}

/// The streaming JSON body for an object of named fields, reading each
/// live field through `access` (e.g. `&self.x` or a match binding).
fn json_obj_body(fields: &[&Field], access: impl Fn(&str) -> String) -> String {
    if fields.is_empty() {
        return extend_lit("{}");
    }
    let mut body = String::new();
    for (i, f) in fields.iter().enumerate() {
        let open = if i == 0 { '{' } else { ',' };
        body.push_str(&extend_lit(&format!("{open}\"{}\":", f.name)));
        body.push_str(&format!(
            "::serde::Serialize::write_json({}, out);\n",
            access(&f.name)
        ));
    }
    body.push_str("out.push(b'}');\n");
    body
}

/// The streaming binary body for an object of named fields.
fn binary_obj_body(fields: &[&Field], access: impl Fn(&str) -> String) -> String {
    let mut body = format!("::serde::binary::write_obj({}, out);\n", fields.len());
    for f in fields {
        body.push_str(&format!(
            "::serde::binary::write_key(\"{}\", out);\n::serde::Serialize::write_binary({}, out);\n",
            f.name,
            access(&f.name)
        ));
    }
    body
}

fn gen_serialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let live: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
            let mut value = String::from(
                "let mut entries: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n",
            );
            for f in &live {
                value.push_str(&format!(
                    "entries.push((\"{0}\".to_string(), ::serde::Serialize::to_value(&self.{0})));\n",
                    f.name
                ));
            }
            value.push_str("::serde::Value::Obj(entries)");
            let json = json_obj_body(&live, |f| format!("&self.{f}"));
            let bin = binary_obj_body(&live, |f| format!("&self.{f}"));
            impl_serialize(name, &value, &json, &bin)
        }
        Shape::TupleStruct { name, arity } => {
            let (value, json, bin);
            if *arity == 1 {
                value = "::serde::Serialize::to_value(&self.0)".to_string();
                json = "::serde::Serialize::write_json(&self.0, out);\n".to_string();
                bin = "::serde::Serialize::write_binary(&self.0, out);\n".to_string();
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                value = format!("::serde::Value::Arr(vec![{}])", items.join(", "));
                let mut j = String::from("out.push(b'[');\n");
                for i in 0..*arity {
                    if i > 0 {
                        j.push_str("out.push(b',');\n");
                    }
                    j.push_str(&format!(
                        "::serde::Serialize::write_json(&self.{i}, out);\n"
                    ));
                }
                j.push_str("out.push(b']');\n");
                json = j;
                let mut b = format!("::serde::binary::write_arr({arity}, out);\n");
                for i in 0..*arity {
                    b.push_str(&format!(
                        "::serde::Serialize::write_binary(&self.{i}, out);\n"
                    ));
                }
                bin = b;
            }
            impl_serialize(name, &value, &json, &bin)
        }
        Shape::UnitStruct { name } => impl_serialize(
            name,
            "::serde::Value::Null",
            &extend_lit("null"),
            "::serde::binary::write_null(out);\n",
        ),
        Shape::Enum { name, variants } => {
            let mut value_arms = String::new();
            let mut json_arms = String::new();
            let mut bin_arms = String::new();
            for v in variants {
                match &v.kind {
                    VariantKind::Unit => {
                        value_arms.push_str(&format!(
                            "{name}::{v} => ::serde::Value::Str(\"{v}\".to_string()),\n",
                            v = v.name
                        ));
                        json_arms.push_str(&format!(
                            "{name}::{v} => {{\n{body}}}\n",
                            v = v.name,
                            body = extend_lit(&format!("\"{}\"", v.name))
                        ));
                        bin_arms.push_str(&format!(
                            "{name}::{v} => {{\n::serde::binary::write_str(\"{v}\", out);\n}}\n",
                            v = v.name
                        ));
                    }
                    VariantKind::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("f{i}")).collect();
                        let pattern = format!("{name}::{}({})", v.name, binds.join(", "));
                        let inner = if *arity == 1 {
                            "::serde::Serialize::to_value(f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Arr(vec![{}])", items.join(", "))
                        };
                        value_arms.push_str(&format!(
                            "{pattern} => ::serde::Value::Obj(vec![(\"{v}\".to_string(), {inner})]),\n",
                            v = v.name
                        ));
                        let mut j = extend_lit(&format!("{{\"{}\":", v.name));
                        let mut b = format!(
                            "::serde::binary::write_obj(1, out);\n::serde::binary::write_key(\"{}\", out);\n",
                            v.name
                        );
                        if *arity == 1 {
                            j.push_str("::serde::Serialize::write_json(f0, out);\n");
                            b.push_str("::serde::Serialize::write_binary(f0, out);\n");
                        } else {
                            j.push_str("out.push(b'[');\n");
                            for (i, bind) in binds.iter().enumerate() {
                                if i > 0 {
                                    j.push_str("out.push(b',');\n");
                                }
                                j.push_str(&format!(
                                    "::serde::Serialize::write_json({bind}, out);\n"
                                ));
                            }
                            j.push_str("out.push(b']');\n");
                            b.push_str(&format!("::serde::binary::write_arr({arity}, out);\n"));
                            for bind in &binds {
                                b.push_str(&format!(
                                    "::serde::Serialize::write_binary({bind}, out);\n"
                                ));
                            }
                        }
                        j.push_str("out.push(b'}');\n");
                        json_arms.push_str(&format!("{pattern} => {{\n{j}}}\n"));
                        bin_arms.push_str(&format!("{pattern} => {{\n{b}}}\n"));
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let live: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
                        let pattern = format!("{name}::{} {{ {} }}", v.name, binds.join(", "));
                        let items: Vec<String> = live
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{0}\".to_string(), ::serde::Serialize::to_value({0}))",
                                    f.name
                                )
                            })
                            .collect();
                        value_arms.push_str(&format!(
                            "{pattern} => ::serde::Value::Obj(vec![(\"{v}\".to_string(), ::serde::Value::Obj(vec![{items}]))]),\n",
                            v = v.name,
                            items = items.join(", ")
                        ));
                        let mut j = extend_lit(&format!("{{\"{}\":", v.name));
                        j.push_str(&json_obj_body(&live, |f| f.to_string()));
                        j.push_str("out.push(b'}');\n");
                        let mut b = format!(
                            "::serde::binary::write_obj(1, out);\n::serde::binary::write_key(\"{}\", out);\n",
                            v.name
                        );
                        b.push_str(&binary_obj_body(&live, |f| f.to_string()));
                        json_arms.push_str(&format!("{pattern} => {{\n{j}}}\n"));
                        bin_arms.push_str(&format!("{pattern} => {{\n{b}}}\n"));
                    }
                }
            }
            impl_serialize(
                name,
                &format!("match self {{\n{value_arms}\n}}"),
                &format!("match self {{\n{json_arms}\n}}"),
                &format!("match self {{\n{bin_arms}\n}}"),
            )
        }
    }
}

fn impl_serialize(name: &str, value_body: &str, json_body: &str, binary_body: &str) -> String {
    format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n  fn to_value(&self) -> ::serde::Value {{\n{value_body}\n  }}\n  fn write_json(&self, out: &mut ::std::vec::Vec<u8>) {{\n{json_body}\n  }}\n  fn write_binary(&self, out: &mut ::std::vec::Vec<u8>) {{\n{binary_body}\n  }}\n}}\n"
    )
}

fn named_field_init(fields: &[Field], ty: &str, source: &str) -> String {
    let mut init = String::new();
    for f in fields {
        if f.skip {
            init.push_str(&format!(
                "{}: ::std::default::Default::default(),\n",
                f.name
            ));
        } else if f.default {
            init.push_str(&format!(
                "{0}: match ::serde::obj_get({source}, \"{0}\") {{ Some(v) => ::serde::Deserialize::from_value(v)?, None => ::std::default::Default::default() }},\n",
                f.name
            ));
        } else {
            init.push_str(&format!(
                "{0}: match ::serde::obj_get({source}, \"{0}\") {{ Some(v) => ::serde::Deserialize::from_value(v)?, None => return Err(::serde::DeError::missing(\"{0}\", \"{ty}\")) }},\n",
                f.name
            ));
        }
    }
    init
}

/// A block expression that streams an object of named fields into
/// `ctor { ... }` via `reader`, skipping unknown keys (first occurrence
/// of a duplicate key wins, matching `obj_get` on the tree path).
fn named_read_expr(fields: &[Field], ty: &str, ctor: &str) -> String {
    let live: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
    let mut s = String::from("{\n::serde::Reader::begin_object(reader)?;\n");
    for f in &live {
        s.push_str(&format!(
            "let mut __f_{} = ::std::option::Option::None;\n",
            f.name
        ));
    }
    s.push_str(
        "while let ::std::option::Option::Some(__key) = ::serde::Reader::object_key(reader)? {\n",
    );
    if live.is_empty() {
        s.push_str("let _ = __key;\n::serde::Reader::skip_value(reader)?;\n");
    } else {
        s.push_str("match &*__key {\n");
        for f in &live {
            s.push_str(&format!(
                "\"{0}\" if __f_{0}.is_none() => {{ __f_{0} = ::std::option::Option::Some(::serde::Deserialize::read_from(reader)?); }}\n",
                f.name
            ));
        }
        s.push_str("_ => { ::serde::Reader::skip_value(reader)?; }\n}\n");
    }
    s.push_str("}\n");
    s.push_str(&format!("{ctor} {{\n"));
    for f in fields {
        if f.skip {
            s.push_str(&format!(
                "{}: ::std::default::Default::default(),\n",
                f.name
            ));
        } else if f.default {
            s.push_str(&format!(
                "{0}: match __f_{0} {{ ::std::option::Option::Some(v) => v, ::std::option::Option::None => ::std::default::Default::default() }},\n",
                f.name
            ));
        } else {
            s.push_str(&format!(
                "{0}: match __f_{0} {{ ::std::option::Option::Some(v) => v, ::std::option::Option::None => return Err(::serde::DeError::missing(\"{0}\", \"{ty}\")) }},\n",
                f.name
            ));
        }
    }
    s.push_str("}\n}");
    s
}

/// A block expression that streams an exact-length array into
/// `ctor(...)` via `reader`.
fn tuple_read_expr(ctor: &str, arity: usize, ty: &str) -> String {
    let err = format!("return Err(::serde::DeError::expected(\"array of {arity}\", \"{ty}\"))");
    let mut s = String::from("{\n::serde::Reader::begin_array(reader)?;\n");
    s.push_str(&format!("let __tuple = {ctor}(\n"));
    for _ in 0..arity {
        s.push_str(&format!(
            "{{ if !::serde::Reader::array_next(reader)? {{ {err}; }} ::serde::Deserialize::read_from(reader)? }},\n"
        ));
    }
    s.push_str(");\n");
    s.push_str(&format!(
        "if ::serde::Reader::array_next(reader)? {{ {err}; }}\n__tuple\n}}"
    ));
    s
}

fn gen_deserialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let body = format!(
                "let entries = value.as_obj().ok_or_else(|| ::serde::DeError::expected(\"object\", \"{name}\"))?;\nOk({name} {{\n{}\n}})",
                named_field_init(fields, name, "entries")
            );
            let read = format!("Ok({})", named_read_expr(fields, name, name));
            impl_deserialize(name, &body, &read)
        }
        Shape::TupleStruct { name, arity } => {
            let (body, read);
            if *arity == 1 {
                body = format!("Ok({name}(::serde::Deserialize::from_value(value)?))");
                read = format!("Ok({name}(::serde::Deserialize::read_from(reader)?))");
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                    .collect();
                body = format!(
                    "let items = value.as_arr().ok_or_else(|| ::serde::DeError::expected(\"array\", \"{name}\"))?;\nif items.len() != {arity} {{ return Err(::serde::DeError::expected(\"array of {arity}\", \"{name}\")); }}\nOk({name}({}))",
                    items.join(", ")
                );
                read = format!("Ok({})", tuple_read_expr(name, *arity, name));
            }
            impl_deserialize(name, &body, &read)
        }
        Shape::UnitStruct { name } => impl_deserialize(
            name,
            &format!("Ok({name})"),
            &format!("::serde::Reader::skip_value(reader)?;\nOk({name})"),
        ),
        Shape::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                match &v.kind {
                    VariantKind::Unit => unit_arms
                        .push_str(&format!("\"{v}\" => return Ok({name}::{v}),\n", v = v.name)),
                    VariantKind::Tuple(arity) => {
                        let build = if *arity == 1 {
                            format!(
                                "{name}::{}(::serde::Deserialize::from_value(inner)?)",
                                v.name
                            )
                        } else {
                            let items: Vec<String> = (0..*arity)
                                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                                .collect();
                            format!(
                                "{{ let items = inner.as_arr().ok_or_else(|| ::serde::DeError::expected(\"array\", \"{name}\"))?;\nif items.len() != {arity} {{ return Err(::serde::DeError::expected(\"array of {arity}\", \"{name}\")); }}\n{name}::{}({}) }}",
                                v.name,
                                items.join(", ")
                            )
                        };
                        tagged_arms
                            .push_str(&format!("\"{v}\" => return Ok({build}),\n", v = v.name));
                    }
                    VariantKind::Struct(fields) => {
                        tagged_arms.push_str(&format!(
                            "\"{v}\" => {{ let entries = inner.as_obj().ok_or_else(|| ::serde::DeError::expected(\"object\", \"{name}\"))?;\nreturn Ok({name}::{v} {{\n{init}\n}}); }}\n",
                            v = v.name,
                            init = named_field_init(fields, name, "entries")
                        ));
                    }
                }
            }
            let body = format!(
                "if let Some(tag) = value.as_str() {{\n  match tag {{\n{unit_arms}    _ => {{}}\n  }}\n}}\nif let Some(entries) = value.as_obj() {{\n  if entries.len() == 1 {{\n    let (tag, inner) = &entries[0];\n    let _ = inner;\n    match tag.as_str() {{\n{tagged_arms}      _ => {{}}\n    }}\n  }}\n}}\nErr(::serde::DeError::expected(\"variant\", \"{name}\"))"
            );

            // Streaming mirror: a string is a unit variant, an object's
            // single entry is a tagged variant; arms are only emitted
            // for kinds the enum actually has.
            let unit: Vec<&Variant> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .collect();
            let tagged: Vec<&Variant> = variants
                .iter()
                .filter(|v| !matches!(v.kind, VariantKind::Unit))
                .collect();
            let mut read = String::new();
            if !unit.is_empty() {
                read.push_str(
                    "if ::serde::Reader::peek(reader)? == ::serde::Peek::Str {\nlet __tag = ::serde::Reader::read_str(reader)?;\nmatch &*__tag {\n",
                );
                for v in &unit {
                    read.push_str(&format!("\"{0}\" => return Ok({name}::{0}),\n", v.name));
                }
                read.push_str("_ => {}\n}\n");
                read.push_str(&format!(
                    "return Err(::serde::DeError::expected(\"variant\", \"{name}\"));\n}}\n"
                ));
            }
            if !tagged.is_empty() {
                read.push_str(
                    "if ::serde::Reader::peek(reader)? == ::serde::Peek::Obj {\n::serde::Reader::begin_object(reader)?;\n",
                );
                read.push_str(&format!(
                    "let ::std::option::Option::Some(__tag) = ::serde::Reader::object_key(reader)? else {{\nreturn Err(::serde::DeError::expected(\"variant\", \"{name}\"));\n}};\n"
                ));
                read.push_str("let __value = match &*__tag {\n");
                for v in &tagged {
                    let expr = match &v.kind {
                        VariantKind::Tuple(arity) if *arity == 1 => format!(
                            "{name}::{}(::serde::Deserialize::read_from(reader)?)",
                            v.name
                        ),
                        VariantKind::Tuple(arity) => {
                            tuple_read_expr(&format!("{name}::{}", v.name), *arity, name)
                        }
                        VariantKind::Struct(fields) => {
                            named_read_expr(fields, name, &format!("{name}::{}", v.name))
                        }
                        VariantKind::Unit => unreachable!("unit variants filtered out"),
                    };
                    read.push_str(&format!("\"{}\" => {expr},\n", v.name));
                }
                read.push_str(&format!(
                    "_ => return Err(::serde::DeError::expected(\"variant\", \"{name}\")),\n}};\n"
                ));
                read.push_str(&format!(
                    "if ::serde::Reader::object_key(reader)?.is_some() {{\nreturn Err(::serde::DeError::expected(\"variant\", \"{name}\"));\n}}\nreturn Ok(__value);\n}}\n"
                ));
            }
            read.push_str(&format!(
                "Err(::serde::DeError::expected(\"variant\", \"{name}\"))"
            ));
            impl_deserialize(name, &body, &read)
        }
    }
}

fn impl_deserialize(name: &str, body: &str, read_body: &str) -> String {
    format!(
        "#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{\n  fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n  }}\n  fn read_from<'de, __R: ::serde::Reader<'de>>(reader: &mut __R) -> ::std::result::Result<Self, ::serde::DeError> {{\n{read_body}\n  }}\n}}\n"
    )
}

/// Derives `serde::Serialize` (shim data model).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_shape(input) {
        Ok(shape) => gen_serialize(&shape).parse().unwrap(),
        Err(e) => compile_error(&format!("derive(Serialize): {e}")),
    }
}

/// Derives `serde::Deserialize` (shim data model).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_shape(input) {
        Ok(shape) => gen_deserialize(&shape).parse().unwrap(),
        Err(e) => compile_error(&format!("derive(Deserialize): {e}")),
    }
}
