//! Minimal in-tree replacement for the `proptest` crate.
//!
//! Generates random inputs from [`Strategy`] values and runs each test body
//! `ProptestConfig::cases` times. There is no shrinking: a failing case
//! panics with the debug rendering of its inputs, which (with the
//! deterministic per-test RNG) is reproducible across runs. Supported
//! strategies are exactly the ones the workspace's tests use: numeric
//! ranges, simple `[class]{m,n}` string patterns, tuples, vectors, booleans
//! and options, plus `prop_map` / `prop_flat_map` adapters.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::{Hash, Hasher};

/// The runner configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
    /// Accepted for API parity; the shim never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// A failed assertion inside a proptest body.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic per-test random source.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeds from a stable hash of `name` (usually the test path), so each
    /// test gets its own reproducible stream.
    pub fn deterministic(name: &str) -> Self {
        let mut h = DefaultHasher::new();
        name.hash(&mut h);
        TestRng(StdRng::seed_from_u64(h.finish() ^ 0x9e37_79b9_7f4a_7c15))
    }
}

/// A recipe for producing random values of one type.
pub trait Strategy {
    /// The produced type.
    type Value: fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Builds a second strategy from each generated value and draws from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O: fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// A constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// `str` patterns act as generators for a small regex subset: literal
/// characters, `[a-z0-9_]`-style classes, and `{n}` / `{m,n}` quantifiers.
/// (`&str` and `&&str` pick this up through the blanket reference impl.)
impl Strategy for str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, &mut rng.0)
    }
}

fn generate_from_pattern<R: rand::RngCore>(pattern: &str, rng: &mut R) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0usize;
    while i < chars.len() {
        // Parse one atom: a class or a literal character.
        let atom: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed class in pattern {pattern:?}"));
            let mut class = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                    class.extend((lo..=hi).filter_map(char::from_u32));
                    j += 3;
                } else {
                    class.push(chars[j]);
                    j += 1;
                }
            }
            i = close + 1;
            class
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        // Parse an optional quantifier.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed quantifier in pattern {pattern:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((a, b)) => (
                    a.trim().parse().expect("quantifier lower bound"),
                    b.trim().parse().expect("quantifier upper bound"),
                ),
                None => {
                    let n: usize = body.trim().parse().expect("quantifier count");
                    (n, n)
                }
            }
        } else {
            (1usize, 1usize)
        };
        let count = if lo == hi { lo } else { rng.gen_range(lo..=hi) };
        for _ in 0..count {
            out.push(atom[rng.gen_range(0..atom.len())]);
        }
    }
    out
}

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Sources of a vector length: a fixed size or a size range.
    pub trait SizeRange: Clone {
        /// Draws one length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.0.gen_range(self.clone())
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.0.gen_range(self.clone())
        }
    }

    /// A vector of values from `element`, sized by `size`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// Output of [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// A biased coin.
    #[derive(Debug, Clone, Copy)]
    pub struct Weighted(pub f64);

    impl Strategy for Weighted {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.0.gen_bool(self.0)
        }
    }

    /// A fair coin.
    pub const ANY: Weighted = Weighted(0.5);

    /// `true` with probability `p`.
    pub fn weighted(p: f64) -> Weighted {
        Weighted(p)
    }
}

/// Option strategies.
pub mod option {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// `Some` with probability one half.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// Output of [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.0.gen_bool(0.5) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

/// The names user code imports with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Asserts inside a proptest body; failures abort only the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` that runs `body` against `config.cases` random
/// input draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_inner! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_inner! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_inner {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case_index in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                let rendered_inputs = format!("{:?}", ($(&$arg,)+));
                #[allow(unreachable_code)]
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}\ninputs: {}",
                        stringify!($name),
                        case_index + 1,
                        config.cases,
                        e,
                        rendered_inputs
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn pattern_generation_matches_shape() {
        let mut rng = crate::TestRng::deterministic("pattern");
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z][a-z0-9_]{0,10}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 11);
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
            let t = Strategy::generate(&"[a-z]{1,8}:[a-z]{1,8}", &mut rng);
            assert!(t.contains(':'));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, .. ProptestConfig::default() })]

        #[test]
        fn shim_machinery_works(
            xs in crate::collection::vec(0.0f64..1.0, 1..8),
            flag in crate::bool::ANY,
            opt in crate::option::of(0u32..10),
            n in 2usize..=5,
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 8);
            prop_assert!(xs.iter().all(|x| (0.0..1.0).contains(x)));
            let _coin: bool = flag;
            if let Some(v) = opt { prop_assert!(v < 10); }
            prop_assert!((2..=5).contains(&n));
        }

        #[test]
        fn flat_map_and_map_compose(
            pair in (1usize..4).prop_flat_map(|n| {
                (Just(n), crate::collection::vec(0i32..100, n))
            }).prop_map(|(n, v)| (n, v)),
        ) {
            prop_assert_eq!(pair.0, pair.1.len());
        }
    }
}
