//! Minimal in-tree replacement for the `rand` crate: a deterministic
//! xoshiro256++ generator behind `rngs::StdRng`, the `Rng`/`RngCore`/
//! `SeedableRng` trait split, and uniform sampling for the ranges the
//! workspace draws from. The stream differs from the real `rand` crate but
//! is deterministic for a fixed seed, which is all the workspace relies on.

/// Raw 64-bit generator interface.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding interface: everything here seeds from a `u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from raw bits via the "standard" distribution.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Range types usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer draw from `[0, bound)` via Lemire-style rejection.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let raw = rng.next_u64();
        if raw < zone {
            return raw % bound;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty gen_range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        let u = f64::sample_standard(rng);
        let v = self.start + u * (self.end - self.start);
        // Floating rounding can land exactly on `end`; clamp into range.
        if v >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            v
        }
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty gen_range");
        start + f64::sample_standard(rng) * (end - start)
    }
}

/// The user-facing sampling interface (auto-implemented for every
/// [`RngCore`], including unsized ones).
pub trait Rng: RngCore {
    /// Draws from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_range(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (not the real StdRng stream).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&y));
            let z = rng.gen_range(0u64..=3);
            assert!(z <= 3);
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_frequency_is_sane() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw<R: super::Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen_range(0.0f64..1.0)
        }
        let mut rng = StdRng::seed_from_u64(3);
        let r: &mut dyn super::RngCore = &mut rng;
        assert!((0.0..1.0).contains(&draw(r)));
    }
}
