//! Minimal in-tree replacement for the `rayon` crate.
//!
//! Exposes the one shape the workspace uses — `slice.par_iter().map(f)
//! .collect()` — with an order-preserving implementation on top of
//! `std::thread::scope`. Work is split into one contiguous chunk per
//! available core; results come back in input order. For a single element
//! (or a single core) the closure runs inline on the calling thread.

use std::num::NonZeroUsize;

/// Number of worker threads the shim will use.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Entry point: types that can hand out a parallel iterator over `&T`.
pub trait IntoParallelRefIterator<'a> {
    /// Element type.
    type Item: 'a;
    /// The parallel iterator.
    type Iter;

    /// A parallel iterator over borrowed elements.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = ParIter<'a, T>;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = ParIter<'a, T>;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

/// A parallel iterator over a slice.
#[derive(Debug, Clone, Copy)]
pub struct ParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps each element through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            slice: self.slice,
            f,
        }
    }

    /// Like `map`, but each worker first builds a reusable state value with
    /// `init` (rayon's `map_init`): `init` runs once per worker chunk, and
    /// `f` receives a mutable borrow of that state alongside each element.
    pub fn map_init<S, R, INIT, F>(self, init: INIT, f: F) -> ParMapInit<'a, T, INIT, F>
    where
        R: Send,
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, &'a T) -> R + Sync,
    {
        ParMapInit {
            slice: self.slice,
            init,
            f,
        }
    }
}

/// A mapped parallel iterator with per-worker state, ready to collect.
#[derive(Debug, Clone, Copy)]
pub struct ParMapInit<'a, T, INIT, F> {
    slice: &'a [T],
    init: INIT,
    f: F,
}

impl<'a, T: Sync, INIT, F> ParMapInit<'a, T, INIT, F> {
    /// Runs the map across threads and collects results in input order.
    pub fn collect<C, S, R>(self) -> C
    where
        R: Send,
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, &'a T) -> R + Sync,
        C: FromIterator<R>,
    {
        let (init, f) = (&self.init, &self.f);
        run_chunked(self.slice, &|part: &'a [T]| {
            let mut state = init();
            part.iter().map(|item| f(&mut state, item)).collect()
        })
        .into_iter()
        .collect()
    }
}

/// A mapped parallel iterator, ready to collect.
#[derive(Debug, Clone, Copy)]
pub struct ParMap<'a, T, F> {
    slice: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    /// Runs the map across threads and collects results in input order.
    pub fn collect<C, R>(self) -> C
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
        C: FromIterator<R>,
    {
        run_ordered(self.slice, &self.f).into_iter().collect()
    }
}

/// Maps `slice` through `f` with one contiguous chunk per core, preserving
/// input order in the returned vector.
fn run_ordered<'a, T: Sync, R: Send, F: Fn(&'a T) -> R + Sync>(slice: &'a [T], f: &F) -> Vec<R> {
    run_chunked(slice, &|part: &'a [T]| part.iter().map(f).collect())
}

/// Runs `work` once per contiguous chunk (one chunk per core) and
/// concatenates the chunk results in input order.
fn run_chunked<'a, T: Sync, R: Send>(
    slice: &'a [T],
    work: &(dyn Fn(&'a [T]) -> Vec<R> + Sync),
) -> Vec<R> {
    let threads = current_num_threads().min(slice.len().max(1));
    if threads <= 1 || slice.len() <= 1 {
        return work(slice);
    }
    let chunk = slice.len().div_ceil(threads);
    let mut chunk_results: Vec<Vec<R>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = slice
            .chunks(chunk)
            .map(|part| scope.spawn(move || work(part)))
            .collect();
        for h in handles {
            chunk_results.push(h.join().expect("rayon-shim worker panicked"));
        }
    });
    chunk_results.into_iter().flatten().collect()
}

/// The names user code imports with `use rayon::prelude::*`.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn preserves_order() {
        let input: Vec<usize> = (0..1000).collect();
        let out: Vec<usize> = input.par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_single() {
        let empty: Vec<u8> = Vec::new();
        let out: Vec<u8> = empty.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
        let one = [41usize];
        let out: Vec<usize> = one[..].par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![42]);
    }
}
