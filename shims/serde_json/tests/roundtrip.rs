//! Property round-trip suite for the JSON shim itself: arbitrary
//! `Value` trees — control characters, astral-plane strings,
//! deep-but-legal nesting, ±0.0 and boundary integers — must survive
//! `parse(write(v)) == v` through both the compact and pretty writers.
//! Non-finite numbers are excluded from the tree property (they encode
//! as marker strings by design) and covered by dedicated typed tests.

use proptest::prelude::*;
use serde::Value;
use serde_json::{from_str, parse_value_str, to_string, to_string_pretty};

/// Splittable xorshift64* stream — the proptest shim's `Strategy` trait
/// cannot express recursive generators, so the cases draw one seed and
/// grow the tree here.
fn next(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x.max(1);
    x.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

/// Strings mixing plain ASCII, characters that must be escaped, raw
/// control bytes and astral-plane scalars.
fn arb_string(state: &mut u64) -> String {
    let len = (next(state) % 9) as usize;
    (0..len)
        .map(|_| match next(state) % 6 {
            0 => char::from_u32(next(state) as u32 % 0x20).unwrap(),
            1 => '"',
            2 => '\\',
            3 => char::from_u32(0x1F300 + next(state) as u32 % 0x200).unwrap(),
            4 => char::from_u32(0xA0 + next(state) as u32 % 0x300).unwrap(),
            _ => char::from_u32(0x20 + next(state) as u32 % 0x5f).unwrap(),
        })
        .collect()
}

/// Finite numbers only (NaN breaks tree equality by definition, and
/// non-finite values encode as strings): signed zeros, whole numbers
/// around the 9e15 formatting boundary, random mantissas.
fn arb_num(state: &mut u64) -> f64 {
    match next(state) % 6 {
        0 => 0.0,
        1 => -0.0,
        2 => (next(state) as i64 % 2_000_000) as f64,
        3 => 9e15 - (next(state) % 5) as f64,
        4 => {
            let bits = next(state);
            let n = f64::from_bits(bits);
            if n.is_finite() {
                n
            } else {
                1.5
            }
        }
        _ => (next(state) % 1_000_000) as f64 / 997.0,
    }
}

fn arb_value(state: &mut u64, depth: usize) -> Value {
    let pick = if depth == 0 {
        next(state) % 4
    } else {
        next(state) % 6
    };
    match pick {
        0 => Value::Null,
        1 => Value::Bool(next(state).is_multiple_of(2)),
        2 => Value::Num(arb_num(state)),
        3 => Value::Str(arb_string(state)),
        4 => Value::Arr(
            (0..next(state) % 4)
                .map(|_| arb_value(state, depth - 1))
                .collect(),
        ),
        _ => Value::Obj(
            (0..next(state) % 4)
                .map(|i| {
                    (
                        format!("k{i}{}", arb_string(state)),
                        arb_value(state, depth - 1),
                    )
                })
                .collect(),
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, .. ProptestConfig::default() })]

    /// `parse(write(v)) == v` for arbitrary trees, compact and pretty.
    #[test]
    fn arbitrary_values_roundtrip(seed in 1u64..u64::MAX, depth in 0usize..6) {
        let mut state = seed;
        let value = arb_value(&mut state, depth);
        let compact = to_string(&value).unwrap();
        prop_assert_eq!(&parse_value_str(&compact).unwrap(), &value, "compact: {}", compact);
        let pretty = to_string_pretty(&value).unwrap();
        prop_assert_eq!(&parse_value_str(&pretty).unwrap(), &value, "pretty: {}", pretty);
    }

    /// Typed decode agrees with the tree decode on the same text.
    #[test]
    fn typed_and_tree_decodes_agree(seed in 1u64..u64::MAX) {
        let mut state = seed;
        let value = Value::Arr((0..next(&mut state) % 8).map(|_| Value::Num(arb_num(&mut state))).collect());
        let text = to_string(&value).unwrap();
        let typed: Vec<f64> = from_str(&text).unwrap();
        let tree = parse_value_str(&text).unwrap();
        let from_tree: Vec<f64> = tree.as_arr().unwrap().iter().map(|v| v.as_num().unwrap()).collect();
        prop_assert_eq!(typed, from_tree);
    }
}

#[test]
fn signed_zero_survives_a_roundtrip() {
    // `Value::PartialEq` cannot see the sign (-0.0 == 0.0), so check
    // the bit directly.
    let text = to_string(&Value::Num(-0.0)).unwrap();
    assert_eq!(text, "-0");
    let back = parse_value_str(&text).unwrap().as_num().unwrap();
    assert!(back.is_sign_negative());
    assert_eq!(to_string(&Value::Num(0.0)).unwrap(), "0");
}

#[test]
fn non_finite_numbers_roundtrip_as_markers() {
    for (n, marker) in [
        (f64::NAN, "\"NaN\""),
        (f64::INFINITY, "\"inf\""),
        (f64::NEG_INFINITY, "\"-inf\""),
    ] {
        let text = to_string(&n).unwrap();
        assert_eq!(text, marker);
        let back: f64 = from_str(&text).unwrap();
        assert!(back.is_nan() == n.is_nan() && (n.is_nan() || back == n));
    }
    // The null leniency: datalog gaps decode as NaN.
    let gap: f64 = from_str("null").unwrap();
    assert!(gap.is_nan());
}

#[test]
fn deep_but_legal_nesting_roundtrips() {
    let mut value = Value::Num(1.0);
    // MAX_DEPTH containers exactly — the deepest legal tree.
    for _ in 0..serde::MAX_DEPTH {
        value = Value::Arr(vec![value]);
    }
    let text = to_string(&value).unwrap();
    assert_eq!(parse_value_str(&text).unwrap(), value);
    // One deeper is refused on decode.
    let over = format!("[{text}]");
    assert!(parse_value_str(&over).is_err());
}
