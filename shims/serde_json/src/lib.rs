//! Minimal in-tree JSON front-end for the serde shim, behind the
//! `to_string_pretty` / `to_string` / `from_str` entry points the
//! workspace uses.
//!
//! The grammar (number formatting, escaping, `"NaN"`/`"inf"`/`"-inf"`
//! markers for non-finite floats, surrogate-pair handling) lives in
//! [`serde::json`]; this crate is a thin shell over it. Encoding
//! streams through [`serde::Serialize::write_json`] and decoding
//! through [`serde::json::JsonReader`], so neither direction
//! materialises an intermediate [`Value`] for types with streaming
//! impls, and parsing inherits the reader's [`serde::MAX_DEPTH`]
//! nesting cap — a 100k-deep `[[[[…` body is a parse error, not a
//! stack overflow.

use serde::json::JsonReader;
use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// JSON encode/decode failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serialises `value` as compact JSON.
///
/// # Errors
///
/// Infallible in this shim; the `Result` mirrors the real API.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = Vec::new();
    value.write_json(&mut out);
    Ok(String::from_utf8(out).expect("write_json emits UTF-8"))
}

/// Serialises `value` as 2-space-indented JSON.
///
/// # Errors
///
/// Infallible in this shim; the `Result` mirrors the real API.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = Vec::new();
    write_pretty(&value.to_value(), &mut out, 0);
    Ok(String::from_utf8(out).expect("write_pretty emits UTF-8"))
}

/// Parses JSON text into any shim-`Deserialize` type, streaming straight
/// into the type (no intermediate [`Value`] for types with `read_from`
/// impls).
///
/// # Errors
///
/// Returns a parse error with byte position, or the type's own
/// deserialization error.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut reader = JsonReader::new(text);
    let value = T::read_from(&mut reader).map_err(|e| Error::new(e.to_string()))?;
    reader.expect_end().map_err(|e| Error::new(e.to_string()))?;
    Ok(value)
}

/// Parses JSON text into a raw [`Value`].
///
/// # Errors
///
/// Returns a parse error with byte position.
pub fn parse_value_str(text: &str) -> Result<Value, Error> {
    from_str(text)
}

/// 2-space-indented rendering of a [`Value`] tree. Stays tree-based —
/// pretty output is for humans (golden files, CLI dumps), not the wire —
/// but shares the escape/number formatters with the compact path.
/// Depth is bounded by the tree that produced it, which decoding caps
/// at [`serde::MAX_DEPTH`].
fn write_pretty(v: &Value, out: &mut Vec<u8>, depth: usize) {
    let pad = |out: &mut Vec<u8>, depth: usize| {
        out.push(b'\n');
        out.extend(std::iter::repeat_n(b' ', 2 * depth));
    };
    match v {
        Value::Null => out.extend_from_slice(b"null"),
        Value::Bool(b) => out.extend_from_slice(if *b { b"true" } else { b"false" }),
        Value::Num(n) => serde::json::write_f64(*n, out),
        Value::Str(s) => serde::json::write_escaped(s, out),
        Value::Arr(items) => {
            if items.is_empty() {
                out.extend_from_slice(b"[]");
                return;
            }
            out.push(b'[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(b',');
                }
                pad(out, depth + 1);
                write_pretty(item, out, depth + 1);
            }
            pad(out, depth);
            out.push(b']');
        }
        Value::Obj(entries) => {
            if entries.is_empty() {
                out.extend_from_slice(b"{}");
                return;
            }
            out.push(b'{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(b',');
                }
                pad(out, depth + 1);
                serde::json::write_escaped(k, out);
                out.extend_from_slice(b": ");
                write_pretty(item, out, depth + 1);
            }
            pad(out, depth);
            out.push(b'}');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let text = r#"{"a": [1, 2.5, "x\n", null, true], "b": {"c": -3}}"#;
        let v = parse_value_str(text).unwrap();
        let compact = to_string(&v).unwrap();
        assert_eq!(parse_value_str(&compact).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_value_str("{not json").is_err());
        assert!(parse_value_str("[1,]").is_err());
        assert!(parse_value_str("").is_err());
        assert!(parse_value_str("[1] trailing").is_err());
    }

    #[test]
    fn typed_roundtrip() {
        let v: Vec<(String, usize)> = vec![("a".into(), 1), ("b".into(), 2)];
        let text = to_string_pretty(&v).unwrap();
        let back: Vec<(String, usize)> = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn deep_nesting_is_a_parse_error_not_a_crash() {
        let hostile = "[".repeat(100_000);
        let err = parse_value_str(&hostile).expect_err("must not overflow the stack");
        assert!(err.0.contains("nesting deeper"), "{err}");
    }
}
