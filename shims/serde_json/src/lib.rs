//! Minimal in-tree JSON front-end for the serde shim: a recursive-descent
//! parser into [`serde::Value`] plus a pretty printer, behind the
//! `to_string_pretty` / `to_string` / `from_str` entry points the workspace
//! uses. Non-finite floats are encoded as the strings `"NaN"`, `"inf"` and
//! `"-inf"` so datalogs containing NaN measurements round-trip.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// JSON encode/decode failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serialises `value` as compact JSON.
///
/// # Errors
///
/// Infallible in this shim; the `Result` mirrors the real API.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialises `value` as 2-space-indented JSON.
///
/// # Errors
///
/// Infallible in this shim; the `Result` mirrors the real API.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any shim-`Deserialize` type.
///
/// # Errors
///
/// Returns a parse error with byte position, or the type's own
/// deserialization error.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value_str(text)?;
    T::from_value(&value).map_err(|e| Error::new(e.to_string()))
}

/// Parses JSON text into a raw [`Value`].
///
/// # Errors
///
/// Returns a parse error with byte position.
pub fn parse_value_str(text: &str) -> Result<Value, Error> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::new(format!("trailing content at byte {pos}")));
    }
    Ok(value)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_num(n: f64, out: &mut String) {
    if n.is_nan() {
        out.push_str("\"NaN\"");
    } else if n == f64::INFINITY {
        out.push_str("\"inf\"");
    } else if n == f64::NEG_INFINITY {
        out.push_str("\"-inf\"");
    } else if n.fract() == 0.0 && n.abs() < 9e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        // Shortest representation that round-trips.
        out.push_str(&format!("{n}"));
    }
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    let pad = |out: &mut String, depth: usize| {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * depth));
        }
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => write_num(*n, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            pad(out, depth);
            out.push(']');
        }
        Value::Obj(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, depth + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            pad(out, depth);
            out.push('}');
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), Error> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(Error::new(format!(
            "expected `{lit}` at byte {pos}",
            pos = *pos
        )))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error::new("unexpected end of input")),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Value::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Value::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            loop {
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Value::Arr(items));
                }
                if !items.is_empty() {
                    expect(bytes, pos, ",")?;
                }
                items.push(parse_value(bytes, pos)?);
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            loop {
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Value::Obj(entries));
                }
                if !entries.is_empty() {
                    expect(bytes, pos, ",")?;
                    skip_ws(bytes, pos);
                }
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_value(bytes, pos)?;
                entries.push((key, value));
            }
        }
        Some(_) => parse_number(bytes, pos).map(Value::Num),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(Error::new(format!("expected string at byte {}", *pos)));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error::new("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error::new("bad \\u escape"))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| Error::new("bad \\u escape"))?,
                            16,
                        )
                        .map_err(|_| Error::new("bad \\u escape"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(Error::new("bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| Error::new("invalid UTF-8"))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<f64, Error> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    if start == *pos {
        return Err(Error::new(format!("expected value at byte {start}")));
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| Error::new(format!("bad number at byte {start}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let text = r#"{"a": [1, 2.5, "x\n", null, true], "b": {"c": -3}}"#;
        let v = parse_value_str(text).unwrap();
        let compact = {
            let mut s = String::new();
            write_value(&v, &mut s, None, 0);
            s
        };
        assert_eq!(parse_value_str(&compact).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_value_str("{not json").is_err());
        assert!(parse_value_str("[1,]").is_err());
        assert!(parse_value_str("").is_err());
    }

    #[test]
    fn typed_roundtrip() {
        let v: Vec<(String, usize)> = vec![("a".into(), 1), ("b".into(), 2)];
        let text = to_string_pretty(&v).unwrap();
        let back: Vec<(String, usize)> = from_str(&text).unwrap();
        assert_eq!(back, v);
    }
}
