//! Streaming support for the compact binary value encoding used by the
//! server's wire codec: tagged scalars, LEB128 varints, and
//! length-prefixed containers (see `abbd_server::codec` for the frame
//! layout around this payload encoding).
//!
//! Like [`crate::json`], this module is the single source of truth for
//! the byte format: the `Value`-tree fallback ([`write_value`]) and the
//! derive-generated `write_binary` / `read_from` fast paths route
//! through the same helpers, so both paths emit bit-identical bytes.
//! Decoding is hardened: every length is checked against the remaining
//! buffer before it is trusted, and nesting is capped at
//! [`crate::MAX_DEPTH`].

use crate::{DeError, Peek, Reader, Value};
use std::borrow::Cow;

/// Tag byte for `null`.
pub const TAG_NULL: u8 = 0x00;
/// Tag byte for `false`.
pub const TAG_FALSE: u8 = 0x01;
/// Tag byte for `true`.
pub const TAG_TRUE: u8 = 0x02;
/// Tag byte for a number (f64 bits, little-endian).
pub const TAG_NUM: u8 = 0x03;
/// Tag byte for a string (varint length + UTF-8 bytes).
pub const TAG_STR: u8 = 0x04;
/// Tag byte for an array (varint count + elements).
pub const TAG_ARR: u8 = 0x05;
/// Tag byte for an object (varint count + key/value entries).
pub const TAG_OBJ: u8 = 0x06;

/// Appends `n` as a LEB128 varint (7 bits per byte, little-endian,
/// high bit = continue).
pub fn write_varint(mut n: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (n & 0x7f) as u8;
        n >>= 7;
        if n == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends the `null` encoding.
pub fn write_null(out: &mut Vec<u8>) {
    out.push(TAG_NULL);
}

/// Appends a boolean.
pub fn write_bool(b: bool, out: &mut Vec<u8>) {
    out.push(if b { TAG_TRUE } else { TAG_FALSE });
}

/// Appends a number (tag + f64 bits, NaN payloads preserved).
pub fn write_f64(n: f64, out: &mut Vec<u8>) {
    out.push(TAG_NUM);
    out.extend_from_slice(&n.to_bits().to_le_bytes());
}

/// Appends a string value (tag + varint length + bytes).
pub fn write_str(s: &str, out: &mut Vec<u8>) {
    out.push(TAG_STR);
    write_key(s, out);
}

/// Appends an object key (varint length + bytes, no tag).
pub fn write_key(key: &str, out: &mut Vec<u8>) {
    write_varint(key.len() as u64, out);
    out.extend_from_slice(key.as_bytes());
}

/// Opens an array of exactly `len` elements; the caller appends them.
pub fn write_arr(len: usize, out: &mut Vec<u8>) {
    out.push(TAG_ARR);
    write_varint(len as u64, out);
}

/// Opens an object of exactly `len` entries; the caller appends
/// [`write_key`]/value pairs.
pub fn write_obj(len: usize, out: &mut Vec<u8>) {
    out.push(TAG_OBJ);
    write_varint(len as u64, out);
}

/// Appends the encoding of a whole [`Value`] tree — the fallback path
/// behind [`crate::Serialize::write_binary`].
pub fn write_value(value: &Value, out: &mut Vec<u8>) {
    match value {
        Value::Null => write_null(out),
        Value::Bool(b) => write_bool(*b, out),
        Value::Num(n) => write_f64(*n, out),
        Value::Str(s) => write_str(s, out),
        Value::Arr(items) => {
            write_arr(items.len(), out);
            for item in items {
                write_value(item, out);
            }
        }
        Value::Obj(entries) => {
            write_obj(entries.len(), out);
            for (key, item) in entries {
                write_key(key, out);
                write_value(item, out);
            }
        }
    }
}

/// Event-driven reader over one binary-encoded value payload (no frame
/// header), borrowing strings straight from the buffer.
#[derive(Debug)]
pub struct BinReader<'de> {
    buf: &'de [u8],
    pos: usize,
    /// Remaining element counts of the open containers; the length is
    /// the nesting depth, which [`crate::MAX_DEPTH`] caps.
    remaining: Vec<u64>,
}

impl<'de> BinReader<'de> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'de [u8]) -> Self {
        BinReader {
            buf,
            pos: 0,
            remaining: Vec::new(),
        }
    }

    /// Asserts the whole buffer was consumed.
    ///
    /// # Errors
    ///
    /// Fails if any bytes follow the value just read.
    pub fn expect_end(&self) -> Result<(), DeError> {
        if self.pos != self.buf.len() {
            return Err(DeError::custom(
                "trailing bytes after the framed value".to_string(),
            ));
        }
        Ok(())
    }

    fn take(&mut self, len: usize) -> Result<&'de [u8], DeError> {
        let end = self
            .pos
            .checked_add(len)
            .filter(|&end| end <= self.buf.len())
            .ok_or_else(|| DeError::custom("length runs past the end of the frame".to_string()))?;
        let bytes = &self.buf[self.pos..end];
        self.pos = end;
        Ok(bytes)
    }

    fn tag(&mut self, expected: u8, what: &str) -> Result<(), DeError> {
        let Some(&tag) = self.buf.get(self.pos) else {
            return Err(DeError::custom("truncated value".to_string()));
        };
        if tag != expected {
            return Err(DeError::custom(format!(
                "expected {what} tag, found 0x{tag:02x}"
            )));
        }
        self.pos += 1;
        Ok(())
    }

    fn varint(&mut self) -> Result<u64, DeError> {
        let mut n = 0u64;
        for shift in (0..64).step_by(7) {
            let Some(&byte) = self.buf.get(self.pos) else {
                return Err(DeError::custom("truncated varint".to_string()));
            };
            self.pos += 1;
            n |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(n);
            }
        }
        Err(DeError::custom("varint too long".to_string()))
    }

    fn str_bytes(&mut self) -> Result<&'de str, DeError> {
        let len = self.varint()?;
        let len = usize::try_from(len).map_err(|_| DeError::custom("string length overflows"))?;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes)
            .map_err(|_| DeError::custom("non-UTF-8 string bytes".to_string()))
    }

    fn begin(&mut self, tag: u8, what: &str) -> Result<(), DeError> {
        self.tag(tag, what)?;
        let count = self.varint()?;
        // Each element costs at least one byte, so an honest count
        // never exceeds what is left — refuse it up front.
        if count > (self.buf.len() - self.pos) as u64 {
            return Err(DeError::custom(format!(
                "{what} length runs past the end of the frame"
            )));
        }
        if self.remaining.len() >= crate::MAX_DEPTH {
            return Err(DeError::custom("nesting too deep".to_string()));
        }
        self.remaining.push(count);
        Ok(())
    }

    /// Decrements the innermost remaining-count; `true` while elements
    /// are left, popping the container at zero.
    fn next_element(&mut self) -> bool {
        let left = self
            .remaining
            .last_mut()
            .expect("element outside a container");
        if *left == 0 {
            self.remaining.pop();
            false
        } else {
            *left -= 1;
            true
        }
    }
}

impl<'de> Reader<'de> for BinReader<'de> {
    fn peek(&mut self) -> Result<Peek, DeError> {
        match self.buf.get(self.pos) {
            None => Err(DeError::custom("truncated value".to_string())),
            Some(&TAG_NULL) => Ok(Peek::Null),
            Some(&(TAG_FALSE | TAG_TRUE)) => Ok(Peek::Bool),
            Some(&TAG_NUM) => Ok(Peek::Num),
            Some(&TAG_STR) => Ok(Peek::Str),
            Some(&TAG_ARR) => Ok(Peek::Arr),
            Some(&TAG_OBJ) => Ok(Peek::Obj),
            Some(&other) => Err(DeError::custom(format!("unknown value tag 0x{other:02x}"))),
        }
    }

    fn read_null(&mut self) -> Result<(), DeError> {
        self.tag(TAG_NULL, "null")
    }

    fn read_bool(&mut self) -> Result<bool, DeError> {
        match self.buf.get(self.pos) {
            Some(&TAG_FALSE) => {
                self.pos += 1;
                Ok(false)
            }
            Some(&TAG_TRUE) => {
                self.pos += 1;
                Ok(true)
            }
            Some(&other) => Err(DeError::custom(format!(
                "expected bool tag, found 0x{other:02x}"
            ))),
            None => Err(DeError::custom("truncated value".to_string())),
        }
    }

    fn read_f64(&mut self) -> Result<f64, DeError> {
        self.tag(TAG_NUM, "number")?;
        let bytes = self.take(8)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(bytes);
        Ok(f64::from_bits(u64::from_le_bytes(raw)))
    }

    fn read_str(&mut self) -> Result<Cow<'de, str>, DeError> {
        self.tag(TAG_STR, "string")?;
        Ok(Cow::Borrowed(self.str_bytes()?))
    }

    fn begin_array(&mut self) -> Result<(), DeError> {
        self.begin(TAG_ARR, "array")
    }

    fn array_next(&mut self) -> Result<bool, DeError> {
        Ok(self.next_element())
    }

    fn begin_object(&mut self) -> Result<(), DeError> {
        self.begin(TAG_OBJ, "object")
    }

    fn object_key(&mut self) -> Result<Option<Cow<'de, str>>, DeError> {
        if !self.next_element() {
            return Ok(None);
        }
        Ok(Some(Cow::Borrowed(self.str_bytes()?)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Deserialize;

    fn round_trip(value: &Value) -> Value {
        let mut out = Vec::new();
        write_value(value, &mut out);
        let mut reader = BinReader::new(&out);
        let back = Value::read_from(&mut reader).expect("decodes");
        reader.expect_end().expect("fully consumed");
        back
    }

    #[test]
    fn values_round_trip() {
        for value in [
            Value::Null,
            Value::Bool(true),
            Value::Num(-0.0),
            Value::Str("π ≈ 3".into()),
            Value::Arr(vec![Value::Num(1.0), Value::Null]),
            Value::Obj(vec![("k".into(), Value::Arr(vec![]))]),
        ] {
            assert_eq!(round_trip(&value), value);
        }
        // Negative zero keeps its bits (binary numbers are raw f64).
        let Value::Num(z) = round_trip(&Value::Num(-0.0)) else {
            panic!("number expected");
        };
        assert!(z.is_sign_negative());
    }

    #[test]
    fn depth_cap_holds() {
        let mut payload = Vec::new();
        for _ in 0..crate::MAX_DEPTH + 2 {
            payload.extend_from_slice(&[TAG_ARR, 1]);
        }
        payload.push(TAG_NULL);
        let mut reader = BinReader::new(&payload);
        let err = Value::read_from(&mut reader).expect_err("depth cap");
        assert!(err.0.contains("deep"), "{err}");
    }

    #[test]
    fn truncation_is_an_error() {
        for junk in [&b"\x04\xff"[..], b"\x05\xff\xff\xff\xff\x0f", b"\x99"] {
            let mut reader = BinReader::new(junk);
            assert!(Value::read_from(&mut reader).is_err(), "{junk:?}");
        }
    }
}
