//! Streaming compact-JSON support for the shim's data model: emit
//! helpers that append straight to a byte buffer, and an event-driven
//! [`JsonReader`] that walks JSON text without materialising a
//! [`Value`] tree.
//!
//! Both halves are the single source of truth for the shim's JSON
//! grammar — `serde_json` and the derive-generated `write_json` /
//! `read_from` fast paths all route through here, so the `Value`
//! fallback and the streaming path emit bit-identical bytes.
//!
//! Wire limits and number formatting:
//!
//! * nesting is capped at [`crate::MAX_DEPTH`] containers (matching the
//!   binary codec), so adversarially deep `[[[[…` input is a parse
//!   error, never a stack overflow;
//! * finite whole numbers with magnitude below `9e15` print as
//!   integers (`3`, not `3.0`); every such value is exactly
//!   representable in an `i64` (the cutoff is below 2^53). Negative
//!   zero prints as `-0` so the sign survives a round-trip;
//! * non-finite numbers encode as the strings `"NaN"`, `"inf"` and
//!   `"-inf"`;
//! * `\uXXXX` escapes decode surrogate pairs to one scalar; a lone
//!   surrogate half is a parse error.

use crate::{DeError, Peek, Reader, Value};
use std::borrow::Cow;
use std::io::Write as _;

/// Appends `s` as a quoted, escaped JSON string.
pub fn write_escaped(s: &str, out: &mut Vec<u8>) {
    out.push(b'"');
    let bytes = s.as_bytes();
    let mut start = 0usize;
    for (i, &b) in bytes.iter().enumerate() {
        let escape: &[u8] = match b {
            b'"' => b"\\\"",
            b'\\' => b"\\\\",
            b'\n' => b"\\n",
            b'\r' => b"\\r",
            b'\t' => b"\\t",
            0x00..=0x1f => b"",
            _ => continue,
        };
        out.extend_from_slice(&bytes[start..i]);
        if escape.is_empty() {
            let _ = write!(out, "\\u{b:04x}");
        } else {
            out.extend_from_slice(escape);
        }
        start = i + 1;
    }
    out.extend_from_slice(&bytes[start..]);
    out.push(b'"');
}

/// Appends the canonical number rendering: integers without a fraction
/// below `9e15` as `i64` digits (negative zero keeps its sign), other
/// finite values shortest-roundtrip, non-finite as marker strings.
pub fn write_f64(n: f64, out: &mut Vec<u8>) {
    if n.is_nan() {
        out.extend_from_slice(b"\"NaN\"");
    } else if n == f64::INFINITY {
        out.extend_from_slice(b"\"inf\"");
    } else if n == f64::NEG_INFINITY {
        out.extend_from_slice(b"\"-inf\"");
    } else if n.fract() == 0.0 && n.abs() < 9e15 && !(n == 0.0 && n.is_sign_negative()) {
        // Exact for the whole range: 9e15 < 2^53.
        let _ = write!(out, "{}", n as i64);
    } else {
        // Shortest representation that round-trips (prints `-0` for
        // negative zero, which parses back sign-intact).
        let _ = write!(out, "{n}");
    }
}

/// Appends the compact (no whitespace) encoding of a [`Value`] tree —
/// the fallback path behind [`crate::Serialize::write_json`].
pub fn write_value(value: &Value, out: &mut Vec<u8>) {
    match value {
        Value::Null => out.extend_from_slice(b"null"),
        Value::Bool(true) => out.extend_from_slice(b"true"),
        Value::Bool(false) => out.extend_from_slice(b"false"),
        Value::Num(n) => write_f64(*n, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Arr(items) => {
            out.push(b'[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(b',');
                }
                write_value(item, out);
            }
            out.push(b']');
        }
        Value::Obj(entries) => {
            out.push(b'{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(b',');
                }
                write_escaped(key, out);
                out.push(b':');
                write_value(item, out);
            }
            out.push(b'}');
        }
    }
}

/// Event-driven JSON reader over a borrowed text slice.
///
/// Strings without escapes are handed out as borrows of the input;
/// nesting deeper than [`crate::MAX_DEPTH`] is a parse error. Errors
/// carry the byte offset they were detected at.
#[derive(Debug)]
pub struct JsonReader<'de> {
    bytes: &'de [u8],
    pos: usize,
    /// Per-open-container element counts; the length is the nesting
    /// depth, which [`crate::MAX_DEPTH`] caps.
    counts: Vec<usize>,
}

impl<'de> JsonReader<'de> {
    /// A reader positioned at the start of `text`.
    pub fn new(text: &'de str) -> Self {
        JsonReader {
            bytes: text.as_bytes(),
            pos: 0,
            counts: Vec::new(),
        }
    }

    /// Asserts only trailing whitespace remains.
    ///
    /// # Errors
    ///
    /// Fails if any non-whitespace input follows the value just read.
    pub fn expect_end(&mut self) -> Result<(), DeError> {
        self.ws();
        if self.pos != self.bytes.len() {
            return Err(DeError::custom(format!(
                "trailing content at byte {}",
                self.pos
            )));
        }
        Ok(())
    }

    fn ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn expect_lit(&mut self, lit: &str) -> Result<(), DeError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(DeError::custom(format!(
                "expected `{lit}` at byte {}",
                self.pos
            )))
        }
    }

    fn begin(&mut self, open: u8) -> Result<(), DeError> {
        self.ws();
        if self.bytes.get(self.pos) != Some(&open) {
            return Err(DeError::custom(format!(
                "expected `{}` at byte {}",
                open as char, self.pos
            )));
        }
        if self.counts.len() >= crate::MAX_DEPTH {
            return Err(DeError::custom(format!(
                "nesting deeper than {} at byte {}",
                crate::MAX_DEPTH,
                self.pos
            )));
        }
        self.pos += 1;
        self.counts.push(0);
        Ok(())
    }

    /// `true` the first time an element of the innermost container is
    /// read, bumping the element count.
    fn first_element(&mut self) -> bool {
        let count = self.counts.last_mut().expect("element outside a container");
        let first = *count == 0;
        *count += 1;
        first
    }

    fn hex4(&mut self) -> Result<u32, DeError> {
        let bad = || DeError::custom("bad \\u escape".to_string());
        let hex = self.bytes.get(self.pos..self.pos + 4).ok_or_else(bad)?;
        let text = std::str::from_utf8(hex).map_err(|_| bad())?;
        let code = u32::from_str_radix(text, 16).map_err(|_| bad())?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_string(&mut self) -> Result<Cow<'de, str>, DeError> {
        if self.bytes.get(self.pos) != Some(&b'"') {
            return Err(DeError::custom(format!(
                "expected string at byte {}",
                self.pos
            )));
        }
        self.pos += 1;
        let start = self.pos;
        // Fast path: no escapes, borrow straight from the input.
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(DeError::custom("unterminated string".to_string())),
                Some(b'"') => {
                    let raw = utf8(&self.bytes[start..self.pos])?;
                    self.pos += 1;
                    return Ok(Cow::Borrowed(raw));
                }
                Some(b'\\') => break,
                Some(_) => self.pos += 1,
            }
        }
        // Slow path: at least one escape, accumulate into an owned
        // string.
        let mut out = String::new();
        out.push_str(utf8(&self.bytes[start..self.pos])?);
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(DeError::custom("unterminated string".to_string())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(Cow::Owned(out));
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.bytes.get(self.pos).copied();
                    self.pos += 1;
                    match escape {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => out.push(self.unicode_escape()?),
                        _ => return Err(DeError::custom("bad escape".to_string())),
                    }
                }
                Some(_) => {
                    // Copy the raw run up to the next quote/backslash.
                    let run = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    out.push_str(utf8(&self.bytes[run..self.pos])?);
                }
            }
        }
    }

    /// Decodes the `XXXX` of a `\uXXXX` escape (the `\u` is already
    /// consumed), combining a surrogate pair into its one scalar and
    /// rejecting unpaired halves.
    fn unicode_escape(&mut self) -> Result<char, DeError> {
        let code = self.hex4()?;
        let lone =
            |code: u32| DeError::custom(format!("unpaired surrogate \\u{code:04x} in string"));
        if (0xD800..=0xDBFF).contains(&code) {
            // High half: the low half must follow immediately.
            if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                return Err(lone(code));
            }
            self.pos += 2;
            let low = self.hex4()?;
            if !(0xDC00..=0xDFFF).contains(&low) {
                return Err(lone(code));
            }
            let scalar = 0x1_0000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            Ok(char::from_u32(scalar).expect("combined surrogate pair is a valid scalar"))
        } else if (0xDC00..=0xDFFF).contains(&code) {
            Err(lone(code))
        } else {
            Ok(char::from_u32(code).expect("non-surrogate BMP code point is a valid scalar"))
        }
    }
}

fn utf8(bytes: &[u8]) -> Result<&str, DeError> {
    std::str::from_utf8(bytes).map_err(|_| DeError::custom("invalid UTF-8 in string".to_string()))
}

impl<'de> Reader<'de> for JsonReader<'de> {
    fn peek(&mut self) -> Result<Peek, DeError> {
        self.ws();
        match self.bytes.get(self.pos) {
            None => Err(DeError::custom("unexpected end of input".to_string())),
            Some(b'n') => Ok(Peek::Null),
            Some(b't' | b'f') => Ok(Peek::Bool),
            Some(b'"') => Ok(Peek::Str),
            Some(b'[') => Ok(Peek::Arr),
            Some(b'{') => Ok(Peek::Obj),
            // Anything else is number-or-garbage; `read_f64` settles it.
            Some(_) => Ok(Peek::Num),
        }
    }

    fn read_null(&mut self) -> Result<(), DeError> {
        self.ws();
        self.expect_lit("null")
    }

    fn read_bool(&mut self) -> Result<bool, DeError> {
        self.ws();
        match self.bytes.get(self.pos) {
            Some(b't') => self.expect_lit("true").map(|()| true),
            Some(b'f') => self.expect_lit("false").map(|()| false),
            _ => Err(DeError::custom(format!(
                "expected bool at byte {}",
                self.pos
            ))),
        }
    }

    fn read_f64(&mut self) -> Result<f64, DeError> {
        self.ws();
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(
                self.bytes[self.pos],
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
            )
        {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(DeError::custom(format!("expected value at byte {start}")));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| DeError::custom(format!("bad number at byte {start}")))
    }

    fn read_str(&mut self) -> Result<Cow<'de, str>, DeError> {
        self.ws();
        self.parse_string()
    }

    fn begin_array(&mut self) -> Result<(), DeError> {
        self.begin(b'[')
    }

    fn array_next(&mut self) -> Result<bool, DeError> {
        self.ws();
        match self.bytes.get(self.pos) {
            None => Err(DeError::custom("unexpected end of input".to_string())),
            Some(b']') => {
                self.pos += 1;
                self.counts.pop();
                Ok(false)
            }
            Some(_) => {
                if !self.first_element() {
                    self.expect_lit(",")?;
                }
                Ok(true)
            }
        }
    }

    fn begin_object(&mut self) -> Result<(), DeError> {
        self.begin(b'{')
    }

    fn object_key(&mut self) -> Result<Option<Cow<'de, str>>, DeError> {
        self.ws();
        match self.bytes.get(self.pos) {
            None => Err(DeError::custom("unexpected end of input".to_string())),
            Some(b'}') => {
                self.pos += 1;
                self.counts.pop();
                Ok(None)
            }
            Some(_) => {
                if !self.first_element() {
                    self.expect_lit(",")?;
                    self.ws();
                }
                let key = self.parse_string()?;
                self.ws();
                self.expect_lit(":")?;
                Ok(Some(key))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Deserialize;

    fn json_of(value: &Value) -> String {
        let mut out = Vec::new();
        write_value(value, &mut out);
        String::from_utf8(out).expect("valid UTF-8")
    }

    fn parse(text: &str) -> Result<Value, DeError> {
        let mut reader = JsonReader::new(text);
        let value = Value::read_from(&mut reader)?;
        reader.expect_end()?;
        Ok(value)
    }

    #[test]
    fn negative_zero_keeps_its_sign() {
        let mut out = Vec::new();
        write_f64(-0.0, &mut out);
        assert_eq!(out, b"-0");
        let back = parse("-0").unwrap().as_num().unwrap();
        assert_eq!(back, 0.0);
        assert!(back.is_sign_negative());
        // Positive zero is untouched.
        let mut out = Vec::new();
        write_f64(0.0, &mut out);
        assert_eq!(out, b"0");
    }

    #[test]
    fn integer_formatting_boundary_is_exact() {
        // Everything below the 9e15 cutoff takes the i64 fast path and
        // is exactly representable; at and past the cutoff the float
        // formatter prints the same digits for whole values.
        for (n, expect) in [
            (9e15 - 2.0, "8999999999999998"),
            (9e15, "9000000000000000"),
            (9.007199254740992e15, "9007199254740992"), // 2^53
            (-9e15, "-9000000000000000"),
            (-(9e15 - 2.0), "-8999999999999998"),
        ] {
            let mut out = Vec::new();
            write_f64(n, &mut out);
            assert_eq!(out, expect.as_bytes(), "formatting {n}");
            assert_eq!(parse(expect).unwrap(), Value::Num(n));
        }
    }

    #[test]
    fn surrogate_pairs_decode_to_one_scalar() {
        // "😀" is the escaped UTF-16 pair for U+1F600.
        let escaped = "\"\\ud83d\\ude00\"";
        assert_eq!(parse(escaped).unwrap(), Value::Str("\u{1F600}".to_string()));
        // Raw astral UTF-8 passes through both ways.
        assert_eq!(
            parse("\"\u{1F600}\"").unwrap(),
            Value::Str("\u{1F600}".to_string())
        );
        assert_eq!(json_of(&Value::Str("\u{1F600}".into())), "\"\u{1F600}\"");
    }

    #[test]
    fn lone_surrogates_are_parse_errors() {
        for text in [
            r#""\ud800""#,       // high half, nothing after
            r#""\ud800x""#,      // high half, raw char after
            r#""\ud800\n""#,     // high half, non-\u escape after
            r#""\ud800\ud800""#, // high half, non-low \u after
            r#""\udc00""#,       // low half alone
            r#""a\udfff tail""#, // low half mid-string
        ] {
            let err = parse(text).expect_err(text);
            assert!(err.0.contains("surrogate"), "{text}: {err}");
        }
    }

    #[test]
    fn depth_cap_mirrors_the_binary_codec() {
        let legal = format!(
            "{}null{}",
            "[".repeat(crate::MAX_DEPTH),
            "]".repeat(crate::MAX_DEPTH)
        );
        assert!(parse(&legal).is_ok());
        let deep = "[".repeat(crate::MAX_DEPTH + 1);
        let err = parse(&deep).expect_err("past the cap");
        assert!(err.0.contains("nesting deeper"), "{err}");
        // 100k-deep input dies at the cap, not the stack.
        let hostile = "[".repeat(100_000);
        assert!(parse(&hostile).is_err());
    }

    #[test]
    fn control_chars_roundtrip_escaped() {
        let s = "a\u{1}b\tc\nd\"e\\f\u{7f}";
        let encoded = json_of(&Value::Str(s.into()));
        assert_eq!(parse(&encoded).unwrap(), Value::Str(s.into()));
        assert!(encoded.contains("\\u0001"));
    }
}
