//! Minimal in-tree replacement for the `serde` crate.
//!
//! The workspace builds offline, so instead of the real serde data model
//! this shim uses a single concrete [`Value`] tree: `Serialize` renders a
//! type into a `Value`, `Deserialize` rebuilds a type from one. The derive
//! macros (re-exported from `serde_derive`) generate impls of these two
//! traits for plain structs and enums, honouring `#[serde(default)]` and
//! `#[serde(skip)]`.
//!
//! Maps serialize as arrays of `[key, value]` pairs regardless of key type,
//! which keeps the encoding self-consistent for non-string keys (the real
//! serde_json would reject those).

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

/// The common self-describing tree both traits speak.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Any JSON number (f64 is exact for every integer the workspace stores).
    Num(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Arr(Vec<Value>),
    /// JSON object with insertion order preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric contents, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Looks a key up in an object's entry list (linear scan; objects are tiny).
pub fn obj_get<'v>(entries: &'v [(String, Value)], key: &str) -> Option<&'v Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Deserialization failure: what was expected, where.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    /// An "expected X while deserializing Y" error.
    pub fn expected(what: &str, ty: &str) -> Self {
        DeError(format!("expected {what} while deserializing {ty}"))
    }

    /// A missing-field error.
    pub fn missing(field: &str, ty: &str) -> Self {
        DeError(format!("missing field `{field}` while deserializing {ty}"))
    }

    /// A free-form error.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Renders `self` into a [`Value`] tree.
pub trait Serialize {
    /// The `Value` encoding of `self`.
    fn to_value(&self) -> Value;
}

/// Rebuilds `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses `Self` out of `value`.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let n = value
                    .as_num()
                    .ok_or_else(|| DeError::expected("number", stringify!($t)))?;
                if n.fract() != 0.0 {
                    return Err(DeError::expected("integer", stringify!($t)));
                }
                Ok(n as $t)
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Num(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Num(n) => Ok(*n),
            // NaN/inf round-trip through null / string markers.
            Value::Null => Ok(f64::NAN),
            Value::Str(s) if s == "NaN" => Ok(f64::NAN),
            Value::Str(s) if s == "inf" => Ok(f64::INFINITY),
            Value::Str(s) if s == "-inf" => Ok(f64::NEG_INFINITY),
            _ => Err(DeError::expected("number", "f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Num(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        f64::from_value(value).map(|n| n as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", "bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::expected("string", "String"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let s = value
            .as_str()
            .ok_or_else(|| DeError::expected("string", "char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::expected("single-character string", "char")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_arr()
            .ok_or_else(|| DeError::expected("array", "Vec"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let items = value.as_arr().ok_or_else(|| DeError::expected("array", "tuple"))?;
                let expected = [$( stringify!($n) ),+].len();
                if items.len() != expected {
                    return Err(DeError::custom(format!(
                        "tuple length mismatch: expected {expected}, got {}",
                        items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$n])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Arr(
            self.iter()
                .map(|(k, v)| Value::Arr(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        map_pairs(value)?.collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Sort the pair encoding so serialization is deterministic.
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| {
                (
                    format!("{:?}", k.to_value()),
                    Value::Arr(vec![k.to_value(), v.to_value()]),
                )
            })
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Arr(pairs.into_iter().map(|(_, v)| v).collect())
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        map_pairs(value)?.collect()
    }
}

/// Shared `[[k, v], ...]` decoding for both map types.
fn map_pairs<'v, K: Deserialize, V: Deserialize>(
    value: &'v Value,
) -> Result<impl Iterator<Item = Result<(K, V), DeError>> + 'v, DeError> {
    let items = value
        .as_arr()
        .ok_or_else(|| DeError::expected("array of pairs", "map"))?;
    Ok(items.iter().map(|item| {
        let pair = item
            .as_arr()
            .ok_or_else(|| DeError::expected("[key, value] pair", "map"))?;
        if pair.len() != 2 {
            return Err(DeError::expected("[key, value] pair", "map"));
        }
        Ok((K::from_value(&pair[0])?, V::from_value(&pair[1])?))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()), Ok(42));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".into())
        );
        assert_eq!(Option::<u8>::from_value(&Value::Null), Ok(None));
        assert_eq!(
            <(u8, String)>::from_value(&(3u8, "x".to_string()).to_value()),
            Ok((3, "x".into()))
        );
    }

    #[test]
    fn maps_encode_as_pairs() {
        let mut m = BTreeMap::new();
        m.insert(2u32, "b".to_string());
        m.insert(1u32, "a".to_string());
        let v = m.to_value();
        assert_eq!(BTreeMap::<u32, String>::from_value(&v), Ok(m));
    }
}
