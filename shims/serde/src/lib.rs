//! Minimal in-tree replacement for the `serde` crate.
//!
//! The workspace builds offline, so instead of the real serde data model
//! this shim uses a single concrete [`Value`] tree: `Serialize` renders a
//! type into a `Value`, `Deserialize` rebuilds a type from one. The derive
//! macros (re-exported from `serde_derive`) generate impls of these two
//! traits for plain structs and enums, honouring `#[serde(default)]` and
//! `#[serde(skip)]`.
//!
//! On top of the tree model sits a **streaming fast path**:
//! [`Serialize::write_json`] / [`Serialize::write_binary`] emit a type
//! straight into a byte buffer, and [`Deserialize::read_from`] decodes
//! it from an event-driven [`Reader`] ([`json::JsonReader`] or
//! [`binary::BinReader`]) without materialising a `Value`. The default
//! methods fall back through the tree, so hand-written impls stay
//! correct without opting in, and both paths are pinned byte-identical
//! (the derive and the fallback route through the same [`json`] /
//! [`binary`] emit helpers).
//!
//! Wire limits: both readers cap container nesting at [`MAX_DEPTH`], so
//! adversarial input fails with a parse error instead of exhausting the
//! decoder's stack.
//!
//! Maps serialize as arrays of `[key, value]` pairs regardless of key type,
//! which keeps the encoding self-consistent for non-string keys (the real
//! serde_json would reject those).

use std::borrow::Cow;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;

pub mod binary;
pub mod json;

pub use serde_derive::{Deserialize, Serialize};

/// Hard cap on container nesting for both wire readers, so adversarial
/// `[[[[…` input (JSON or binary) cannot overflow the decoder's stack.
pub const MAX_DEPTH: usize = 128;

/// The common self-describing tree both traits speak.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Any JSON number (f64 is exact for every integer the workspace stores).
    Num(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Arr(Vec<Value>),
    /// JSON object with insertion order preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric contents, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Looks a key up in an object's entry list (linear scan; objects are tiny).
pub fn obj_get<'v>(entries: &'v [(String, Value)], key: &str) -> Option<&'v Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Deserialization failure: what was expected, where.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    /// An "expected X while deserializing Y" error.
    pub fn expected(what: &str, ty: &str) -> Self {
        DeError(format!("expected {what} while deserializing {ty}"))
    }

    /// A missing-field error.
    pub fn missing(field: &str, ty: &str) -> Self {
        DeError(format!("missing field `{field}` while deserializing {ty}"))
    }

    /// A free-form error.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// What kind of value sits next in a [`Reader`]'s input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Peek {
    /// A `null`.
    Null,
    /// A boolean.
    Bool,
    /// A number (for JSON: any token that is not one of the others —
    /// `read_f64` settles whether it actually parses).
    Num,
    /// A string.
    Str,
    /// An array.
    Arr,
    /// An object.
    Obj,
}

/// An event-driven decoder over a borrowed input slice — the common
/// interface [`Deserialize::read_from`] is written against, implemented
/// by [`json::JsonReader`] and [`binary::BinReader`].
///
/// Containers are symmetric state machines: `begin_array` then
/// `array_next` until it returns `false`; `begin_object` then
/// `object_key` until it returns `None`. Strings borrow from the input
/// (`'de`) whenever the encoding allows.
pub trait Reader<'de> {
    /// Classifies the next value without consuming it.
    ///
    /// # Errors
    ///
    /// Fails on exhausted input (or, for binary, an unknown tag).
    fn peek(&mut self) -> Result<Peek, DeError>;

    /// Consumes a `null`.
    ///
    /// # Errors
    ///
    /// Fails if the next value is not `null`.
    fn read_null(&mut self) -> Result<(), DeError>;

    /// Consumes a boolean.
    ///
    /// # Errors
    ///
    /// Fails if the next value is not a boolean.
    fn read_bool(&mut self) -> Result<bool, DeError>;

    /// Consumes a number.
    ///
    /// # Errors
    ///
    /// Fails if the next value is not a number.
    fn read_f64(&mut self) -> Result<f64, DeError>;

    /// Consumes a string, borrowing from the input when possible.
    ///
    /// # Errors
    ///
    /// Fails if the next value is not a (well-formed) string.
    fn read_str(&mut self) -> Result<Cow<'de, str>, DeError>;

    /// Opens an array.
    ///
    /// # Errors
    ///
    /// Fails if the next value is not an array, or the nesting depth
    /// exceeds [`MAX_DEPTH`].
    fn begin_array(&mut self) -> Result<(), DeError>;

    /// `true` if another element follows (read it next); `false` closes
    /// the array.
    ///
    /// # Errors
    ///
    /// Fails on malformed input (e.g. a missing `,`).
    fn array_next(&mut self) -> Result<bool, DeError>;

    /// Opens an object.
    ///
    /// # Errors
    ///
    /// Fails if the next value is not an object, or the nesting depth
    /// exceeds [`MAX_DEPTH`].
    fn begin_object(&mut self) -> Result<(), DeError>;

    /// The next entry's key (read its value next), or `None` closing
    /// the object.
    ///
    /// # Errors
    ///
    /// Fails on malformed input.
    fn object_key(&mut self) -> Result<Option<Cow<'de, str>>, DeError>;

    /// Consumes and discards one whole value (any shape) — how struct
    /// decoding skips unknown fields. Depth-capped like everything
    /// else.
    ///
    /// # Errors
    ///
    /// Propagates any parse failure inside the skipped value.
    fn skip_value(&mut self) -> Result<(), DeError>
    where
        Self: Sized,
    {
        match self.peek()? {
            Peek::Null => self.read_null(),
            Peek::Bool => self.read_bool().map(drop),
            Peek::Num => self.read_f64().map(drop),
            Peek::Str => self.read_str().map(drop),
            Peek::Arr => {
                self.begin_array()?;
                while self.array_next()? {
                    self.skip_value()?;
                }
                Ok(())
            }
            Peek::Obj => {
                self.begin_object()?;
                while self.object_key()?.is_some() {
                    self.skip_value()?;
                }
                Ok(())
            }
        }
    }

    /// Consumes one whole value into a [`Value`] tree — the bridge that
    /// lets [`Deserialize::from_value`]-only types decode from a
    /// stream.
    ///
    /// # Errors
    ///
    /// Propagates any parse failure.
    fn read_value(&mut self) -> Result<Value, DeError>
    where
        Self: Sized,
    {
        match self.peek()? {
            Peek::Null => {
                self.read_null()?;
                Ok(Value::Null)
            }
            Peek::Bool => Ok(Value::Bool(self.read_bool()?)),
            Peek::Num => Ok(Value::Num(self.read_f64()?)),
            Peek::Str => Ok(Value::Str(self.read_str()?.into_owned())),
            Peek::Arr => {
                self.begin_array()?;
                let mut items = Vec::new();
                while self.array_next()? {
                    items.push(self.read_value()?);
                }
                Ok(Value::Arr(items))
            }
            Peek::Obj => {
                self.begin_object()?;
                let mut entries = Vec::new();
                while let Some(key) = self.object_key()? {
                    let item = self.read_value()?;
                    entries.push((key.into_owned(), item));
                }
                Ok(Value::Obj(entries))
            }
        }
    }
}

/// Renders `self` into a [`Value`] tree, or streams it straight into a
/// byte buffer.
pub trait Serialize {
    /// The `Value` encoding of `self`.
    fn to_value(&self) -> Value;

    /// Appends the compact JSON encoding of `self` to `out`, without
    /// materialising a `Value`. The default falls back through
    /// [`Serialize::to_value`]; both paths emit identical bytes.
    fn write_json(&self, out: &mut Vec<u8>) {
        json::write_value(&self.to_value(), out);
    }

    /// Appends the compact binary encoding of `self` to `out`, without
    /// materialising a `Value`. The default falls back through
    /// [`Serialize::to_value`]; both paths emit identical bytes.
    fn write_binary(&self, out: &mut Vec<u8>) {
        binary::write_value(&self.to_value(), out);
    }
}

/// Rebuilds `Self` from a [`Value`] tree, or straight from a streaming
/// [`Reader`].
pub trait Deserialize: Sized {
    /// Parses `Self` out of `value`.
    fn from_value(value: &Value) -> Result<Self, DeError>;

    /// Parses `Self` out of a streaming reader. The default falls back
    /// to [`Reader::read_value`] + [`Deserialize::from_value`], so
    /// hand-written tree impls keep working; derived impls decode
    /// event-by-event with no intermediate tree.
    ///
    /// # Errors
    ///
    /// Propagates reader parse failures and shape mismatches.
    fn read_from<'de, R: Reader<'de>>(reader: &mut R) -> Result<Self, DeError> {
        let value = reader.read_value()?;
        Self::from_value(&value)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }

    fn write_json(&self, out: &mut Vec<u8>) {
        (**self).write_json(out);
    }

    fn write_binary(&self, out: &mut Vec<u8>) {
        (**self).write_binary(out);
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }

    fn write_json(&self, out: &mut Vec<u8>) {
        json::write_value(self, out);
    }

    fn write_binary(&self, out: &mut Vec<u8>) {
        binary::write_value(self, out);
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }

    fn read_from<'de, R: Reader<'de>>(reader: &mut R) -> Result<Self, DeError> {
        reader.read_value()
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }

            fn write_json(&self, out: &mut Vec<u8>) {
                json::write_f64(*self as f64, out);
            }

            fn write_binary(&self, out: &mut Vec<u8>) {
                binary::write_f64(*self as f64, out);
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let n = value
                    .as_num()
                    .ok_or_else(|| DeError::expected("number", stringify!($t)))?;
                if n.fract() != 0.0 {
                    return Err(DeError::expected("integer", stringify!($t)));
                }
                Ok(n as $t)
            }

            fn read_from<'de, R: Reader<'de>>(reader: &mut R) -> Result<Self, DeError> {
                let n = reader.read_f64()?;
                if n.fract() != 0.0 {
                    return Err(DeError::expected("integer", stringify!($t)));
                }
                Ok(n as $t)
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Num(*self)
    }

    fn write_json(&self, out: &mut Vec<u8>) {
        json::write_f64(*self, out);
    }

    fn write_binary(&self, out: &mut Vec<u8>) {
        binary::write_f64(*self, out);
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Num(n) => Ok(*n),
            // NaN/inf round-trip through null / string markers.
            Value::Null => Ok(f64::NAN),
            Value::Str(s) if s == "NaN" => Ok(f64::NAN),
            Value::Str(s) if s == "inf" => Ok(f64::INFINITY),
            Value::Str(s) if s == "-inf" => Ok(f64::NEG_INFINITY),
            _ => Err(DeError::expected("number", "f64")),
        }
    }

    fn read_from<'de, R: Reader<'de>>(reader: &mut R) -> Result<Self, DeError> {
        match reader.peek()? {
            Peek::Num => reader.read_f64(),
            // Same leniency as `from_value`: NaN/inf arrive as null /
            // string markers from the JSON encoding.
            Peek::Null => {
                reader.read_null()?;
                Ok(f64::NAN)
            }
            Peek::Str => match reader.read_str()?.as_ref() {
                "NaN" => Ok(f64::NAN),
                "inf" => Ok(f64::INFINITY),
                "-inf" => Ok(f64::NEG_INFINITY),
                _ => Err(DeError::expected("number", "f64")),
            },
            _ => Err(DeError::expected("number", "f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Num(f64::from(*self))
    }

    fn write_json(&self, out: &mut Vec<u8>) {
        json::write_f64(f64::from(*self), out);
    }

    fn write_binary(&self, out: &mut Vec<u8>) {
        binary::write_f64(f64::from(*self), out);
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        f64::from_value(value).map(|n| n as f32)
    }

    fn read_from<'de, R: Reader<'de>>(reader: &mut R) -> Result<Self, DeError> {
        f64::read_from(reader).map(|n| n as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }

    fn write_json(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(if *self { b"true" } else { b"false" });
    }

    fn write_binary(&self, out: &mut Vec<u8>) {
        binary::write_bool(*self, out);
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", "bool")),
        }
    }

    fn read_from<'de, R: Reader<'de>>(reader: &mut R) -> Result<Self, DeError> {
        reader.read_bool()
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }

    fn write_json(&self, out: &mut Vec<u8>) {
        json::write_escaped(self, out);
    }

    fn write_binary(&self, out: &mut Vec<u8>) {
        binary::write_str(self, out);
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::expected("string", "String"))
    }

    fn read_from<'de, R: Reader<'de>>(reader: &mut R) -> Result<Self, DeError> {
        Ok(reader.read_str()?.into_owned())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }

    fn write_json(&self, out: &mut Vec<u8>) {
        json::write_escaped(self, out);
    }

    fn write_binary(&self, out: &mut Vec<u8>) {
        binary::write_str(self, out);
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }

    fn write_json(&self, out: &mut Vec<u8>) {
        json::write_escaped(self.encode_utf8(&mut [0u8; 4]), out);
    }

    fn write_binary(&self, out: &mut Vec<u8>) {
        binary::write_str(self.encode_utf8(&mut [0u8; 4]), out);
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let s = value
            .as_str()
            .ok_or_else(|| DeError::expected("string", "char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::expected("single-character string", "char")),
        }
    }

    fn read_from<'de, R: Reader<'de>>(reader: &mut R) -> Result<Self, DeError> {
        let s = reader.read_str()?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::expected("single-character string", "char")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }

    fn write_json(&self, out: &mut Vec<u8>) {
        match self {
            None => out.extend_from_slice(b"null"),
            Some(v) => v.write_json(out),
        }
    }

    fn write_binary(&self, out: &mut Vec<u8>) {
        match self {
            None => binary::write_null(out),
            Some(v) => v.write_binary(out),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn read_from<'de, R: Reader<'de>>(reader: &mut R) -> Result<Self, DeError> {
        if reader.peek()? == Peek::Null {
            reader.read_null()?;
            Ok(None)
        } else {
            T::read_from(reader).map(Some)
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }

    fn write_json(&self, out: &mut Vec<u8>) {
        self.as_slice().write_json(out);
    }

    fn write_binary(&self, out: &mut Vec<u8>) {
        self.as_slice().write_binary(out);
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_arr()
            .ok_or_else(|| DeError::expected("array", "Vec"))?
            .iter()
            .map(T::from_value)
            .collect()
    }

    fn read_from<'de, R: Reader<'de>>(reader: &mut R) -> Result<Self, DeError> {
        reader.begin_array()?;
        let mut items = Vec::new();
        while reader.array_next()? {
            items.push(T::read_from(reader)?);
        }
        Ok(items)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }

    fn write_json(&self, out: &mut Vec<u8>) {
        out.push(b'[');
        for (i, item) in self.iter().enumerate() {
            if i > 0 {
                out.push(b',');
            }
            item.write_json(out);
        }
        out.push(b']');
    }

    fn write_binary(&self, out: &mut Vec<u8>) {
        binary::write_arr(self.len(), out);
        for item in self {
            item.write_binary(out);
        }
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$n.to_value()),+])
            }

            fn write_json(&self, out: &mut Vec<u8>) {
                out.push(b'[');
                let mut first = true;
                $(
                    if !::std::mem::replace(&mut first, false) {
                        out.push(b',');
                    }
                    self.$n.write_json(out);
                )+
                out.push(b']');
            }

            fn write_binary(&self, out: &mut Vec<u8>) {
                binary::write_arr([$( stringify!($n) ),+].len(), out);
                $( self.$n.write_binary(out); )+
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let items = value.as_arr().ok_or_else(|| DeError::expected("array", "tuple"))?;
                let expected = [$( stringify!($n) ),+].len();
                if items.len() != expected {
                    return Err(DeError::custom(format!(
                        "tuple length mismatch: expected {expected}, got {}",
                        items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$n])?,)+))
            }

            fn read_from<'de, R: Reader<'de>>(reader: &mut R) -> Result<Self, DeError> {
                reader.begin_array()?;
                let expected = [$( stringify!($n) ),+].len();
                let short = || DeError::custom(format!(
                    "tuple length mismatch: expected {expected}"
                ));
                let out = ($(
                    {
                        let _ = $n;
                        if !reader.array_next()? {
                            return Err(short());
                        }
                        $t::read_from(reader)?
                    },
                )+);
                if reader.array_next()? {
                    return Err(short());
                }
                Ok(out)
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Arr(
            self.iter()
                .map(|(k, v)| Value::Arr(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }

    fn write_json(&self, out: &mut Vec<u8>) {
        write_pairs_json(self.iter(), out);
    }

    fn write_binary(&self, out: &mut Vec<u8>) {
        write_pairs_binary(self.len(), self.iter(), out);
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        map_pairs(value)?.collect()
    }

    fn read_from<'de, R: Reader<'de>>(reader: &mut R) -> Result<Self, DeError> {
        read_pairs(reader, BTreeMap::new(), |map, k, v| {
            map.insert(k, v);
        })
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Sort the pair encoding so serialization is deterministic.
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| {
                (
                    format!("{:?}", k.to_value()),
                    Value::Arr(vec![k.to_value(), v.to_value()]),
                )
            })
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Arr(pairs.into_iter().map(|(_, v)| v).collect())
    }

    fn write_json(&self, out: &mut Vec<u8>) {
        write_pairs_json(sorted_hash_pairs(self).into_iter(), out);
    }

    fn write_binary(&self, out: &mut Vec<u8>) {
        write_pairs_binary(self.len(), sorted_hash_pairs(self).into_iter(), out);
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        map_pairs(value)?.collect()
    }

    fn read_from<'de, R: Reader<'de>>(reader: &mut R) -> Result<Self, DeError> {
        read_pairs(reader, HashMap::new(), |map, k, v| {
            map.insert(k, v);
        })
    }
}

/// The same deterministic ordering [`HashMap::to_value`] uses: pairs
/// sorted by the debug rendering of the key's `Value` encoding.
fn sorted_hash_pairs<K: Serialize, V>(map: &HashMap<K, V>) -> Vec<(&K, &V)> {
    let mut pairs: Vec<(String, (&K, &V))> = map
        .iter()
        .map(|(k, v)| (format!("{:?}", k.to_value()), (k, v)))
        .collect();
    pairs.sort_by(|a, b| a.0.cmp(&b.0));
    pairs.into_iter().map(|(_, kv)| kv).collect()
}

/// Streams a map's `[[k, v], ...]` pair-array JSON encoding.
fn write_pairs_json<'m, K: Serialize + 'm, V: Serialize + 'm>(
    pairs: impl Iterator<Item = (&'m K, &'m V)>,
    out: &mut Vec<u8>,
) {
    out.push(b'[');
    for (i, (k, v)) in pairs.enumerate() {
        if i > 0 {
            out.push(b',');
        }
        out.push(b'[');
        k.write_json(out);
        out.push(b',');
        v.write_json(out);
        out.push(b']');
    }
    out.push(b']');
}

/// Streams a map's `[[k, v], ...]` pair-array binary encoding.
fn write_pairs_binary<'m, K: Serialize + 'm, V: Serialize + 'm>(
    len: usize,
    pairs: impl Iterator<Item = (&'m K, &'m V)>,
    out: &mut Vec<u8>,
) {
    binary::write_arr(len, out);
    for (k, v) in pairs {
        binary::write_arr(2, out);
        k.write_binary(out);
        v.write_binary(out);
    }
}

/// Streams a map's pair-array decoding into `map` via `insert`.
fn read_pairs<'de, R: Reader<'de>, K: Deserialize, V: Deserialize, M>(
    reader: &mut R,
    mut map: M,
    insert: impl Fn(&mut M, K, V),
) -> Result<M, DeError> {
    let pair_error = || DeError::expected("[key, value] pair", "map");
    reader.begin_array()?;
    while reader.array_next()? {
        reader.begin_array()?;
        if !reader.array_next()? {
            return Err(pair_error());
        }
        let k = K::read_from(reader)?;
        if !reader.array_next()? {
            return Err(pair_error());
        }
        let v = V::read_from(reader)?;
        if reader.array_next()? {
            return Err(pair_error());
        }
        insert(&mut map, k, v);
    }
    Ok(map)
}

/// Shared `[[k, v], ...]` decoding for both map types.
fn map_pairs<'v, K: Deserialize, V: Deserialize>(
    value: &'v Value,
) -> Result<impl Iterator<Item = Result<(K, V), DeError>> + 'v, DeError> {
    let items = value
        .as_arr()
        .ok_or_else(|| DeError::expected("array of pairs", "map"))?;
    Ok(items.iter().map(|item| {
        let pair = item
            .as_arr()
            .ok_or_else(|| DeError::expected("[key, value] pair", "map"))?;
        if pair.len() != 2 {
            return Err(DeError::expected("[key, value] pair", "map"));
        }
        Ok((K::from_value(&pair[0])?, V::from_value(&pair[1])?))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()), Ok(42));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".into())
        );
        assert_eq!(Option::<u8>::from_value(&Value::Null), Ok(None));
        assert_eq!(
            <(u8, String)>::from_value(&(3u8, "x".to_string()).to_value()),
            Ok((3, "x".into()))
        );
    }

    #[test]
    fn maps_encode_as_pairs() {
        let mut m = BTreeMap::new();
        m.insert(2u32, "b".to_string());
        m.insert(1u32, "a".to_string());
        let v = m.to_value();
        assert_eq!(BTreeMap::<u32, String>::from_value(&v), Ok(m));
    }

    /// Every built-in impl must emit the same bytes from its streaming
    /// writer as the `Value`-tree fallback, both codecs.
    #[test]
    fn streaming_writers_match_the_value_path() {
        fn check<T: Serialize>(v: &T) {
            let (mut js, mut jv, mut bs, mut bv) = (vec![], vec![], vec![], vec![]);
            v.write_json(&mut js);
            json::write_value(&v.to_value(), &mut jv);
            assert_eq!(js, jv);
            v.write_binary(&mut bs);
            binary::write_value(&v.to_value(), &mut bv);
            assert_eq!(bs, bv);
        }
        check(&42u32);
        check(&-7i64);
        check(&1.5f64);
        check(&f64::NAN);
        check(&true);
        check(&'π');
        check(&"a\"b\\c\n".to_string());
        check(&Option::<u8>::None);
        check(&Some(3u8));
        check(&Vec::<u8>::new());
        check(&vec![1u8, 2, 3]);
        check(&(1u8, "two".to_string(), 3.0f64));
        let mut bt = BTreeMap::new();
        bt.insert("k".to_string(), vec![1u32]);
        check(&bt);
        let mut hm = HashMap::new();
        hm.insert("b".to_string(), 2u32);
        hm.insert("a".to_string(), 1u32);
        check(&hm);
    }

    /// The streaming readers must accept everything the `Value` path
    /// accepts, including the f64 NaN/inf leniency.
    #[test]
    fn streaming_readers_match_the_value_path() {
        fn json_read<T: Deserialize>(text: &str) -> Result<T, DeError> {
            let mut reader = json::JsonReader::new(text);
            let v = T::read_from(&mut reader)?;
            reader.expect_end()?;
            Ok(v)
        }
        assert_eq!(json_read::<u32>("42"), Ok(42));
        assert!(json_read::<u32>("1.5").is_err());
        assert!(json_read::<f64>("null").unwrap().is_nan());
        assert_eq!(json_read::<f64>("\"inf\""), Ok(f64::INFINITY));
        assert_eq!(json_read::<Option<bool>>("null"), Ok(None));
        assert_eq!(
            json_read::<(u8, String)>("[3,\"x\"]"),
            Ok((3, "x".to_string()))
        );
        assert!(json_read::<(u8, u8)>("[1]").is_err());
        assert!(json_read::<(u8, u8)>("[1,2,3]").is_err());
        let m: HashMap<String, u32> = json_read("[[\"a\",1],[\"b\",2]]").unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m["b"], 2);
    }
}
