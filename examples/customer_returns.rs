//! The motivating scenario of the paper's introduction: a batch of
//! customer returns arrives and the defect investigation report is due in
//! ten calendar days. Diagnose the whole batch automatically and score the
//! candidates against the (normally unknown) injected ground truth.
//!
//! Run: `cargo run --release --example customer_returns [batch_size]`

use abbd::baselines::group_by_device;
use abbd::core::Observation;
use abbd::designs::regulator::{
    self,
    program::{suite_plans, OBSERVED_VARS},
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let batch_size: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(25);

    println!("fitting the diagnostic model on 70 historical failing devices...");
    let fitted = regulator::fit(70, 2010, regulator::default_algorithm())?;

    println!("receiving a batch of {batch_size} customer returns...\n");
    let returns = regulator::synthesize(batch_size, 4242, 500_000)?;
    let signatures = group_by_device(&returns.cases);

    let plans = suite_plans();
    let mut top1 = 0usize;
    let mut top2 = 0usize;
    println!(
        "{:<8} {:<22} {:<34} {:>5}",
        "device", "ground truth", "candidates (ranked)", "hit"
    );
    for sig in &signatures {
        // Diagnose every suite that shows deviations; merge candidates.
        let mut merged: Vec<(String, f64)> = Vec::new();
        for plan in &plans {
            let mut obs = Observation::new();
            let mut failing = false;
            for ((suite, var), &state) in &sig.features {
                if suite == plan.name {
                    obs.set(var.clone(), state);
                    if let Some(oi) = OBSERVED_VARS.iter().position(|o| o == var) {
                        if state != plan.healthy_states[oi] {
                            obs.mark_failing(var.clone());
                            failing = true;
                        }
                    }
                }
            }
            if !failing {
                continue;
            }
            let diagnosis = fitted.engine.diagnose(&obs)?;
            for c in diagnosis.candidates() {
                match merged.iter_mut().find(|(n, _)| *n == c.variable) {
                    Some(slot) => slot.1 = slot.1.max(c.fault_mass),
                    None => merged.push((c.variable.clone(), c.fault_mass)),
                }
            }
        }
        merged.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));

        let truth = sig.truth_blocks.join(",");
        let shown: Vec<String> = merged
            .iter()
            .take(3)
            .map(|(n, m)| format!("{n}({m:.2})"))
            .collect();
        let hit1 = merged
            .first()
            .is_some_and(|(n, _)| sig.truth_blocks.iter().any(|t| t == n));
        let hit2 = merged
            .iter()
            .take(2)
            .any(|(n, _)| sig.truth_blocks.iter().any(|t| t == n));
        top1 += usize::from(hit1);
        top2 += usize::from(hit2);
        println!(
            "{:<8} {:<22} {:<34} {:>5}",
            sig.device_id,
            truth,
            shown.join(" "),
            if hit1 {
                "top1"
            } else if hit2 {
                "top2"
            } else {
                "-"
            }
        );
    }
    println!(
        "\nbatch summary: true block ranked first for {top1}/{} devices, \
         in the top two for {top2}/{}",
        signatures.len(),
        signatures.len()
    );
    println!(
        "(the remaining devices carry faults that are observationally \
         ambiguous at block level — the paper's step two, structural test, \
         takes over from here)"
    );
    Ok(())
}
