//! Serving diagnosis over the wire: start an in-process `abbd-server`,
//! open a stored session, drive a short adaptive loop over HTTP, and
//! read the verdict — the walkthrough of the whole service surface.
//!
//! ```text
//! cargo run --release --example serve_and_diagnose
//! ```

use abbd::core::fixtures::toy_compiled_model;
use abbd::core::{Observation, SessionReport, SessionRequest};
use abbd::server::{
    codec, Client, HealthReport, ModelRegistry, ModelsReport, OpenSessionReply, Server,
    ServerConfig, StatsReport,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Compile the registry once and start serving. (A real deployment
    //    runs the `abbd-serve` binary with the fitted regulator; the toy
    //    model keeps this example instant.)
    let registry = ModelRegistry::new()
        .insert("toy", toy_compiled_model())
        .freeze();
    let server = Server::start(registry, ServerConfig::default())?;
    println!("serving on http://{}", server.addr());

    // 2. Any HTTP client works; this one ships with the crate.
    let mut client = Client::connect(server.addr())?;
    let (_, health) = client.get("/healthz")?;
    let health: HealthReport = serde_json::from_str(&health)?;
    println!("health: {} ({} model(s))", health.status, health.models);
    let (_, models) = client.get("/v1/models")?;
    let models: ModelsReport = serde_json::from_str(&models)?;
    for m in &models.models {
        println!(
            "model `{}`: {} variables, {} latent blocks, {} observables",
            m.name, m.variables, m.latents, m.observables
        );
    }

    // 3. Open a stored session: the device under diagnosis. Its
    //    propagation workspaces are allocated once, here.
    let (_, open) = client.post("/v1/models/toy/sessions", "{}")?;
    let open: OpenSessionReply = serde_json::from_str(&open)?;
    println!("opened session {}", open.session_id);

    // 4. The adaptive loop: post what we know, follow the ranked
    //    recommendation, answer from the bench, repeat until the server
    //    says stop. Here the bench is a closure playing a dead `bias`
    //    block (out1/out2 read low and failing).
    let bench = |target: &str| match target {
        "out1" | "out2" => (0usize, true),
        _ => (1usize, false),
    };
    let mut observation = Observation::new();
    observation.set("pin", 1);
    let round_path = format!("/v1/sessions/{}/round", open.session_id);
    for round in 1.. {
        let request = SessionRequest::new(observation.clone());
        let (_, body) = client.post(&round_path, &serde_json::to_string(&request)?)?;
        let report: SessionReport = serde_json::from_str(&body)?;
        println!(
            "round {round}: log-likelihood {:.3}, top candidate {:?}",
            report.log_likelihood, report.top_candidate
        );
        if let Some(stop) = report.stop {
            println!("loop stops: {stop:?}");
            break;
        }
        let next = &report.ranked[0];
        let (state, failing) = bench(next.action.target());
        println!(
            "  server recommends `{}` (gain {:.4} nats); bench answers state {state}{}",
            next.action,
            next.gain,
            if failing { " FAILING" } else { "" }
        );
        observation.set(next.action.target(), state);
        if failing {
            observation.mark_failing(next.action.target());
        }
    }

    // 5. The same loop, cheaper on the wire: a second session driven
    //    with the compact binary codec and **delta rounds**. The first
    //    request carries the full picture; every later one carries only
    //    the measurement just taken (`delta: true`) — the server already
    //    holds the rest. Replies come back as binary frames too
    //    (`accept: application/x-abbd-binary`), and decode to exactly
    //    the reports the JSON loop saw.
    let (_, open2) = client.post("/v1/models/toy/sessions", "{}")?;
    let open2: OpenSessionReply = serde_json::from_str(&open2)?;
    let round_path = format!("/v1/sessions/{}/round", open2.session_id);
    let mut observation = Observation::new();
    observation.set("pin", 1);
    let mut request = SessionRequest::new(observation);
    for round in 1.. {
        let (_, frame) = client.post_binary(&round_path, &codec::to_frame(&request))?;
        let report: SessionReport = codec::from_frame(&frame)?;
        println!(
            "binary round {round}: {} bytes on the wire, top candidate {:?}",
            frame.len(),
            report.top_candidate
        );
        if let Some(stop) = report.stop {
            println!("binary+delta loop stops: {stop:?}");
            break;
        }
        let next = &report.ranked[0];
        let (state, failing) = bench(next.action.target());
        // Only the new evidence rides the next request.
        let mut fresh = Observation::new();
        fresh.set(next.action.target(), state);
        if failing {
            fresh.mark_failing(next.action.target());
        }
        request = SessionRequest::new(fresh).into_delta();
    }
    client.delete(&format!("/v1/sessions/{}", open2.session_id))?;

    // 6. Close the first session and look at the serving counters.
    client.delete(&format!("/v1/sessions/{}", open.session_id))?;
    let (_, stats) = client.get("/v1/stats")?;
    let stats: StatsReport = serde_json::from_str(&stats)?;
    println!(
        "served {} rounds over {} requests; worker compiles: {} (always 0 — \
         serving reuses the startup compilation)",
        stats.rounds, stats.requests, stats.worker_compiles
    );
    server.shutdown();
    Ok(())
}
