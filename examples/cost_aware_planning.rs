//! Cost-aware lookahead test planning: tester-seconds, not just nats.
//!
//! Fits the regulator model, then compares the three candidate-selection
//! strategies of `abbd::core::DiagnosisSession` — raw-gain myopic,
//! cost-weighted (gain per tester-second) and depth-2 expectimax
//! lookahead — first on the paper's case study d1, then on a 16-device
//! cross-suite population scenario where every failing stimulus suite of
//! a device is a diagnosis context and switching suites costs a
//! reconfiguration. The cost-aware strategies keep the information while
//! cutting stimulus switches and total tester time.
//!
//! Run with: `cargo run --release --example cost_aware_planning`

use abbd::core::{CostModel, StoppingPolicy, Strategy};
use abbd::designs::regulator;
use abbd::designs::regulator::adaptive::{
    cross_suite_population, reference_cost_model, summarize_cross_suite, traced_case_study,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("fitting the regulator model on 30 failing devices...");
    let fitted = regulator::fit(30, 2010, regulator::default_algorithm())?;
    let policy = StoppingPolicy::default();
    let d1 = &regulator::cases::case_studies()[0];

    println!("\n== case study d1, per-strategy decision traces ==");
    let strategies = [
        ("myopic", Strategy::Myopic, reference_cost_model()),
        (
            "cost-weighted",
            Strategy::CostWeighted,
            reference_cost_model(),
        ),
        (
            "lookahead-2",
            Strategy::Lookahead { depth: 2 },
            CostModel::unit(),
        ),
    ];
    for (label, strategy, cost) in strategies {
        let (outcome, trace) = traced_case_study(&fitted.engine, d1, policy, strategy, cost)?;
        println!(
            "\n{label}: {} tests, {:.1} tester-seconds, stop {:?}, top candidate {:?}",
            outcome.tests_used(),
            outcome.tester_seconds(),
            outcome.stop,
            outcome.diagnosis.top_candidate(),
        );
        for step in &trace.steps {
            let best = &step.scores[0];
            println!(
                "  measured {:<6} state {} ({}) — value {:.4} nats / cost {:.1} s = score {:.4}",
                step.chosen,
                step.state,
                if step.failing { "FAIL" } else { "pass" },
                best.gain,
                best.cost,
                best.score,
            );
        }
    }

    println!("\n== 16-device cross-suite population (seed 2024) ==");
    let cost = reference_cost_model();
    for (label, strategy) in [
        ("myopic", Strategy::Myopic),
        ("cost-weighted", Strategy::CostWeighted),
        ("lookahead-2", Strategy::Lookahead { depth: 2 }),
    ] {
        let run = cross_suite_population(&fitted.engine, 16, 2024, policy, strategy, &cost)?;
        let summary = summarize_cross_suite(strategy, &run.reports);
        println!(
            "{label:>14}: {:>3} tests, {:>2} stimulus switches, {:>2}/{} isolated, \
             {:>2}/{} hits, {:>6.1} tester-seconds",
            summary.tests,
            summary.stimulus_switches,
            summary.isolated,
            summary.devices,
            summary.hits,
            summary.devices,
            summary.tester_seconds,
        );
    }
    println!(
        "\ncost-aware arbitration finishes a stimulus suite before paying for the next one;\n\
         the myopic loop ping-pongs between near-tied twin tests of different suites."
    );
    Ok(())
}
