//! Quickstart: model a two-stage analogue circuit, learn from a handful of
//! failing devices, and diagnose a new failure — the whole method on a
//! napkin.
//!
//! Run: `cargo run --release --example quickstart`

use abbd::bbn::learn::EmConfig;
use abbd::core::{
    CircuitModel, DiagnosticEngine, ExpertKnowledge, LearnAlgorithm, ModelBuilder, Observation,
};
use abbd::dlog2bbn::{FunctionalType, ModelSpec, NamedCase, StateBand, VariableSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- 1. Structure modelling ------------------------------------------
    // Three model variables: a controllable supply pin, a latent bias
    // block, an observable output. Bias depends on the supply; the output
    // depends on the bias.
    let spec = ModelSpec::new([
        VariableSpec {
            name: "supply".into(),
            ftype: FunctionalType::Control,
            bands: vec![
                StateBand::new("0", 0.0, 3.0, "low"),
                StateBand::new("1", 3.0, 6.0, "nominal"),
            ],
            ckt_ref: None,
        },
        VariableSpec {
            name: "bias".into(),
            ftype: FunctionalType::Latent,
            bands: vec![
                StateBand::new("0", 0.0, 1.0, "non-operational"),
                StateBand::new("1", 1.0, 1.4, "operational"),
            ],
            ckt_ref: None,
        },
        VariableSpec {
            name: "out".into(),
            ftype: FunctionalType::Observe,
            bands: vec![
                StateBand::new("0", -0.05, 4.5, "fail"),
                StateBand::new("1", 4.5, 5.5, "pass"),
            ],
            ckt_ref: None,
        },
    ])?;
    let mut model = CircuitModel::new(spec);
    model.depends("supply", "bias")?;
    model.depends("bias", "out")?;

    // ---- 2. Parameter modelling ------------------------------------------
    // The designer's rough estimate...
    let mut expert = ExpertKnowledge::new(20.0);
    expert.cpt("supply", [[0.3, 0.7]]);
    // The bias block is the known weak spot; the output stage rarely
    // fails on its own.
    expert.cpt("bias", [[0.9, 0.1], [0.12, 0.88]]);
    expert.cpt("out", [[0.95, 0.05], [0.04, 0.96]]);

    // ...fine-tuned on cases from failing devices (in the real flow these
    // come from ATE datalogs through Dlog2BBN; see the `ate_flow` example).
    let cases: Vec<NamedCase> = (0..30)
        .map(|i| NamedCase {
            device_id: i,
            suite: "dc".into(),
            assignment: vec![
                ("supply".into(), 1),
                ("out".into(), usize::from(i % 5 == 0)),
            ],
            failing: if i % 5 == 0 {
                vec![]
            } else {
                vec!["out".into()]
            },
            truth: vec![],
        })
        .collect();
    let fitted = ModelBuilder::new(model).with_expert(expert).learn(
        &cases,
        LearnAlgorithm::Em(EmConfig {
            max_iterations: 20,
            tolerance: 1e-6,
        }),
    )?;
    let summary = fitted.summary().expect("learning ran");
    println!(
        "fine-tuned on {} cases in {} EM iteration(s)",
        summary.case_count, summary.iterations
    );

    // ---- 3. Diagnostic mode -----------------------------------------------
    let engine = DiagnosticEngine::new(fitted)?;
    let mut seen = Observation::new();
    seen.set("supply", 1).set("out", 0);
    seen.mark_failing("out");
    let diagnosis = engine.diagnose(&seen)?;

    println!("\nposterior state probabilities:");
    for (name, dist) in diagnosis.posteriors() {
        let cells: Vec<String> = dist.iter().map(|p| format!("{:5.1}%", p * 100.0)).collect();
        println!("  {name:<8} [{}]", cells.join(" "));
    }
    println!("\nranked failing-block candidates:");
    for (i, c) in diagnosis.candidates().iter().enumerate() {
        println!(
            "  {}. {} (fault mass {:.2})",
            i + 1,
            c.variable,
            c.fault_mass
        );
    }
    assert_eq!(diagnosis.top_candidate(), Some("bias"));
    println!("\nthe latent bias block is the culprit — diagnosis complete");
    Ok(())
}
