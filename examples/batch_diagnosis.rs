//! Batch diagnosis: many boards, one compiled engine.
//!
//! Fits the regulator model once, then diagnoses a whole synthetic return
//! floor in a single `diagnose_batch` call — the serving shape for heavy
//! ATE traffic. Compares wall time and verdict agreement against the
//! one-board-at-a-time loop.
//!
//! Run with: `cargo run --release --example batch_diagnosis`

use abbd::core::Observation;
use abbd::designs::regulator;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("fitting the regulator model on 30 failing devices...");
    let fitted = regulator::fit(30, 2010, regulator::default_algorithm())?;

    // A return floor: every (device, suite) case with a failing output.
    let observations: Vec<Observation> = fitted
        .cases
        .iter()
        .filter(|c| !c.failing.is_empty())
        .map(Observation::from)
        .collect();
    println!(
        "{} failing-board observations to diagnose\n",
        observations.len()
    );

    let t = Instant::now();
    let sequential: Vec<_> = observations
        .iter()
        .map(|o| fitted.engine.diagnose(o))
        .collect();
    let t_seq = t.elapsed();

    let t = Instant::now();
    let batch = fitted.engine.diagnose_batch(&observations);
    let t_batch = t.elapsed();

    let mut agree = 0usize;
    for (s, b) in sequential.iter().zip(&batch) {
        match (s, b) {
            (Ok(s), Ok(b)) if s.top_candidate() == b.top_candidate() => agree += 1,
            (Err(_), Err(_)) => agree += 1,
            _ => {}
        }
    }
    println!(
        "sequential: {:>8.1?}   batch: {:>8.1?}   verdict agreement: {agree}/{}",
        t_seq,
        t_batch,
        observations.len()
    );

    // Tally the culprits the floor would see.
    let mut counts: std::collections::BTreeMap<&str, usize> = Default::default();
    for d in batch.iter().flatten() {
        if let Some(top) = d.top_candidate() {
            *counts.entry(top).or_default() += 1;
        }
    }
    println!("\ntop-candidate tally across the floor:");
    let mut ranked: Vec<_> = counts.into_iter().collect();
    ranked.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    for (block, n) in ranked {
        println!("  {block:<10} {n:>3} board(s)");
    }
    Ok(())
}
