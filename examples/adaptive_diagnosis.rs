//! Adaptive sequential diagnosis: pick the most informative test next.
//!
//! Fits the regulator model, replays the paper's case study d1 through
//! the closed-loop `abbd::core::DiagnosisSession` (measure → update
//! → choose the next test by expected information gain → stop when a
//! block is isolated), and compares the adaptive measurement order
//! against the fixed ATE program order. Then runs the same comparison
//! over a small sampled fault population on the live on-demand virtual
//! ATE.
//!
//! Run with: `cargo run --release --example adaptive_diagnosis`

use abbd::core::StoppingPolicy;
use abbd::designs::adaptive::summarize;
use abbd::designs::regulator;
use abbd::designs::regulator::adaptive::{
    adaptive_case_study, closed_loop_population, fixed_case_study,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("fitting the regulator model on 30 failing devices...");
    let fitted = regulator::fit(30, 2010, regulator::default_algorithm())?;
    let policy = StoppingPolicy::default();

    for case in regulator::cases::case_studies() {
        let adaptive = adaptive_case_study(&fitted.engine, &case, policy)?;
        let fixed = fixed_case_study(&fitted.engine, &case, policy)?;
        println!(
            "\ncase {} ({}): adaptive {} tests ({:?}), fixed {} tests ({:?})",
            case.id,
            case.suite,
            adaptive.tests_used(),
            adaptive.stop,
            fixed.tests_used(),
            fixed.stop,
        );
        for step in &adaptive.applied {
            println!(
                "  measured {:<6} -> state {} ({}), gain {:.4} nats",
                step.variable,
                step.state,
                if step.failing { "FAIL" } else { "pass" },
                step.expected_information_gain.unwrap_or(0.0),
            );
        }
        println!(
            "  verdict: {:?} (paper: {:?})",
            adaptive.diagnosis.top_candidate(),
            case.expected_candidates,
        );
    }

    println!("\nclosed loop over a sampled fault population (16 devices)...");
    let run = closed_loop_population(&fitted.engine, 16, 77, policy)?;
    if !run.skipped.is_empty() {
        println!("skipped un-binnable devices: {:?}", run.skipped);
    }
    let summary = summarize(&run.reports);
    println!(
        "adaptive: {} tests total, {} isolated, {} truth hits",
        summary.adaptive_tests, summary.adaptive_isolated, summary.adaptive_hits
    );
    println!(
        "fixed:    {} tests total, {} isolated, {} truth hits",
        summary.fixed_tests, summary.fixed_isolated, summary.fixed_hits
    );
    let saved = summary.fixed_tests.saturating_sub(summary.adaptive_tests);
    println!(
        "adaptive ordering saved {saved} measurements across {} devices",
        summary.devices
    );
    Ok(())
}
