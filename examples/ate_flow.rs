//! The file-based tool flow the paper describes: simulate devices on the
//! virtual ATE, write an ASCII datalog, convert it to cases with the
//! Dlog2BBN logic, and learn from those files — every artefact inspectable
//! on disk.
//!
//! Run: `cargo run --release --example ate_flow [work_dir]`

use abbd::ate::{test_population, write_datalog, NoiseModel};
use abbd::blocks::sample_defective_devices;
use abbd::core::{DiagnosticEngine, ModelBuilder};
use abbd::designs::regulator::{self, cases::case_studies};
use abbd::dlog2bbn::{cases_from_json, cases_to_json, generate_cases};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let work_dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/ate_flow".into());
    std::fs::create_dir_all(&work_dir)?;
    let rig = regulator::rig();

    // --- tester floor: 40 defective devices through the test program ----
    let mut rng = StdRng::seed_from_u64(7);
    let devices = sample_defective_devices(&rig.circuit, &rig.universe, 40, 0, &mut rng);
    let logs = test_population(
        &rig.circuit,
        &rig.program,
        &devices,
        &NoiseModel::production(),
        &mut rng,
    )?;
    let failing: Vec<_> = logs.iter().filter(|l| !l.all_passed()).cloned().collect();
    println!(
        "tested {} devices; {} failed at least one limit",
        logs.len(),
        failing.len()
    );

    // --- datalog file ----------------------------------------------------
    let datalog_path = format!("{work_dir}/regulator.dlog");
    std::fs::write(&datalog_path, write_datalog(&failing))?;
    println!("wrote ATE datalog        -> {datalog_path}");

    // --- spec + mapping files (what the dlog2bbn CLI consumes) -----------
    let spec_path = format!("{work_dir}/spec.json");
    std::fs::write(&spec_path, rig.model.spec().to_json()?)?;
    let mapping_path = format!("{work_dir}/mapping.json");
    std::fs::write(&mapping_path, rig.mapping.to_json()?)?;
    println!("wrote model spec         -> {spec_path}");
    println!("wrote case mapping       -> {mapping_path}");

    // --- case generation (library path; the `dlog2bbn` binary wraps the
    //     same call for shell pipelines) ----------------------------------
    let parsed = abbd::ate::parse_datalog(&std::fs::read_to_string(&datalog_path)?)?;
    let (cases, stats) = generate_cases(rig.model.spec(), &rig.mapping, &parsed)?;
    let cases_path = format!("{work_dir}/cases.json");
    std::fs::write(&cases_path, cases_to_json(&cases)?)?;
    println!(
        "wrote {} cases           -> {cases_path} ({} unbinnable readings)",
        stats.cases, stats.unbinnable
    );

    // --- learn from the file, diagnose -----------------------------------
    let cases = cases_from_json(&std::fs::read_to_string(&cases_path)?)?;
    let fitted = ModelBuilder::new(rig.model)
        .with_expert(rig.expert)
        .learn(&cases, regulator::default_algorithm())?;
    let engine = DiagnosticEngine::new(fitted)?;

    let d5 = &case_studies()[4];
    let diagnosis = engine.diagnose(&d5.observation())?;
    println!(
        "\ndiagnosing case d5 (only the power switch output is dead): {}",
        diagnosis.top_candidate().unwrap_or("<none>")
    );
    Ok(())
}
