//! The paper's industrial case study end to end: fit the voltage-regulator
//! model on 70 simulated customer returns and replay the five diagnostic
//! case studies of Table VI, printing the Table VII-style report.
//!
//! Run: `cargo run --release --example regulator_diagnosis`

use abbd::core::{render_candidates, render_state_table, Diagnosis};
use abbd::core::{Action, DiagnosisSession, StoppingPolicy};
use abbd::designs::regulator::{self, cases::case_studies};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("fitting the voltage-regulator model on 70 failing devices...");
    let fitted = regulator::fit(70, 2010, regulator::default_algorithm())?;
    let summary = fitted.engine.model().summary().expect("learning ran");
    println!(
        "  {} cases, {} EM iterations, final log-likelihood {:.1}",
        summary.case_count,
        summary.iterations,
        summary.objective_trace.last().copied().unwrap_or(f64::NAN)
    );

    let baseline = fitted.engine.baseline()?;
    let studies = case_studies();
    let mut diagnoses: Vec<(String, Diagnosis)> = Vec::new();
    for case in &studies {
        let diagnosis = fitted.engine.diagnose(&case.observation())?;
        diagnoses.push((case.id.to_string(), diagnosis));
    }
    let columns: Vec<(&str, &Diagnosis)> =
        diagnoses.iter().map(|(id, d)| (id.as_str(), d)).collect();

    println!(
        "\n{}",
        render_state_table(fitted.engine.model(), &baseline, &columns)
    );

    for (case, (_, diagnosis)) in studies.iter().zip(&diagnoses) {
        println!(
            "case {} (paper verdict: {}):",
            case.id,
            case.expected_candidates.join(", ")
        );
        print!("{}", render_candidates(diagnosis));
        println!();
    }

    // When two candidates remain (case d1), which block should the failure
    // analyst open first? Open a session on the shared compilation, put
    // every latent on the menu as a probe action, and rank.
    let d1 = &studies[0];
    let mut session = DiagnosisSession::new(
        std::sync::Arc::clone(fitted.engine.compiled()),
        StoppingPolicy::default(),
    )?;
    session.observe_all(&d1.observation())?;
    let menu: Vec<Action> = session
        .compiled()
        .latent_names()
        .map(Action::probe)
        .collect();
    session.set_actions(menu)?;
    println!(
        "step-two probe order for case {} (expected information gain):",
        d1.id
    );
    for p in session.rank_actions()?.iter().take(3) {
        println!(
            "  probe {:<10} gain {:.3} nats",
            p.name(),
            p.expected_information_gain()
        );
    }
    Ok(())
}
