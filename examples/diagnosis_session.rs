//! The unified `DiagnosisSession` API end to end: compile the regulator
//! model once, share the `CompiledModel` across threads, and run one
//! mixed tests-plus-probes closed loop against the virtual bench —
//! finishing with the serde service boundary (`SessionRequest` /
//! `SessionReport`) a diagnosis server would speak.
//!
//! Run with: `cargo run --release --example diagnosis_session`

use abbd::core::{Action, DiagnosisSession, SessionRequest, StopReason, StoppingPolicy, Strategy};
use abbd::designs::regulator::{
    self,
    adaptive::{mixed_case_study, mixed_cost_model, two_phase_case_study},
};
use std::sync::Arc;
use std::thread;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("fitting the regulator model on 30 failing devices...");
    let fitted = regulator::fit(30, 2010, regulator::default_algorithm())?;
    // One compilation artifact, shared by everything below.
    let compiled = Arc::clone(fitted.engine.compiled());

    // -- 1. Concurrent serving: one Arc, many sessions, zero recompiles.
    println!("\n== serving four devices concurrently off one compilation ==");
    let d2 = regulator::cases::case_studies().swap_remove(1);
    let handles: Vec<_> = (0..4)
        .map(|worker| {
            let compiled = Arc::clone(&compiled);
            let observation = d2.observation();
            thread::spawn(move || {
                let mut session =
                    DiagnosisSession::new(compiled, StoppingPolicy::default()).unwrap();
                session.observe_all(&observation).unwrap();
                let verdict = session.diagnose().unwrap();
                (worker, verdict.top_candidate().map(str::to_string))
            })
        })
        .collect();
    for handle in handles {
        let (worker, top) = handle.join().expect("worker serves");
        println!("  worker {worker}: top candidate {top:?}");
    }

    // -- 2. The mixed candidate set: tests and probes, one ranking.
    println!("\n== case d1: electrical tests and bench probes in one loop ==");
    let d1 = &regulator::cases::case_studies()[0];
    let strict = StoppingPolicy {
        fault_mass_threshold: 0.995,
        max_steps: 32,
        min_gain: 0.0,
    };
    let (unified, _trace) = mixed_case_study(
        &fitted.engine,
        d1,
        strict,
        Strategy::CostWeighted,
        mixed_cost_model(),
    )?;
    for step in &unified.applied {
        println!(
            "  measured {:<9} state {} ({:.1} s)",
            step.variable,
            step.state,
            step.cost.unwrap_or(0.0)
        );
    }
    println!(
        "  unified: {} measurements, {:.1} tester-seconds, stop {:?}, verdict {:?}",
        unified.tests_used(),
        unified.tester_seconds(),
        unified.stop,
        unified.diagnosis.top_candidate(),
    );
    let (step_one, step_two) = two_phase_case_study(
        &fitted.engine,
        d1,
        strict,
        Strategy::CostWeighted,
        mixed_cost_model(),
    )?;
    println!(
        "  legacy two-phase: {} measurements, {:.1} tester-seconds to the same verdict",
        step_one.tests_used() + step_two.tests_used(),
        step_one.tester_seconds() + step_two.tester_seconds(),
    );

    // -- 3. The service boundary: one serde round trip per decision.
    println!("\n== one SessionRequest/SessionReport service round ==");
    let mut request = SessionRequest::new(d1.observation());
    request.actions = compiled.latent_names().map(Action::probe).collect();
    let report = compiled.serve(&request)?;
    println!(
        "  {} bytes of request, {} bytes of report",
        serde_json::to_string(&request)?.len(),
        serde_json::to_string(&report)?.len(),
    );
    println!(
        "  top candidate {:?}, next action {:?}, stop {:?}",
        report.top_candidate,
        report.ranked.first().map(|r| &r.action),
        report.stop.unwrap_or(StopReason::Exhausted),
    );
    Ok(())
}
