//! `abbd-serve` — launch the diagnosis service.
//!
//! Compiles the model registry once at startup — the paper's voltage
//! regulator (fitted end-to-end from a synthesized failing population)
//! plus any `ModelBundle` JSON files passed on the CLI — then serves
//! diagnosis sessions over HTTP until interrupted.
//!
//! ```text
//! abbd-serve [--addr 127.0.0.1:7171] [--workers 4]
//!            [--session-ttl-secs 900] [--session-capacity 1024]
//!            [--queue-depth 256] [--idle-timeout-secs 60]
//!            [--max-requests-per-conn 100000]
//!            [--devices 24] [--seed 42] [--full-fit] [--no-regulator]
//!            [--refit-interval-secs N] [--refit-min-rows 32]
//!            [--model NAME=BUNDLE.json]...
//! ```
//!
//! `--devices`/`--seed` control the regulator fit (quick 8-iteration EM
//! by default; `--full-fit` uses the library's reference algorithm).
//! Each `--model` registers one additional bundle (see
//! `abbd_server::ModelBundle` for the format).

use abbd::core::conformance::self_references;
use abbd::core::{LearnAlgorithm, Observation};
use abbd::designs::regulator;
use abbd::server::{ModelBundle, ModelLifecycle, ModelRegistry, RefitPolicy, Server, ServerConfig};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

struct Args {
    config: ServerConfig,
    devices: usize,
    seed: u64,
    full_fit: bool,
    regulator: bool,
    refit_min_rows: Option<u64>,
    bundles: Vec<(String, String)>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        config: ServerConfig {
            addr: "127.0.0.1:7171".to_string(),
            ..ServerConfig::default()
        },
        devices: 24,
        seed: 42,
        full_fit: false,
        regulator: true,
        refit_min_rows: None,
        bundles: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--addr" => args.config.addr = value("--addr")?,
            "--workers" => {
                args.config.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--session-ttl-secs" => {
                let secs: u64 = value("--session-ttl-secs")?
                    .parse()
                    .map_err(|e| format!("--session-ttl-secs: {e}"))?;
                args.config.session_ttl = Duration::from_secs(secs);
            }
            "--session-capacity" => {
                args.config.session_capacity = value("--session-capacity")?
                    .parse()
                    .map_err(|e| format!("--session-capacity: {e}"))?;
            }
            "--queue-depth" => {
                args.config.queue_depth = value("--queue-depth")?
                    .parse()
                    .map_err(|e| format!("--queue-depth: {e}"))?;
            }
            "--idle-timeout-secs" => {
                let secs: u64 = value("--idle-timeout-secs")?
                    .parse()
                    .map_err(|e| format!("--idle-timeout-secs: {e}"))?;
                args.config.idle_timeout = Duration::from_secs(secs);
            }
            "--max-requests-per-conn" => {
                args.config.max_requests_per_conn = value("--max-requests-per-conn")?
                    .parse()
                    .map_err(|e| format!("--max-requests-per-conn: {e}"))?;
            }
            "--devices" => {
                args.devices = value("--devices")?
                    .parse()
                    .map_err(|e| format!("--devices: {e}"))?;
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--refit-interval-secs" => {
                let secs: u64 = value("--refit-interval-secs")?
                    .parse()
                    .map_err(|e| format!("--refit-interval-secs: {e}"))?;
                args.config.refit_interval = Some(Duration::from_secs(secs.max(1)));
            }
            "--refit-min-rows" => {
                args.refit_min_rows = Some(
                    value("--refit-min-rows")?
                        .parse()
                        .map_err(|e| format!("--refit-min-rows: {e}"))?,
                );
            }
            "--full-fit" => args.full_fit = true,
            "--no-regulator" => args.regulator = false,
            "--model" => {
                let spec = value("--model")?;
                let (name, path) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("--model expects NAME=PATH, got `{spec}`"))?;
                args.bundles.push((name.to_string(), path.to_string()));
            }
            "--help" | "-h" => {
                println!("{}", HELP);
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    if !args.regulator && args.bundles.is_empty() {
        return Err("nothing to serve: --no-regulator without any --model".to_string());
    }
    Ok(args)
}

const HELP: &str = "abbd-serve: the block-level Bayesian diagnosis service

  --addr ADDR              bind address (default 127.0.0.1:7171)
  --workers N              worker threads (default 4)
  --session-ttl-secs N     idle session lifetime (default 900)
  --session-capacity N     max live sessions (default 1024)
  --queue-depth N          requests queued for workers before 503 (default 256)
  --idle-timeout-secs N    idle connection deadline (default 60)
  --max-requests-per-conn N  requests before a keep-alive connection is
                           recycled (default 100000)
  --devices N              regulator fit population (default 24)
  --seed N                 regulator fit seed (default 42)
  --full-fit               reference learning instead of quick EM
  --no-regulator           skip the built-in regulator model
  --refit-interval-secs N  poll interval of the background refitter
                           (default: background refits disabled; the
                           refit endpoint still works on demand)
  --refit-min-rows N       aggregated traces required before a refit
                           attempt (default 32)
  --model NAME=PATH        register a ModelBundle JSON file (repeatable);
                           a bundle with a `partition` stanza serves as a
                           hierarchy: NAME plus NAME/{block} children";

fn build_registry(args: &Args) -> Result<ModelRegistry, String> {
    let mut registry = ModelRegistry::new();
    if args.regulator {
        let algorithm = if args.full_fit {
            regulator::default_algorithm()
        } else {
            LearnAlgorithm::Em(abbd::bbn::learn::EmConfig {
                max_iterations: 8,
                tolerance: 1e-4,
            })
        };
        eprintln!(
            "fitting regulator model ({} devices, seed {})...",
            args.devices, args.seed
        );
        let fitted = regulator::fit(args.devices, args.seed, algorithm)
            .map_err(|e| format!("regulator fit failed: {e}"))?;
        let compiled = Arc::clone(fitted.engine.compiled());
        // The five Table VI case studies become the refit conformance
        // corpus: a candidate must isolate whatever the startup fit
        // isolates on each of them before it may serve.
        let scenarios = regulator::cases::case_studies().into_iter().map(|case| {
            let mut observation = Observation::new();
            for &(name, state) in case.controls.iter().chain(case.observables.iter()) {
                observation.set(name, state);
            }
            (case.id.to_string(), observation)
        });
        let references = self_references(&compiled, scenarios)
            .map_err(|e| format!("regulator reference corpus failed: {e}"))?;
        let policy = RefitPolicy {
            min_rows: args
                .refit_min_rows
                .unwrap_or(RefitPolicy::default().min_rows),
            ..RefitPolicy::default()
        };
        let lifecycle = ModelLifecycle::new("regulator", compiled, references, policy).shared();
        registry = registry.insert_lifecycle("regulator", lifecycle);
    }
    for (name, path) in &args.bundles {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read bundle `{path}`: {e}"))?;
        let bundle =
            ModelBundle::from_json(&text).map_err(|e| format!("bundle `{path}`: {}", e.message))?;
        registry = registry
            .insert_bundle(name.clone(), &bundle)
            .map_err(|e| format!("bundle `{path}` does not compile: {}", e.message))?;
        eprintln!("registered model `{name}` from {path}");
    }
    Ok(registry)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("abbd-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    let registry = match build_registry(&args) {
        Ok(registry) => registry.freeze(),
        Err(e) => {
            eprintln!("abbd-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    let names: Vec<String> = registry.list().iter().map(|m| m.name.clone()).collect();
    let server = match Server::start(registry, args.config.clone()) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("abbd-serve: cannot bind {}: {e}", args.config.addr);
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "serving {} model(s) [{}] on http://{} with {} workers (ttl {:?}, {} session slots)",
        names.len(),
        names.join(", "),
        server.addr(),
        args.config.workers,
        args.config.session_ttl,
        args.config.session_capacity,
    );
    eprintln!("try: curl http://{}/healthz", server.addr());
    loop {
        std::thread::park();
    }
}
