//! `abbd-loadgen` — drive a running `abbd-serve` and measure throughput.
//!
//! Generates the d1 decision-round workload (the regulator case study's
//! control states, all posteriors + ranked actions per round) and
//! reports items/sec plus latency percentiles (p50/p95/p99):
//!
//! * `--mode session` (default): each connection opens one stored
//!   session and posts rounds to it — the store-amortised path;
//! * `--mode stateless`: each round goes to `/v1/models/{m}/serve`,
//!   paying the fresh-session setup every time;
//! * `--mode batch`: `--batch-size` evidence sets per
//!   `/v1/models/{m}/diagnose_batch` request (diagnosis only, fanned
//!   across the server's worker pool); the rate counts *items*;
//! * `--mode idle-soak`: open `--connections` keep-alive connections,
//!   hold them idle for `--soak-secs`, and poll `/v1/stats` — the
//!   readiness-driven server holds thousands of idle connections over a
//!   handful of workers, and this mode proves it against a live process.
//!
//! `--connections N` (default: one per client) spreads each client's
//! rounds round-robin across N/clients keep-alive connections, so the
//! open-connection count can dwarf the server's worker pool. `--binary`
//! switches bodies and replies to the compact binary codec, and
//! `--delta` (session mode) sends incremental rounds: the controls
//! travel once, every later round re-plans on the session's stored
//! evidence with an empty delta — the minimal wire cost per decision.
//!
//! `--scenario` swaps the fixed d1 body for a labelled fleet from the
//! scenario engine: every round carries a different device drawn from
//! the regulator's fault-mode library (controls, observables and failing
//! marks from the sampled ground truth), so the server sees the evidence
//! diversity of a real return floor instead of one memoised case.
//!
//! ```text
//! abbd-loadgen [--addr 127.0.0.1:7171] [--model regulator]
//!              [--mode session|stateless|batch|idle-soak] [--rounds 200]
//!              [--clients 1] [--connections N] [--batch-size 16]
//!              [--binary] [--delta] [--scenario] [--seed 2010]
//!              [--soak-secs 10]
//! ```

use abbd::core::{Observation, SessionRequest};
use abbd::designs::regulator::{self, cases::case_studies};
use abbd::scenarios::sample_model_population;
use abbd::server::{codec, Client, OpenSessionReply, StatsReport};
use std::process::ExitCode;
use std::time::{Duration, Instant};

#[derive(Clone)]
struct Args {
    addr: String,
    model: String,
    mode: String,
    rounds: usize,
    clients: usize,
    connections: usize,
    batch_size: usize,
    binary: bool,
    delta: bool,
    scenario: bool,
    seed: u64,
    soak_secs: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7171".to_string(),
        model: "regulator".to_string(),
        mode: "session".to_string(),
        rounds: 200,
        clients: 1,
        connections: 0, // resolved below: defaults to one per client
        batch_size: 16,
        binary: false,
        delta: false,
        scenario: false,
        seed: 2010,
        soak_secs: 10,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--model" => args.model = value("--model")?,
            "--mode" => args.mode = value("--mode")?,
            "--rounds" => {
                args.rounds = value("--rounds")?
                    .parse()
                    .map_err(|e| format!("--rounds: {e}"))?;
            }
            "--clients" => {
                args.clients = value("--clients")?
                    .parse()
                    .map_err(|e| format!("--clients: {e}"))?;
            }
            "--connections" => {
                args.connections = value("--connections")?
                    .parse()
                    .map_err(|e| format!("--connections: {e}"))?;
            }
            "--batch-size" => {
                args.batch_size = value("--batch-size")?
                    .parse()
                    .map_err(|e| format!("--batch-size: {e}"))?;
            }
            "--binary" => args.binary = true,
            "--delta" => args.delta = true,
            "--scenario" => args.scenario = true,
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--soak-secs" => {
                args.soak_secs = value("--soak-secs")?
                    .parse()
                    .map_err(|e| format!("--soak-secs: {e}"))?;
            }
            "--help" | "-h" => {
                println!(
                    "abbd-loadgen: throughput driver for abbd-serve\n\n  \
                     --addr ADDR      server address (default 127.0.0.1:7171)\n  \
                     --model NAME     registry model (default regulator)\n  \
                     --mode MODE      session | stateless | batch | idle-soak (default session)\n  \
                     --rounds N       rounds per client (default 200)\n  \
                     --clients N      concurrent client threads (default 1)\n  \
                     --connections N  keep-alive connections to spread over (default: clients;\n                   \
                     idle-soak default 1000)\n  \
                     --batch-size N   evidence sets per batch request (default 16)\n  \
                     --binary         compact binary bodies and replies\n  \
                     --delta          incremental session rounds (controls travel once)\n  \
                     --scenario       per-round bodies drawn from the scenario engine's\n                   \
                     labelled regulator fleet instead of the fixed d1 case\n  \
                     --seed N         scenario fleet seed (default 2010)\n  \
                     --soak-secs N    idle-soak hold time (default 10)"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    if !["session", "stateless", "batch", "idle-soak"].contains(&args.mode.as_str()) {
        return Err(format!(
            "--mode must be session|stateless|batch|idle-soak, got `{}`",
            args.mode
        ));
    }
    if args.delta && args.mode != "session" {
        return Err("--delta only makes sense with --mode session".to_string());
    }
    if args.delta && args.scenario {
        // Delta rounds post empty bodies after the first, so a per-round
        // fleet would silently degenerate to one device per connection.
        return Err("--scenario conflicts with --delta".to_string());
    }
    if args.batch_size == 0 {
        // `rounds.div_ceil(batch_size)` would divide by zero below.
        return Err("--batch-size must be at least 1".to_string());
    }
    if args.connections == 0 {
        args.connections = if args.mode == "idle-soak" {
            1000
        } else {
            args.clients
        };
    }
    args.connections = args.connections.max(args.clients);
    Ok(args)
}

/// The d1 control states — the workload every mode posts by default.
fn d1_controls() -> Observation {
    let case = &case_studies()[0];
    let mut observation = Observation::new();
    for (name, state) in case.controls {
        observation.set(name, state);
    }
    observation
}

/// The per-round request bodies: the fixed d1 controls, or (with
/// `--scenario`) one observation per device of a labelled fleet sampled
/// from the regulator's fault-mode library under the d1 stimulus.
fn workload(args: &Args) -> Result<Vec<Observation>, String> {
    if !args.scenario {
        return Ok(vec![d1_controls()]);
    }
    let rig = regulator::rig();
    let model = abbd::core::ModelBuilder::new(rig.model)
        .with_expert(rig.expert)
        .build_expert_only()
        .map_err(|e| format!("regulator model: {e}"))?;
    let library = regulator::faults::fault_library();
    let controls: Vec<(String, usize)> = case_studies()[0]
        .controls
        .iter()
        .map(|&(name, state)| (name.to_string(), state))
        .collect();
    let fleet = args.rounds.max(args.batch_size).max(1);
    let scenarios = sample_model_population(&model, &library, &controls, fleet, args.seed)
        .map_err(|e| format!("scenario fleet: {e}"))?;
    Ok(scenarios
        .iter()
        .map(|s| s.observation(model.circuit_model()))
        .collect())
}

fn check(status: u16, body: &str, what: &str) -> Result<(), String> {
    if status == 200 || status == 201 {
        Ok(())
    } else {
        Err(format!("{what} answered {status}: {body}"))
    }
}

/// Posts one request in the negotiated format, timing it. Returns
/// whether the server completed it: a `503` (queue or store
/// backpressure) is *not* fatal and records no latency sample — the
/// caller counts it, and a fully rejected run still ends in a report
/// (with its explicit "no samples" line) instead of aborting.
fn timed_post(
    client: &mut Client,
    path: &str,
    json: &str,
    frame: &[u8],
    binary: bool,
    what: &str,
    latencies: &mut Vec<Duration>,
) -> Result<bool, String> {
    let start = Instant::now();
    let (status, text) = if binary {
        let (status, bytes) = client.post_binary(path, frame).map_err(|e| e.to_string())?;
        (status, String::from_utf8_lossy(&bytes).into_owned())
    } else {
        client.post(path, json).map_err(|e| e.to_string())?
    };
    if status == 503 {
        return Ok(false);
    }
    check(status, &text, what)?;
    latencies.push(start.elapsed());
    Ok(true)
}

/// One client's tally: (items completed, requests 503-rejected,
/// per-request latencies).
type ClientTally = (usize, usize, Vec<Duration>);

/// Runs one client's share over its slice of keep-alive connections.
fn run_client(args: &Args, conns_here: usize) -> Result<ClientTally, String> {
    let mut clients = Vec::with_capacity(conns_here);
    for _ in 0..conns_here {
        clients.push(Client::connect(&args.addr).map_err(|e| format!("connect: {e}"))?);
    }
    let bodies = workload(args)?;
    let rounds_of: Vec<SessionRequest> = bodies
        .iter()
        .map(|obs| SessionRequest::new(obs.clone()))
        .collect();
    let jsons: Vec<String> = rounds_of
        .iter()
        .map(|r| serde_json::to_string(r).map_err(|e| e.to_string()))
        .collect::<Result<_, _>>()?;
    let frames: Vec<Vec<u8>> = rounds_of.iter().map(codec::to_frame).collect();
    let mut latencies = Vec::with_capacity(args.rounds);
    let mut completed = 0usize;
    let mut rejected = 0usize;
    match args.mode.as_str() {
        "stateless" => {
            let path = format!("/v1/models/{}/serve", args.model);
            for i in 0..args.rounds {
                let client = &mut clients[i % conns_here];
                if timed_post(
                    client,
                    &path,
                    &jsons[i % jsons.len()],
                    &frames[i % frames.len()],
                    args.binary,
                    "serve",
                    &mut latencies,
                )? {
                    completed += 1;
                } else {
                    rejected += 1;
                }
            }
            Ok((completed, rejected, latencies))
        }
        "session" => {
            // One stored session per connection (one device per wire).
            let mut paths = Vec::with_capacity(conns_here);
            let mut ids = Vec::with_capacity(conns_here);
            for client in &mut clients {
                let (status, body) = client
                    .post(&format!("/v1/models/{}/sessions", args.model), "{}")
                    .map_err(|e| e.to_string())?;
                check(status, &body, "open")?;
                let open: OpenSessionReply =
                    serde_json::from_str(&body).map_err(|e| format!("open reply: {e}"))?;
                paths.push(format!("/v1/sessions/{}/round", open.session_id));
                ids.push(open.session_id);
            }
            // Delta rounds: the controls travel once per session, then
            // every timed round is an empty incremental re-plan.
            let delta = SessionRequest::new(Observation::new()).into_delta();
            let delta_json = serde_json::to_string(&delta).map_err(|e| e.to_string())?;
            let delta_frame = codec::to_frame(&delta);
            if args.delta {
                for (client, path) in clients.iter_mut().zip(&paths) {
                    let mut warmup = Vec::new();
                    // A rejected warm-up is fine: the controls just
                    // travel with a later round instead.
                    let _ = timed_post(
                        client,
                        path,
                        &jsons[0],
                        &frames[0],
                        args.binary,
                        "round",
                        &mut warmup,
                    )?;
                }
            }
            for i in 0..args.rounds {
                let slot = i % conns_here;
                let (round_json, round_frame) = if args.delta {
                    (&delta_json, &delta_frame)
                } else {
                    (&jsons[i % jsons.len()], &frames[i % frames.len()])
                };
                if timed_post(
                    &mut clients[slot],
                    &paths[slot],
                    round_json,
                    round_frame,
                    args.binary,
                    "round",
                    &mut latencies,
                )? {
                    completed += 1;
                } else {
                    rejected += 1;
                }
            }
            for (client, id) in clients.iter_mut().zip(&ids) {
                let _ = client.delete(&format!("/v1/sessions/{id}"));
            }
            Ok((completed, rejected, latencies))
        }
        _ => {
            let observations: Vec<Observation> = (0..args.batch_size)
                .map(|j| bodies[j % bodies.len()].clone())
                .collect();
            let body = serde_json::to_string(&abbd::server::BatchRequest {
                observations: observations.clone(),
                deduction: None,
            })
            .map_err(|e| e.to_string())?;
            // Binary batch: one header frame, then one frame per row,
            // each streamed straight into the shared body buffer.
            let mut frame = Vec::new();
            codec::frame_into(&BatchHeader, &mut frame);
            for obs in &observations {
                codec::frame_into(obs, &mut frame);
            }
            let path = format!("/v1/models/{}/diagnose_batch", args.model);
            let requests = args.rounds.div_ceil(args.batch_size).max(1);
            for i in 0..requests {
                let client = &mut clients[i % conns_here];
                if timed_post(
                    client,
                    &path,
                    &body,
                    &frame,
                    args.binary,
                    "diagnose_batch",
                    &mut latencies,
                )? {
                    completed += args.batch_size;
                } else {
                    rejected += 1;
                }
            }
            Ok((completed, rejected, latencies))
        }
    }
}

/// The header frame of a binary batch request (`{"deduction": null}`).
struct BatchHeader;

impl serde::Serialize for BatchHeader {
    fn to_value(&self) -> serde::Value {
        serde::Value::Obj(vec![("deduction".to_string(), serde::Value::Null)])
    }
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn stats(addr: &str) -> Result<StatsReport, String> {
    let mut client = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let (status, body) = client.get("/v1/stats").map_err(|e| e.to_string())?;
    check(status, &body, "stats")?;
    serde_json::from_str(&body).map_err(|e| format!("stats reply: {e}"))
}

/// Holds `--connections` keep-alive connections idle for `--soak-secs`,
/// polling the server's own connection gauges, then proves the
/// connections still serve.
fn idle_soak(args: &Args) -> Result<(), String> {
    let mut herd = Vec::with_capacity(args.connections);
    let start = Instant::now();
    for i in 0..args.connections {
        match Client::connect(&args.addr) {
            Ok(client) => herd.push(client),
            Err(e) => return Err(format!("connect #{i}: {e}")),
        }
    }
    println!(
        "opened {} keep-alive connections in {:.2}s",
        herd.len(),
        start.elapsed().as_secs_f64()
    );
    let mut peak_open = 0u64;
    for second in 0..args.soak_secs.max(1) {
        std::thread::sleep(Duration::from_secs(1));
        let report = stats(&args.addr)?;
        peak_open = peak_open.max(report.connections_open);
        println!(
            "t+{}s: open={} idle={} active={} queue_depth={} idle_timeouts={}",
            second + 1,
            report.connections_open,
            report.connections_idle,
            report.connections_active,
            report.queue_depth,
            report.idle_timeouts,
        );
    }
    // Every surviving connection still serves (spot-check a spread).
    let step = (herd.len() / 16).max(1);
    let mut checked = 0usize;
    for client in herd.iter_mut().step_by(step) {
        let (status, _) = client
            .get("/healthz")
            .map_err(|e| format!("soak check: {e}"))?;
        check(status, "", "healthz")?;
        checked += 1;
    }
    println!(
        "idle-soak: {} connections held {}s (server peak open {}), {} spot-checked live",
        herd.len(),
        args.soak_secs,
        peak_open,
        checked
    );
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("abbd-loadgen: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.mode == "idle-soak" {
        return match idle_soak(&args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("abbd-loadgen: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let start = Instant::now();
    let results: Vec<Result<ClientTally, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.clients)
            .map(|i| {
                let args = args.clone();
                // Split the connection budget across clients, first
                // clients taking the remainder.
                let base = args.connections / args.clients;
                let extra = usize::from(i < args.connections % args.clients);
                scope.spawn(move || run_client(&args, (base + extra).max(1)))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect()
    });
    let elapsed = start.elapsed();
    let mut total = 0usize;
    let mut rejected = 0usize;
    let mut latencies: Vec<Duration> = Vec::new();
    for result in results {
        match result {
            Ok((items, rej, lats)) => {
                total += items;
                rejected += rej;
                latencies.extend(lats);
            }
            Err(e) => {
                eprintln!("abbd-loadgen: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    latencies.sort_unstable();
    let secs = elapsed.as_secs_f64();
    let format_tag = if args.binary { "binary" } else { "json" };
    let delta_tag = if args.delta {
        "+delta"
    } else if args.scenario {
        "+scenario"
    } else {
        ""
    };
    println!(
        "{} mode ({format_tag}{delta_tag}): {} items in {:.2}s across {} client(s) / {} connection(s) = {:.0} items/sec",
        args.mode, total, secs, args.clients, args.connections,
        total as f64 / secs,
    );
    if rejected > 0 {
        println!("backpressure: {rejected} request(s) answered 503 and not retried");
    }
    if latencies.is_empty() {
        // E.g. every round 503-rejected, or --rounds 0: percentiles of
        // nothing are meaningless, say so instead of printing zeros.
        println!("latency: no samples (no request completed)");
    } else {
        println!(
            "latency: p50 {:.3} ms, p95 {:.3} ms, p99 {:.3} ms over {} requests",
            percentile(&latencies, 50.0).as_secs_f64() * 1e3,
            percentile(&latencies, 95.0).as_secs_f64() * 1e3,
            percentile(&latencies, 99.0).as_secs_f64() * 1e3,
            latencies.len(),
        );
    }
    // The server's own view of the run: uptime, error/compile counters,
    // and per-model rounds plus the fleet-learning loop's progress.
    match stats(&args.addr) {
        Ok(report) => print_server_stats(&report),
        Err(e) => eprintln!("abbd-loadgen: server stats unavailable: {e}"),
    }
    ExitCode::SUCCESS
}

/// Prints the end-of-run server-side counters (`GET /v1/stats`).
fn print_server_stats(report: &StatsReport) {
    println!(
        "server: uptime {}s, {} requests ({} errors), rounds {} stored / {} stateless, \
         {} batch items, worker_compiles {}",
        report.uptime_secs,
        report.requests,
        report.errors,
        report.rounds,
        report.stateless_rounds,
        report.batch_items,
        report.worker_compiles,
    );
    println!(
        "fleet: {} traces aggregated, {} refits run ({} rejected)",
        report.traces_aggregated, report.refits_run, report.refits_rejected,
    );
    for model in &report.models {
        let version = model
            .active_version
            .map_or_else(|| "hierarchy".to_string(), |v| format!("v{v} active"));
        println!(
            "model {}: {} ({} rounds, {} traces aggregated, {} refits run, {} rejected)",
            model.name,
            version,
            model.rounds,
            model.traces_aggregated,
            model.refits_run,
            model.refits_rejected,
        );
    }
}
