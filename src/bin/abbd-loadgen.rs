//! `abbd-loadgen` — drive a running `abbd-serve` and measure throughput.
//!
//! Generates the d1 decision-round workload (the regulator case study's
//! control states, all posteriors + ranked actions per round) in three
//! shapes and reports rounds/sec and mean latency:
//!
//! * `--mode session` (default): each client opens one stored session
//!   and posts rounds to it — the store-amortised path;
//! * `--mode stateless`: each round goes to `/v1/models/{m}/serve`,
//!   paying the fresh-session setup every time;
//! * `--mode batch`: `--batch-size` evidence sets per
//!   `/v1/models/{m}/diagnose_batch` request (diagnosis only, fanned
//!   across the server's worker pool); the rate counts *items*.
//!
//! ```text
//! abbd-loadgen [--addr 127.0.0.1:7171] [--model regulator]
//!              [--mode session|stateless|batch] [--rounds 200]
//!              [--clients 1] [--batch-size 16]
//! ```

use abbd::core::{Observation, SessionRequest};
use abbd::designs::regulator::cases::case_studies;
use abbd::server::{Client, OpenSessionReply};
use std::process::ExitCode;
use std::time::Instant;

#[derive(Clone)]
struct Args {
    addr: String,
    model: String,
    mode: String,
    rounds: usize,
    clients: usize,
    batch_size: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7171".to_string(),
        model: "regulator".to_string(),
        mode: "session".to_string(),
        rounds: 200,
        clients: 1,
        batch_size: 16,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--model" => args.model = value("--model")?,
            "--mode" => args.mode = value("--mode")?,
            "--rounds" => {
                args.rounds = value("--rounds")?
                    .parse()
                    .map_err(|e| format!("--rounds: {e}"))?;
            }
            "--clients" => {
                args.clients = value("--clients")?
                    .parse()
                    .map_err(|e| format!("--clients: {e}"))?;
            }
            "--batch-size" => {
                args.batch_size = value("--batch-size")?
                    .parse()
                    .map_err(|e| format!("--batch-size: {e}"))?;
            }
            "--help" | "-h" => {
                println!(
                    "abbd-loadgen: throughput driver for abbd-serve\n\n  \
                     --addr ADDR      server address (default 127.0.0.1:7171)\n  \
                     --model NAME     registry model (default regulator)\n  \
                     --mode MODE      session | stateless | batch (default session)\n  \
                     --rounds N       rounds per client (default 200)\n  \
                     --clients N      concurrent clients (default 1)\n  \
                     --batch-size N   evidence sets per batch request (default 16)"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    if !["session", "stateless", "batch"].contains(&args.mode.as_str()) {
        return Err(format!(
            "--mode must be session|stateless|batch, got `{}`",
            args.mode
        ));
    }
    Ok(args)
}

/// The d1 control states — the workload every mode posts.
fn d1_controls() -> Observation {
    let case = &case_studies()[0];
    let mut observation = Observation::new();
    for (name, state) in case.controls {
        observation.set(name, state);
    }
    observation
}

fn check(status: u16, body: &str, what: &str) -> Result<(), String> {
    if status == 200 || status == 201 {
        Ok(())
    } else {
        Err(format!("{what} answered {status}: {body}"))
    }
}

/// Runs one client's share; returns items completed.
fn run_client(args: &Args) -> Result<usize, String> {
    let mut client = Client::connect(&args.addr).map_err(|e| format!("connect: {e}"))?;
    let request = SessionRequest::new(d1_controls());
    let round_json = serde_json::to_string(&request).map_err(|e| e.to_string())?;
    match args.mode.as_str() {
        "stateless" => {
            let path = format!("/v1/models/{}/serve", args.model);
            for _ in 0..args.rounds {
                let (status, body) = client.post(&path, &round_json).map_err(|e| e.to_string())?;
                check(status, &body, "serve")?;
            }
            Ok(args.rounds)
        }
        "session" => {
            let (status, body) = client
                .post(&format!("/v1/models/{}/sessions", args.model), "{}")
                .map_err(|e| e.to_string())?;
            check(status, &body, "open")?;
            let open: OpenSessionReply =
                serde_json::from_str(&body).map_err(|e| format!("open reply: {e}"))?;
            let path = format!("/v1/sessions/{}/round", open.session_id);
            for _ in 0..args.rounds {
                let (status, body) = client.post(&path, &round_json).map_err(|e| e.to_string())?;
                check(status, &body, "round")?;
            }
            let _ = client.delete(&format!("/v1/sessions/{}", open.session_id));
            Ok(args.rounds)
        }
        _ => {
            let observations: Vec<Observation> =
                (0..args.batch_size).map(|_| d1_controls()).collect();
            let body = serde_json::to_string(&abbd::server::BatchRequest {
                observations,
                deduction: None,
            })
            .map_err(|e| e.to_string())?;
            let path = format!("/v1/models/{}/diagnose_batch", args.model);
            let requests = args.rounds.div_ceil(args.batch_size).max(1);
            for _ in 0..requests {
                let (status, reply) = client.post(&path, &body).map_err(|e| e.to_string())?;
                check(status, &reply, "diagnose_batch")?;
            }
            Ok(requests * args.batch_size)
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("abbd-loadgen: {e}");
            return ExitCode::FAILURE;
        }
    };
    let start = Instant::now();
    let results: Vec<Result<usize, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.clients)
            .map(|_| {
                let args = args.clone();
                scope.spawn(move || run_client(&args))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect()
    });
    let elapsed = start.elapsed();
    let mut total = 0usize;
    for result in results {
        match result {
            Ok(items) => total += items,
            Err(e) => {
                eprintln!("abbd-loadgen: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let secs = elapsed.as_secs_f64();
    println!(
        "{} mode: {} items in {:.2}s across {} client(s) = {:.0} items/sec ({:.3} ms mean)",
        args.mode,
        total,
        secs,
        args.clients,
        total as f64 / secs,
        1e3 * secs * args.clients as f64 / total as f64,
    );
    ExitCode::SUCCESS
}
