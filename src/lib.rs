//! # abbd — Analogue Block-level Bayesian Diagnosis
//!
//! A production-quality Rust reproduction of *Block-Level Bayesian
//! Diagnosis of Analogue Electronic Circuits* (Krishnan, Doornbos, Brand,
//! Kerkhoff — DATE 2010): given the no-stop-on-fail specification test
//! results of a failing analogue device, infer which functional block is
//! the most likely culprit.
//!
//! This facade crate re-exports the whole stack:
//!
//! | module | crate | role |
//! |--------|-------|------|
//! | [`bbn`] | `abbd-bbn` | Bayesian-network engine (inference + learning) |
//! | [`blocks`] | `abbd-blocks` | behavioural circuit simulator with fault injection |
//! | [`ate`] | `abbd-ate` | specification test programs and datalogs |
//! | [`dlog2bbn`] | `abbd-dlog2bbn` | the paper's case-generator tool |
//! | [`core`] | `abbd-core` | model builder, diagnostic engine, candidate deduction |
//! | [`scenarios`] | `abbd-scenarios` | fault-mode library, stimulus families, noise-calibrated fits |
//! | [`designs`] | `abbd-designs` | the paper's two reference circuits, end to end |
//! | [`baselines`] | `abbd-baselines` | fault dictionary, naive Bayes, random floor |
//! | [`server`] | `abbd-server` | multi-threaded HTTP diagnosis service (registry + session store + batch fan-out) |
//!
//! ## The five-minute tour
//!
//! ```no_run
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use abbd::designs::regulator;
//!
//! // 1. Fabricate 70 failing voltage regulators, test them on the virtual
//! //    ATE, convert the datalogs to cases, and fine-tune the product
//! //    expert's Bayesian model (the paper's full §IV flow).
//! let fitted = regulator::fit(70, 2010, regulator::default_algorithm())?;
//!
//! // 2. Diagnose the paper's case study d2: regulators 1 and 3 dead,
//! //    everything else fine.
//! let d2 = &regulator::cases::case_studies()[1];
//! let diagnosis = fitted.engine.diagnose(&d2.observation())?;
//!
//! // 3. The failing block candidate matches the paper's verdict.
//! assert_eq!(diagnosis.top_candidate(), Some("enb13"));
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for runnable walkthroughs and `crates/bench/src/bin/`
//! for the binaries regenerating every table and figure of the paper.

#![forbid(unsafe_code)]

pub use abbd_ate as ate;
pub use abbd_baselines as baselines;
pub use abbd_bbn as bbn;
pub use abbd_blocks as blocks;
pub use abbd_core as core;
pub use abbd_designs as designs;
pub use abbd_dlog2bbn as dlog2bbn;
pub use abbd_scenarios as scenarios;
pub use abbd_server as server;
