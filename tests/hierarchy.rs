//! Hierarchy acceptance pins (PR 7): the compiled abstraction hierarchy
//! must be *exact* — block sub-model posteriors given full boundary
//! evidence match the flat model to within 1e-9 — and *lazy-once* —
//! every block sub-model compiles at most one junction tree no matter
//! how many sessions (or threads) descend into it. The end-to-end check
//! runs the two-phase loop on the 100-variable default board.

use abbd::core::{DiagnosisSession, HierarchicalSession, StoppingPolicy};
use abbd::designs::board::{self, BoardConfig};
use std::sync::Arc;

const SMALL: BoardConfig = BoardConfig {
    blocks: 4,
    seed: 2010,
};

/// Exactness property of the extraction: for every block, every joint
/// configuration of the boundary rails (the *full* interface evidence
/// that d-separates the block from the rest of the board) and every
/// configuration of the block's own observables, the lazily compiled
/// sub-model's latent posteriors equal the flat 30-variable model's to
/// within 1e-9. A deterministic exhaustive sweep: 4 blocks × 4 rail
/// configs × 8 observable configs = 128 paired inferences.
#[test]
fn extracted_block_posteriors_match_flat_within_1e9() {
    let hierarchy = board::hierarchy(&SMALL).expect("hierarchy builds").shared();
    let flat = abbd::core::CompiledModel::compile(board::flat_model(&SMALL).expect("flat builds"))
        .expect("flat compiles")
        .shared();

    for k in 0..SMALL.blocks {
        let child = hierarchy.child(k).expect("child compiles");
        let latents = [
            format!("bias{k:02}"),
            format!("bg{k:02}"),
            format!("reg_s{k:02}"),
            format!("drv{k:02}"),
        ];
        let observables = [
            format!("out{k:02}"),
            format!("aux{k:02}"),
            format!("ilim{k:02}"),
        ];
        for rails in 0..4usize {
            let (vin, vload) = (rails & 1, rails >> 1);
            for obs_bits in 0..(1usize << observables.len()) {
                let mut on_flat =
                    DiagnosisSession::new(Arc::clone(&flat), StoppingPolicy::exhaustive())
                        .expect("flat session");
                let mut on_child =
                    DiagnosisSession::new(Arc::clone(&child), StoppingPolicy::exhaustive())
                        .expect("child session");
                for s in [&mut on_flat, &mut on_child] {
                    s.observe("vin", vin).expect("vin observed");
                    s.observe("vload", vload).expect("vload observed");
                }
                for (i, obs) in observables.iter().enumerate() {
                    let state = (obs_bits >> i) & 1;
                    on_flat.observe(obs, state).expect("flat observable");
                    on_child.observe(obs, state).expect("child observable");
                }
                let flat_diag = on_flat.diagnose().expect("flat diagnosis").clone();
                let child_diag = on_child.diagnose().expect("child diagnosis").clone();
                for latent in &latents {
                    let a = flat_diag.posterior_of(latent).expect("flat posterior");
                    let b = child_diag.posterior_of(latent).expect("child posterior");
                    assert_eq!(a.len(), b.len());
                    for (state, (&pa, &pb)) in a.iter().zip(b).enumerate() {
                        assert!(
                            (pa - pb).abs() <= 1e-9,
                            "block {k} {latent}[{state}] diverges under rails \
                             ({vin},{vload}) obs {obs_bits:03b}: flat {pa} vs child {pb}"
                        );
                    }
                }
            }
        }
    }
}

/// The lazy compile is idempotent under contention: eight threads racing
/// to descend into every block still compile each sub-model exactly
/// once, and repeated access afterwards never recompiles.
#[test]
fn child_submodels_compile_at_most_once_under_contention() {
    let hierarchy = board::hierarchy(&SMALL).expect("hierarchy builds").shared();
    assert_eq!(hierarchy.submodel_compiles(), 0, "construction is lazy");

    std::thread::scope(|scope| {
        for _ in 0..8 {
            let hierarchy = Arc::clone(&hierarchy);
            scope.spawn(move || {
                for k in 0..SMALL.blocks {
                    let child = hierarchy.child(k).expect("child compiles");
                    assert!(child.model().circuit_model().latents().len() >= 4);
                }
            });
        }
    });
    assert_eq!(
        hierarchy.submodel_compiles(),
        SMALL.blocks as u64,
        "each block compiles exactly once across 8 racing threads"
    );

    // Steady state: further access is pure cache.
    for k in 0..SMALL.blocks {
        let _ = hierarchy.child(k).expect("cached child");
        assert!(hierarchy.child_compiled(k));
    }
    assert_eq!(hierarchy.submodel_compiles(), SMALL.blocks as u64);
}

/// The two-phase loop at the acceptance scale: on the 100-variable
/// default board the session isolates a dead driver by descending into
/// exactly one of the 14 blocks — one lazy compile, every measurement
/// before descent confined to the abstract root.
#[test]
fn default_board_two_phase_loop_isolates_on_100_variables() {
    let config = BoardConfig::default();
    assert_eq!(config.variable_count(), 100);
    let hierarchy = board::hierarchy(&config)
        .expect("hierarchy builds")
        .shared();
    let scenario = board::d1_scenario(&config, 9);

    let mut session = HierarchicalSession::new(Arc::clone(&hierarchy), StoppingPolicy::default())
        .expect("session opens");
    session.observe("vin", 1).expect("vin");
    session.observe("vload", 0).expect("vload");
    let outcome = session
        .run(board::scenario_executor(&scenario))
        .expect("two-phase loop runs");

    assert_eq!(session.descended_block(), Some("reg09"));
    assert_eq!(outcome.diagnosis.top_candidate(), Some("drv09"));
    assert_eq!(
        hierarchy.submodel_compiles(),
        1,
        "one descent, one sub-model compile on the 100-variable board"
    );
}
