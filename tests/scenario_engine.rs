//! PR 10 acceptance harness for the scenario engine: one fault-mode
//! library API produces labelled populations for *both* reference
//! designs, every sampler is byte-reproducible from its explicit seed,
//! noise calibration measurably moves observable CPTs while its report
//! bounds the modelled-vs-empirical misclassification gap, and the
//! closed loop isolates a seeded fault from the 60-candidate stimulus
//! grid.

use abbd::ate::NoiseModel;
use abbd::core::{DiagnosisSession, DiagnosticModel, StoppingPolicy};
use abbd::designs::board::{self, BoardConfig};
use abbd::designs::regulator::{self, grid};
use abbd::scenarios::{
    calibrate_observables, sample_model_population, scenario_executor, FaultKind, FaultLibrary,
    ModelScenario, NoiseCalibration,
};
use std::sync::Arc;

/// The regulator's expert-only diagnostic model (no population fit — the
/// scenario API is model-agnostic, so the cheap build is enough here).
fn regulator_model() -> DiagnosticModel {
    let rig = regulator::rig();
    abbd::core::ModelBuilder::new(rig.model)
        .with_expert(rig.expert)
        .build_expert_only()
        .expect("expert-only regulator model builds")
}

/// Nominal-on control states (paper Table VI, cases d1/d2).
fn nominal_controls() -> Vec<(String, usize)> {
    [
        ("vp1", 2),
        ("vp1x", 4),
        ("vp2", 2),
        ("enb13_pin", 1),
        ("enb4_pin", 1),
        ("enbsw_pin", 1),
    ]
    .into_iter()
    .map(|(n, s)| (n.to_string(), s))
    .collect()
}

/// A small board fault library: dead drivers and bandgaps across three
/// blocks, weighted.
fn board_library() -> FaultLibrary {
    [
        ("drv00", FaultKind::Dead, 2.0),
        ("bg01", FaultKind::Dead, 1.0),
        ("drv02", FaultKind::Dead, 1.5),
        ("bias01", FaultKind::Dead, 0.5),
    ]
    .into_iter()
    .collect()
}

/// One library, two designs: the same `sample_model_population` call
/// labels fleets over the regulator's 19-variable model and the board's
/// 100-variable model, and every scenario's truth covers every variable
/// with the seeded fault pinned to its fault state.
#[test]
fn one_api_labels_populations_for_both_designs() {
    // Regulator: the full device-fault catalogue at the model level.
    let reg_model = regulator_model();
    let reg_lib = regulator::faults::fault_library();
    let reg = sample_model_population(&reg_model, &reg_lib, &nominal_controls(), 20, 7)
        .expect("regulator population samples");
    assert_eq!(reg.len(), 20);
    for s in &reg {
        assert_eq!(s.truth.len(), 19, "truth covers every model variable");
        let fault = s.fault.as_ref().expect("every draw is labelled");
        assert_eq!(s.truth[&fault.block], fault.state, "label matches truth");
        assert!(s.name.contains(&fault.block));
        // The derived observation pins all controls and observables.
        let obs = s.observation(reg_model.circuit_model());
        assert!(obs.len() >= 6);
    }
    // More than one distinct fault target across the fleet.
    let distinct: std::collections::BTreeSet<&str> = reg
        .iter()
        .filter_map(|s| s.fault.as_ref().map(|f| f.block.as_str()))
        .collect();
    assert!(distinct.len() > 3, "weighted sampling spreads targets");

    // Board: same call, 100-variable model, different library.
    let config = BoardConfig::default();
    assert_eq!(config.variable_count(), 100);
    let board_model = board::flat_model(&config).expect("board model builds");
    let controls = vec![("vin".to_string(), 1), ("vload".to_string(), 0)];
    let pop = sample_model_population(&board_model, &board_library(), &controls, 12, 99)
        .expect("board population samples");
    assert_eq!(pop.len(), 12);
    for s in &pop {
        assert_eq!(s.truth.len(), 100);
        let fault = s.fault.as_ref().unwrap();
        assert_eq!(s.truth[&fault.block], 0, "dead latents manifest as state 0");
        assert_eq!(s.truth["vin"], 1, "forced controls survive propagation");
    }

    // ... and the generic oracle closes the loop on a board scenario:
    // diagnosing against its own ground truth ranks the seeded block top.
    let seeded = pop
        .iter()
        .find(|s| s.fault.as_ref().is_some_and(|f| f.block == "drv02"))
        .or(pop.first())
        .expect("population is non-empty");
    let compiled = abbd::core::CompiledModel::compile(board_model.clone())
        .expect("board compiles")
        .shared();
    let mut session = DiagnosisSession::new(Arc::clone(&compiled), StoppingPolicy::default())
        .expect("session opens");
    for (name, state) in &controls {
        session.observe(name, *state).expect("controls observe");
    }
    let outcome = session
        .run(scenario_executor(board_model.circuit_model(), seeded))
        .expect("closed loop runs");
    let block = &seeded.fault.as_ref().unwrap().block;
    let posterior = outcome
        .diagnosis
        .posterior_of(block)
        .expect("seeded latent has a posterior");
    assert!(
        posterior[0] > 0.5,
        "seeded block `{block}` should be believed dead (p={:.3})",
        posterior[0]
    );
}

/// Explicit seeds are the whole identity of a sampled population: same
/// seed → byte-identical JSON, different seed → a different fleet.
#[test]
fn sampling_is_byte_reproducible_from_the_seed() {
    let model = regulator_model();
    let lib = regulator::faults::fault_library();
    let controls = nominal_controls();
    let a = sample_model_population(&model, &lib, &controls, 16, 2010).unwrap();
    let b = sample_model_population(&model, &lib, &controls, 16, 2010).unwrap();
    let bytes_a = serde_json::to_string(&a).unwrap();
    let bytes_b = serde_json::to_string(&b).unwrap();
    assert_eq!(bytes_a, bytes_b, "same seed must be byte-identical");

    let c = sample_model_population(&model, &lib, &controls, 16, 2011).unwrap();
    assert_ne!(
        bytes_a,
        serde_json::to_string(&c).unwrap(),
        "a different seed must draw a different fleet"
    );

    // Prefix stability: scenario i depends only on (seed, i), so growing
    // the fleet never rewrites the scenarios already drawn.
    let longer = sample_model_population(&model, &lib, &controls, 24, 2010).unwrap();
    assert_eq!(&longer[..16], &a[..]);

    // Round-trip through serde: populations are archivable artefacts.
    let parsed: Vec<ModelScenario> = serde_json::from_str(&bytes_a).unwrap();
    assert_eq!(parsed, a);
}

/// Noise calibration is not a no-op: folding the production rack's
/// confusion into the board expert changes at least one observable CPT
/// in the fitted network, and the report's modelled-vs-empirical gap is
/// bounded.
#[test]
fn noise_calibration_moves_observable_cpts_and_reports_the_gap() {
    let config = BoardConfig {
        blocks: 3,
        seed: 2010,
    };
    let model = board::circuit_model(&config).expect("board model builds");
    let baseline = board::expert(&config);
    let mut calibrated = board::expert(&config);
    // The board's bands are unit-wide; a 0.15-sigma instrument leaks a
    // few percent of each state's mass across the boundary.
    let noise = NoiseModel::uniform(0.15);
    let report = calibrate_observables(
        &model,
        &mut calibrated,
        &noise,
        &NoiseCalibration::default(),
    )
    .expect("calibration runs");
    assert_eq!(
        report.entries.len(),
        3 * 3,
        "every observable with an expert table is calibrated"
    );
    for entry in &report.entries {
        assert!(
            entry.modelled > 0.0,
            "{}: noise must leak mass",
            entry.variable
        );
        assert!(
            entry.gap() <= 0.05,
            "{}: modelled {:.4} vs empirical {:.4} drifted apart",
            entry.variable,
            entry.modelled,
            entry.empirical
        );
    }
    assert!(report.max_gap() <= 0.05);
    assert!(report.render().contains("out00"));

    // The fitted networks must actually differ on ≥1 observable CPT.
    let fit = |expert: abbd::core::ExpertKnowledge| {
        abbd::core::ModelBuilder::new(board::circuit_model(&config).unwrap())
            .with_expert(expert)
            .build_expert_only()
            .expect("expert-only board fit")
    };
    let plain = fit(baseline);
    let noisy = fit(calibrated);
    let moved = (0..config.blocks).any(|k| {
        ["out", "aux", "ilim"].iter().any(|stem| {
            let name = format!("{stem}{k:02}");
            let a = plain.network().require_var(&name).unwrap();
            let b = noisy.network().require_var(&name).unwrap();
            plain.network().cpt_row(a, &[0]).unwrap() != noisy.network().cpt_row(b, &[0]).unwrap()
        })
    });
    assert!(moved, "calibration must change at least one observable CPT");
}

/// The stimulus-grid loop end to end: a fault seeded from the library is
/// isolated by cost-weighted candidate selection over the 60-candidate
/// menu, paying for suite switches, with the decision trace to show it.
#[test]
fn grid_closed_loop_isolates_a_seeded_fault() {
    let rig = grid::grid_rig().expect("grid rig builds");
    assert_eq!(rig.program.actions().len(), 60);
    assert!(
        rig.fit.report.max_gap() <= 0.25,
        "hypothesis fit calibration drifted: {}",
        rig.fit.report.render()
    );

    // Seed the highest-weight dead-regulator fault from the library.
    let entry = grid::grid_library()
        .entries()
        .iter()
        .find(|e| e.tag() == "reg1:dead")
        .expect("catalogue has reg1:dead")
        .clone();
    let device = grid::device_for_entry(&rig.circuit, &entry, 9001).expect("device fabricates");
    let noise = grid::noise_for_entry(&entry);
    let (outcome, trace, top) =
        grid::diagnose_device(&rig, &device, &noise, 77).expect("closed loop runs");
    assert_eq!(top, "reg1:dead", "the seeded fault wins the posterior");
    assert!(outcome.tests_used() >= 1);
    assert!(!trace.steps.is_empty());
    // Every step chose among the full grid menu.
    assert!(trace.steps[0].scores.len() >= 50);
}
