//! The PR 2 acceptance harness, extended by PR 3 to lookahead planning:
//! steady-state sequential diagnosis must perform **zero junction-tree
//! compilations and zero heap allocations** in its per-decision scoring
//! loop — both the myopic kernel and the depth-2 expectimax planner.
//!
//! A counting global allocator wraps the system allocator and tallies
//! `alloc`/`realloc` calls per thread; the compile counter lives in
//! `abbd_bbn` (also per thread). This file deliberately contains a single
//! `#[test]` so no sibling test can allocate on this thread inside the
//! measurement window.

use abbd::bbn::jointree_compile_count;
use abbd::core::fixtures::toy_sequential_engine;
use abbd::core::{CostModel, Measured, SequentialDiagnoser, StoppingPolicy, Strategy};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

/// Counts this thread's allocation events around the system allocator.
struct CountingAllocator;

thread_local! {
    static ALLOC_EVENTS: Cell<u64> = const { Cell::new(0) };
}

fn alloc_events() -> u64 {
    ALLOC_EVENTS.try_with(Cell::get).unwrap_or(0)
}

fn bump() {
    // `try_with` so a late allocation during TLS teardown cannot panic.
    let _ = ALLOC_EVENTS.try_with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_scoring_compiles_nothing_and_allocates_nothing() {
    // The shared pin/bias/load/aux fixture (abbd_core::fixtures): the
    // same model the sequential unit tests assert ordering on.
    let eng = toy_sequential_engine();
    let mut d = SequentialDiagnoser::new(&eng, StoppingPolicy::exhaustive()).unwrap();
    d.observe("pin", 1).unwrap();

    // Warm-up: the first pass may grow internal buffers to capacity.
    d.score_candidates().unwrap();
    d.score_candidates().unwrap();

    let compiles_before = jointree_compile_count();
    let allocs_before = alloc_events();
    let mut checksum = 0.0;
    for _ in 0..16 {
        let scored = d.score_candidates().unwrap();
        checksum += scored[0].expected_information_gain();
    }
    let allocs = alloc_events() - allocs_before;
    let compiles = jointree_compile_count() - compiles_before;

    assert!(checksum.is_finite() && checksum > 0.0);
    assert_eq!(
        compiles, 0,
        "steady-state VOI scoring must reuse the compiled junction tree"
    );
    assert_eq!(
        allocs, 0,
        "steady-state VOI scoring must not touch the heap ({allocs} allocation events in 16 decisions)"
    );

    // Depth-2 lookahead planning: the expectimax recursion stacks
    // hypothetical outcomes through per-level preallocated workspaces, so
    // its steady state must match the myopic contract — zero junction-tree
    // compilations, zero heap allocations. Construction and strategy
    // switching (which builds the planner) happen before the window.
    let mut d2 = SequentialDiagnoser::new(&eng, StoppingPolicy::exhaustive()).unwrap();
    d2.set_strategy(Strategy::Lookahead { depth: 2 }).unwrap();
    d2.set_cost_model(CostModel::unit()).unwrap();
    d2.observe("pin", 1).unwrap();
    d2.score_candidates().unwrap();
    d2.score_candidates().unwrap();

    let compiles_before = jointree_compile_count();
    let allocs_before = alloc_events();
    let mut checksum = 0.0;
    for _ in 0..8 {
        let scored = d2.score_candidates().unwrap();
        checksum += scored[0].expected_information_gain();
    }
    let allocs = alloc_events() - allocs_before;
    let compiles = jointree_compile_count() - compiles_before;

    assert!(checksum.is_finite() && checksum > 0.0);
    assert_eq!(
        compiles, 0,
        "steady-state depth-2 lookahead scoring must reuse the compiled junction tree"
    );
    assert_eq!(
        allocs, 0,
        "steady-state depth-2 lookahead scoring must not touch the heap ({allocs} allocation events in 8 decisions)"
    );

    // The closed loop itself stays compile-free end to end (decision
    // bookkeeping may allocate, so only the compile counter is pinned).
    let compiles_before = jointree_compile_count();
    let outcome = d
        .run(|name| {
            Ok(match name {
                "out1" | "out2" => Measured::failing(0),
                _ => Measured::passing(1),
            })
        })
        .unwrap();
    assert_eq!(outcome.diagnosis.top_candidate(), Some("bias"));
    assert_eq!(
        jointree_compile_count() - compiles_before,
        0,
        "the closed loop must never recompile"
    );

    // ... and so does the lookahead closed loop.
    let compiles_before = jointree_compile_count();
    let outcome = d2
        .run(|name| {
            Ok(match name {
                "out1" | "out2" => Measured::failing(0),
                _ => Measured::passing(1),
            })
        })
        .unwrap();
    assert_eq!(outcome.diagnosis.top_candidate(), Some("bias"));
    assert_eq!(
        jointree_compile_count() - compiles_before,
        0,
        "the lookahead closed loop must never recompile"
    );
}
