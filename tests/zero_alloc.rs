//! The PR 2 acceptance harness, extended by PR 3 to lookahead planning
//! and re-pointed by PR 4 at the unified session facade: steady-state
//! decisions through `DiagnosisSession::rank_actions` must perform
//! **zero junction-tree compilations and zero heap allocations** — both
//! the myopic kernel and the depth-2 expectimax planner, including a
//! *mixed* test-plus-probe candidate set.
//!
//! A counting global allocator wraps the system allocator and tallies
//! `alloc`/`realloc` calls per thread; the compile counter lives in
//! `abbd_bbn` (also per thread). This file deliberately contains a single
//! `#[test]` so no sibling test can allocate on this thread inside the
//! measurement window.

use abbd::bbn::jointree_compile_count;
use abbd::core::fixtures::toy_compiled_model;
use abbd::core::{
    Action, CostModel, DiagnosisSession, HierarchicalSession, Outcome, StoppingPolicy, Strategy,
};
use abbd::designs::board::{self, BoardConfig};
use abbd::designs::regulator::grid;
use abbd::scenarios::McFitConfig;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::Arc;

/// Counts this thread's allocation events around the system allocator.
struct CountingAllocator;

thread_local! {
    static ALLOC_EVENTS: Cell<u64> = const { Cell::new(0) };
}

fn alloc_events() -> u64 {
    ALLOC_EVENTS.try_with(Cell::get).unwrap_or(0)
}

fn bump() {
    // `try_with` so a late allocation during TLS teardown cannot panic.
    let _ = ALLOC_EVENTS.try_with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_scoring_compiles_nothing_and_allocates_nothing() {
    // The shared pin/bias/load/aux fixture (abbd_core::fixtures): the
    // same model the sequential unit tests assert ordering on, compiled
    // once and shared by every session below.
    let compiled = toy_compiled_model();
    let mut d = DiagnosisSession::new(Arc::clone(&compiled), StoppingPolicy::exhaustive()).unwrap();
    d.observe("pin", 1).unwrap();
    // The steady-state contract covers the *mixed* candidate set: two
    // electrical tests and one physical probe ranked in one list.
    d.set_actions([
        Action::test("out1"),
        Action::test("out2"),
        Action::probe("aux"),
    ])
    .unwrap();

    // Warm-up: the first pass may grow internal buffers to capacity.
    d.rank_actions().unwrap();
    d.rank_actions().unwrap();

    let compiles_before = jointree_compile_count();
    let allocs_before = alloc_events();
    let mut checksum = 0.0;
    for _ in 0..16 {
        let scored = d.rank_actions().unwrap();
        checksum += scored[0].expected_information_gain();
    }
    let allocs = alloc_events() - allocs_before;
    let compiles = jointree_compile_count() - compiles_before;

    assert!(checksum.is_finite() && checksum > 0.0);
    assert_eq!(
        compiles, 0,
        "steady-state VOI scoring must reuse the compiled junction tree"
    );
    assert_eq!(
        allocs, 0,
        "steady-state VOI scoring must not touch the heap ({allocs} allocation events in 16 decisions)"
    );

    // Depth-2 lookahead planning: the expectimax recursion stacks
    // hypothetical outcomes through per-level preallocated workspaces, so
    // its steady state must match the myopic contract — zero junction-tree
    // compilations, zero heap allocations. Construction and strategy
    // switching (which builds the planner) happen before the window.
    let mut d2 =
        DiagnosisSession::new(Arc::clone(&compiled), StoppingPolicy::exhaustive()).unwrap();
    d2.set_strategy(Strategy::Lookahead { depth: 2 }).unwrap();
    d2.set_cost_model(CostModel::unit()).unwrap();
    d2.observe("pin", 1).unwrap();
    d2.rank_actions().unwrap();
    d2.rank_actions().unwrap();

    let compiles_before = jointree_compile_count();
    let allocs_before = alloc_events();
    let mut checksum = 0.0;
    for _ in 0..8 {
        let scored = d2.rank_actions().unwrap();
        checksum += scored[0].expected_information_gain();
    }
    let allocs = alloc_events() - allocs_before;
    let compiles = jointree_compile_count() - compiles_before;

    assert!(checksum.is_finite() && checksum > 0.0);
    assert_eq!(
        compiles, 0,
        "steady-state depth-2 lookahead scoring must reuse the compiled junction tree"
    );
    assert_eq!(
        allocs, 0,
        "steady-state depth-2 lookahead scoring must not touch the heap ({allocs} allocation events in 8 decisions)"
    );

    // The closed loop itself stays compile-free end to end (decision
    // bookkeeping may allocate, so only the compile counter is pinned).
    let compiles_before = jointree_compile_count();
    let dead_bias = |action: &Action| {
        Ok(match action.target() {
            "out1" | "out2" => Outcome::failing(0),
            _ => Outcome::passing(1),
        })
    };
    let outcome = d.run(dead_bias).unwrap();
    assert_eq!(outcome.diagnosis.top_candidate(), Some("bias"));
    assert_eq!(
        jointree_compile_count() - compiles_before,
        0,
        "the closed loop must never recompile"
    );

    // ... and so does the lookahead closed loop.
    let compiles_before = jointree_compile_count();
    let outcome = d2.run(dead_bias).unwrap();
    assert_eq!(outcome.diagnosis.top_candidate(), Some("bias"));
    assert_eq!(
        jointree_compile_count() - compiles_before,
        0,
        "the lookahead closed loop must never recompile"
    );

    // The hierarchy's steady state (PR 7): descending into a block of a
    // synthetic board pays exactly one junction-tree compile — the lazy
    // sub-model extraction — and after that the descended session's
    // decision loop inherits the full contract: zero compilations, zero
    // heap allocations per ranking.
    let config = BoardConfig {
        blocks: 3,
        seed: 2010,
    };
    let hierarchy = board::hierarchy(&config).unwrap().shared();
    let mut h = HierarchicalSession::new(hierarchy, StoppingPolicy::exhaustive()).unwrap();
    h.observe("vin", 1).unwrap();
    h.observe("vload", 0).unwrap();
    h.observe("out00", 1).unwrap();
    h.observe("out01", 0).unwrap();
    h.mark_failing("out01");
    h.observe("out02", 1).unwrap();

    let compiles_before = jointree_compile_count();
    h.descend(1).unwrap();
    assert_eq!(
        jointree_compile_count() - compiles_before,
        1,
        "descent compiles the block sub-model exactly once"
    );

    // Warm-up, then the pinned window.
    h.rank_actions().unwrap();
    h.rank_actions().unwrap();
    let compiles_before = jointree_compile_count();
    let allocs_before = alloc_events();
    let mut checksum = 0.0;
    for _ in 0..16 {
        let scored = h.rank_actions().unwrap();
        checksum += scored[0].expected_information_gain();
    }
    let allocs = alloc_events() - allocs_before;
    let compiles = jointree_compile_count() - compiles_before;

    assert!(checksum.is_finite() && checksum > 0.0);
    assert_eq!(
        compiles, 0,
        "descended steady-state scoring must reuse the cached block sub-model"
    );
    assert_eq!(
        allocs, 0,
        "descended steady-state scoring must not touch the heap ({allocs} allocation events in 16 decisions)"
    );

    // The stimulus-grid menu (PR 10): cost-weighted ranking over the
    // regulator grid's full 60-candidate family — suite-switch pricing
    // and all — inherits the same contract. The Monte-Carlo fit runs at
    // a reduced sample count here (the model's *shape* — 22 hypothesis
    // states × 60 observables — is what the pin exercises, not the CPT
    // values).
    let rig = grid::grid_rig_with(&McFitConfig {
        samples: 4,
        ..McFitConfig::default()
    })
    .unwrap();
    let mut g = DiagnosisSession::new(Arc::clone(&rig.compiled), grid::grid_policy()).unwrap();
    g.set_strategy(Strategy::CostWeighted).unwrap();
    g.set_cost_model(rig.program.cost_model(grid::GRID_PROBE_SECONDS).unwrap())
        .unwrap();
    let actions = rig.program.actions();
    assert!(actions.len() >= 50, "the grid menu is ≥50 candidates");
    g.set_actions(actions).unwrap();

    g.rank_actions().unwrap();
    g.rank_actions().unwrap();
    let compiles_before = jointree_compile_count();
    let allocs_before = alloc_events();
    let mut checksum = 0.0;
    for _ in 0..8 {
        let scored = g.rank_actions().unwrap();
        checksum += scored[0].expected_information_gain();
    }
    let allocs = alloc_events() - allocs_before;
    let compiles = jointree_compile_count() - compiles_before;

    assert!(checksum.is_finite() && checksum > 0.0);
    assert_eq!(
        compiles, 0,
        "60-candidate grid scoring must reuse the compiled junction tree"
    );
    assert_eq!(
        allocs, 0,
        "60-candidate grid scoring must not touch the heap ({allocs} allocation events in 8 decisions)"
    );
}
