//! The golden-trace conformance corpus: full adaptive decision traces —
//! every candidate's score at every step, the chosen measurement, the
//! oracle's answer and the posterior fault mass after absorbing it — for
//! the paper's d1–d3 case studies and a seeded 16-device cross-suite
//! population, under all three selection strategies.
//!
//! The corpus lives in `tests/golden/*.json`. This test regenerates every
//! trace in-memory and diffs it byte-for-byte against the stored file, so
//! *any* behavioural change in the VOI kernel, the lookahead planner, the
//! cost model, the stopping logic or the deduction layer shows up as an
//! exact, reviewable JSON diff instead of a silently drifting plan.
//!
//! To bless an intentional change:
//!
//! ```text
//! ABBD_REGEN_GOLDEN=1 cargo test --test golden_traces
//! ```
//!
//! then review the diff like any other code change.

use abbd::core::{
    CostModel, DecisionTrace, DiagnosisSession, DiagnosticEngine, GoldenCorpus,
    HierarchicalSession, HierarchicalTrace, StoppingPolicy, Strategy,
};
use abbd::designs::board::{self, BoardConfig};
use abbd::designs::regulator::adaptive::{
    cross_suite_population, reference_cost_model, summarize_cross_suite, traced_case_study,
    CrossSuiteReport,
};
use abbd::designs::regulator::{self, cases::case_studies, grid};
use abbd::scenarios::{sample_model_population, scenario_executor, FaultKind, FaultLibrary};
use std::path::Path;
use std::sync::Arc;

/// The corpus strategies: file-name tag, strategy, and the cost model the
/// scenario prices measurements with. Lookahead runs under unit costs —
/// it is the *pure planning* reference (the population scenario exercises
/// its cost-aware form), and under unit costs its depth-2 decisions are
/// directly comparable to the myopic baseline.
fn strategies() -> [(&'static str, Strategy, CostModel); 3] {
    [
        ("myopic", Strategy::Myopic, reference_cost_model()),
        (
            "cost_weighted",
            Strategy::CostWeighted,
            reference_cost_model(),
        ),
        (
            "lookahead2",
            Strategy::Lookahead { depth: 2 },
            CostModel::unit(),
        ),
    ]
}

fn engine() -> DiagnosticEngine {
    // The same quick EM fit the adaptive scenario tests pin their
    // assertions on: deterministic for the fixed seed.
    regulator::fit(
        24,
        42,
        abbd::core::LearnAlgorithm::Em(abbd::bbn::learn::EmConfig {
            max_iterations: 8,
            tolerance: 1e-4,
        }),
    )
    .expect("regulator pipeline runs")
    .engine
}

/// The corpus handle: byte-for-byte conformance (or `ABBD_REGEN_GOLDEN=1`
/// regeneration) via the shared [`abbd::core::conformance`]
/// implementation — the same code the server-side refit gate reports
/// mismatches through.
fn corpus() -> GoldenCorpus {
    GoldenCorpus::new(Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden"))
}

#[test]
fn golden_traces_replay_exactly() {
    let corpus = corpus();
    let engine = engine();
    let policy = StoppingPolicy::default();
    let mut mismatches: Vec<String> = Vec::new();

    // d1–d3 case-study traces under every strategy.
    let cases = case_studies();
    let mut tests_used: Vec<Vec<usize>> = Vec::new();
    for case in &cases[..3] {
        let mut per_case = Vec::new();
        for (tag, strategy, cost) in strategies() {
            let (outcome, trace) =
                traced_case_study(&engine, case, policy, strategy, cost).expect("case study runs");
            per_case.push(outcome.tests_used());
            let mut rendered = serde_json::to_string_pretty(&trace).expect("traces serialise");
            rendered.push('\n');
            let name = format!("{}_{}.json", case.id, tag);
            if let Some(m) = corpus.conform(&name, &rendered) {
                mismatches.push(m);
            } else if !corpus.regenerating() {
                // The stored corpus must also round-trip through the
                // typed representation (pins the serde layer itself).
                let stored = std::fs::read_to_string(corpus.path(&name)).unwrap();
                let parsed: DecisionTrace =
                    serde_json::from_str(&stored).expect("golden trace parses");
                assert_eq!(parsed, trace, "{name}: parsed trace differs from replay");
            }
        }
        tests_used.push(per_case);
    }
    // The acceptance facts ride in the corpus: depth-2 lookahead needs no
    // more measurements than myopic on d1 and d3.
    for (case_idx, case_id) in [(0usize, "d1"), (2, "d3")] {
        let myopic = tests_used[case_idx][0];
        let lookahead = tests_used[case_idx][2];
        assert!(
            lookahead <= myopic,
            "{case_id}: lookahead {lookahead} > myopic {myopic}"
        );
    }

    // The seeded 16-device cross-suite population under every strategy.
    let mut switches = Vec::new();
    for (tag, strategy, _) in strategies() {
        let run =
            cross_suite_population(&engine, 16, 2024, policy, strategy, &reference_cost_model())
                .expect("population scenario runs");
        assert!(
            run.skipped.is_empty(),
            "the golden population diagnoses every device"
        );
        let reports: Vec<CrossSuiteReport> = run.reports;
        let summary = summarize_cross_suite(strategy, &reports);
        switches.push(summary.stimulus_switches);
        let mut rendered = serde_json::to_string_pretty(&reports).expect("reports serialise");
        rendered.push('\n');
        if let Some(m) = corpus.conform(&format!("population16_{tag}.json"), &rendered) {
            mismatches.push(m);
        }
        let mut summary_rendered =
            serde_json::to_string_pretty(&summary).expect("summary serialises");
        summary_rendered.push('\n');
        if let Some(m) = corpus.conform(
            &format!("population16_{tag}_summary.json"),
            &summary_rendered,
        ) {
            mismatches.push(m);
        }
    }
    // ... and cost-weighted arbitration strictly reduces suite switches.
    assert!(
        switches[1] < switches[0],
        "cost-weighted switches {} must be strictly below myopic {}",
        switches[1],
        switches[0]
    );

    assert!(
        mismatches.is_empty(),
        "golden traces diverged:\n  {}\nIf the change is intentional, regenerate with \
         `ABBD_REGEN_GOLDEN=1 cargo test --test golden_traces` and review the JSON diff.",
        mismatches.join("\n  ")
    );
}

/// The scenario-engine corpus entries (PR 10): library-generated
/// labelled fleets for both reference designs (mixed fault modes —
/// dead, drift, stuck-at, short — drawn from one weighted catalogue),
/// the closed-loop decision trace a sampled regulator scenario produces,
/// and the 60-candidate stimulus-grid trace. Byte-for-byte conformance
/// pins the samplers (seed → fleet), the generic scenario oracle, and
/// the grid loop's suite-switch-priced decisions in one reviewable
/// artefact set.
#[test]
fn scenario_goldens_replay_exactly() {
    let corpus = corpus();
    let mut mismatches: Vec<String> = Vec::new();

    // The regulator fleet: the full 19-entry catalogue (dead, gain
    // drift, stuck-at, short modes) under the d1 stimulus.
    let rig = regulator::rig();
    let reg_model = abbd::core::ModelBuilder::new(rig.model)
        .with_expert(rig.expert)
        .build_expert_only()
        .expect("expert-only regulator model builds");
    let controls: Vec<(String, usize)> = case_studies()[0]
        .controls
        .iter()
        .map(|&(name, state)| (name.to_string(), state))
        .collect();
    let reg_fleet = sample_model_population(
        &reg_model,
        &regulator::faults::fault_library(),
        &controls,
        12,
        2010,
    )
    .expect("regulator fleet samples");
    let modes: std::collections::BTreeSet<&str> = reg_fleet
        .iter()
        .filter_map(|s| s.fault.as_ref())
        .filter_map(|f| f.tag.split(':').nth(1))
        .collect();
    assert!(modes.len() >= 2, "the fleet mixes fault modes: {modes:?}");
    let mut rendered = serde_json::to_string_pretty(&reg_fleet).expect("fleets serialise");
    rendered.push('\n');
    if let Some(m) = corpus.conform("scenario_population_regulator.json", &rendered) {
        mismatches.push(m);
    }

    // The 100-variable board fleet: same API, different model and
    // library.
    let config = BoardConfig::default();
    let board_model = board::flat_model(&config).expect("board model builds");
    let board_library: FaultLibrary = [
        ("drv00", FaultKind::Dead, 2.0),
        ("bg03", FaultKind::Dead, 1.0),
        ("drv07", FaultKind::Dead, 1.5),
        ("bias11", FaultKind::Dead, 0.5),
        ("reg_s05", FaultKind::Dead, 1.0),
    ]
    .into_iter()
    .collect();
    let board_controls = vec![("vin".to_string(), 1), ("vload".to_string(), 0)];
    let board_fleet =
        sample_model_population(&board_model, &board_library, &board_controls, 6, 2010)
            .expect("board fleet samples");
    let mut rendered = serde_json::to_string_pretty(&board_fleet).expect("fleets serialise");
    rendered.push('\n');
    if let Some(m) = corpus.conform("scenario_population_board.json", &rendered) {
        mismatches.push(m);
    }

    // The generic oracle closing the loop on a sampled regulator
    // scenario: the decision stream is corpus-pinned like the hand-built
    // case studies.
    let compiled = abbd::core::CompiledModel::compile(reg_model)
        .expect("regulator model compiles")
        .shared();
    let scenario = &reg_fleet[0];
    let mut session = DiagnosisSession::new(Arc::clone(&compiled), StoppingPolicy::default())
        .expect("session opens");
    for (name, state) in &controls {
        session.observe(name, *state).expect("controls observe");
    }
    let (_, trace) = session
        .run_traced(scenario_executor(
            compiled.model().circuit_model(),
            scenario,
        ))
        .expect("scenario loop runs");
    let mut rendered = serde_json::to_string_pretty(&trace).expect("traces serialise");
    rendered.push('\n');
    let name = "scenario_regulator_trace.json";
    if let Some(m) = corpus.conform(name, &rendered) {
        mismatches.push(m);
    } else if !corpus.regenerating() {
        let stored = std::fs::read_to_string(corpus.path(name)).unwrap();
        let parsed: DecisionTrace = serde_json::from_str(&stored).expect("golden trace parses");
        assert_eq!(parsed, trace, "{name}: parsed trace differs from replay");
    }

    // The stimulus-grid loop: a catalogue fault diagnosed against the
    // noise-calibrated hypothesis model over the full 60-candidate menu.
    let rig = grid::grid_rig().expect("grid rig builds");
    let entry = grid::grid_library()
        .entries()
        .iter()
        .find(|e| e.tag() == "reg1:dead")
        .expect("catalogue has reg1:dead")
        .clone();
    let device = grid::device_for_entry(&rig.circuit, &entry, 9001).expect("device fabricates");
    let noise = grid::noise_for_entry(&entry);
    let (_, trace, top) = grid::diagnose_device(&rig, &device, &noise, 77).expect("grid loop runs");
    assert_eq!(top, "reg1:dead", "the grid loop isolates the seeded fault");
    assert!(
        trace.steps.first().is_some_and(|s| s.scores.len() >= 50),
        "the first decision ranks the whole grid menu"
    );
    let mut rendered = serde_json::to_string_pretty(&trace).expect("traces serialise");
    rendered.push('\n');
    let name = "scenario_grid_trace.json";
    if let Some(m) = corpus.conform(name, &rendered) {
        mismatches.push(m);
    } else if !corpus.regenerating() {
        let stored = std::fs::read_to_string(corpus.path(name)).unwrap();
        let parsed: DecisionTrace = serde_json::from_str(&stored).expect("golden trace parses");
        assert_eq!(parsed, trace, "{name}: parsed trace differs from replay");
    }

    assert!(
        mismatches.is_empty(),
        "scenario goldens diverged:\n  {}\nIf the change is intentional, regenerate with \
         `ABBD_REGEN_GOLDEN=1 cargo test --test golden_traces` and review the JSON diff.",
        mismatches.join("\n  ")
    );
}

/// The hierarchical corpus entry (PR 7): a 4-block synthetic board run
/// through the two-phase loop — board-level rounds on the abstract root,
/// the descent decision, and the block-level rounds inside the extracted
/// sub-model — captured as one `HierarchicalTrace` and replayed
/// byte-for-byte. Pins the descent *policy* (when the session drops a
/// level and into which block) alongside the per-level decision streams.
#[test]
fn hierarchical_board_trace_replays_exactly() {
    let config = BoardConfig {
        blocks: 4,
        seed: 2010,
    };
    let hierarchy = board::hierarchy(&config)
        .expect("board hierarchy builds")
        .shared();
    let scenario = board::d1_scenario(&config, 2);
    let mut session = HierarchicalSession::new(Arc::clone(&hierarchy), StoppingPolicy::default())
        .expect("session opens");
    session.observe("vin", 1).expect("vin");
    session.observe("vload", 0).expect("vload");
    let (outcome, trace) = session
        .run_traced(board::scenario_executor(&scenario))
        .expect("two-phase loop runs");
    assert_eq!(trace.descended.as_deref(), Some("reg02"));
    assert_eq!(outcome.diagnosis.top_candidate(), Some("drv02"));

    let corpus = corpus();
    let mut rendered = serde_json::to_string_pretty(&trace).expect("trace serialises");
    rendered.push('\n');
    let name = "board4_hierarchical.json";
    if let Some(mismatch) = corpus.conform(name, &rendered) {
        panic!(
            "{mismatch}\nIf the change is intentional, regenerate with \
             `ABBD_REGEN_GOLDEN=1 cargo test --test golden_traces` and review the JSON diff."
        );
    }
    if !corpus.regenerating() {
        // The stored corpus must round-trip through the typed
        // representation (pins the hierarchy serde layer itself).
        let stored = std::fs::read_to_string(corpus.path(name)).unwrap();
        let parsed: HierarchicalTrace =
            serde_json::from_str(&stored).expect("golden hierarchical trace parses");
        assert_eq!(parsed, trace, "{name}: parsed trace differs from replay");
    }
}
