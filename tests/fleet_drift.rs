//! End-to-end fleet drift scenario: a model fitted on the bring-up
//! defect mix degrades when the fleet's defect mix shifts, the trace
//! aggregator collects the drifted returns, a gated refit promotes a
//! corrected model, and isolation accuracy on fleet traffic recovers to
//! (here: beyond) the level of a model fitted fresh on the drifted
//! data. A corrupted candidate pushed through the same gate is rejected
//! with a structured reason and never serves.
//!
//! The conformance corpus pins the four Table VI case studies whose
//! verdict is *evidence*-determined (d1–d4). The fifth, d5, is a prior
//! tie — `enbsw` dead and `sw` dead are observationally identical in
//! the enabled suites, and bring-up priors broke the tie toward the
//! enable gate — so its verdict is exactly what fleet learning is
//! supposed to move; pinning it would freeze the bring-up prior
//! forever. The test asserts its flip instead.

use abbd::bbn::learn::EmConfig;
use abbd::core::conformance::{self, self_references, ReplayCase};
use abbd::core::{
    compile_candidate, DiagnosticEngine, GateRejection, LearnAlgorithm, ModelBuilder,
    ModelLifecycle, Observation, RefitPolicy,
};
use abbd::designs::regulator::{self, drift};
use std::sync::Arc;

fn quick_em() -> LearnAlgorithm {
    LearnAlgorithm::Em(EmConfig {
        max_iterations: 8,
        tolerance: 1e-4,
    })
}

fn case_study_observation(id: &str) -> Observation {
    let case = regulator::cases::case_studies()
        .into_iter()
        .find(|c| c.id == id)
        .expect("case study exists");
    let mut observation = Observation::new();
    for &(name, state) in case.controls.iter().chain(case.observables.iter()) {
        observation.set(name, state);
    }
    observation
}

/// Observations for the evidence-determined Table VI case studies — the
/// conformance corpus a refit candidate must still isolate correctly.
fn reference_scenarios() -> Vec<(String, Observation)> {
    ["d1", "d2", "d3", "d4"]
        .iter()
        .map(|id| (id.to_string(), case_study_observation(id)))
        .collect()
}

/// Mean log-likelihood of the drifted cases under `compiled` — the same
/// quantity the refit gate scores on its holdout ring.
fn mean_log_likelihood(
    compiled: &Arc<abbd::core::CompiledModel>,
    cases: &[abbd::dlog2bbn::NamedCase],
) -> f64 {
    let mut sum = 0.0;
    let mut scored = 0usize;
    for case in cases {
        let reference = ReplayCase {
            name: String::new(),
            observation: Observation::from(case),
            expected_top: None,
        };
        if let Ok(outcome) = conformance::replay(compiled, &reference) {
            if outcome.log_likelihood.is_finite() {
                sum += outcome.log_likelihood;
                scored += 1;
            }
        }
    }
    assert!(scored > 0, "some drifted cases must be scoreable");
    sum / scored as f64
}

#[test]
fn drifted_fleet_refit_recovers_isolation_accuracy() {
    let rig = regulator::rig();

    // The bring-up snapshot: fitted on the nominal defect mix.
    let stale = regulator::fit(24, 42, quick_em()).expect("stale fit");
    let stale_compiled = Arc::clone(stale.engine.compiled());

    // The fleet drifts: a process excursion floods the returns with
    // `sw` driver defects. One population feeds the aggregator, a
    // disjoint one scores accuracy, and a nominal-mix population shows
    // what the stale model was good at.
    let train = drift::synthesize_drifted(&rig, 64, 777, 10_000).expect("drifted train");
    let eval = drift::synthesize_drifted(&rig, 32, 888, 50_000).expect("drifted eval");
    let nominal = regulator::synthesize(16, 999, 90_000).expect("nominal eval");

    let stale_nominal_acc = drift::isolation_accuracy(&stale_compiled, &nominal.cases);
    let stale_drift_acc = drift::isolation_accuracy(&stale_compiled, &eval.cases);
    assert!(
        stale_drift_acc < stale_nominal_acc - 0.15,
        "drift must hurt the stale model on fleet traffic: \
         {stale_drift_acc:.3} drifted vs {stale_nominal_acc:.3} nominal"
    );

    // Baseline: re-running the bring-up pipeline on the drifted traces.
    let fresh_model = ModelBuilder::new(rig.model.clone())
        .with_expert(rig.expert.clone())
        .learn(&train.cases, quick_em())
        .expect("fresh fit");
    let fresh = DiagnosticEngine::new(fresh_model).expect("fresh engine");
    let fresh_acc = drift::isolation_accuracy(fresh.compiled(), &eval.cases);

    // The lifecycle: stale model active, evidence-determined case
    // studies as conformance references, drifted traces aggregated with
    // observed tester time.
    let references =
        self_references(&stale_compiled, reference_scenarios()).expect("reference corpus");
    let lc = ModelLifecycle::new(
        "regulator",
        Arc::clone(&stale_compiled),
        references,
        RefitPolicy::default(),
    )
    .shared();
    for case in &train.cases {
        lc.aggregator()
            .record(&Observation::from(case), &[("sw".to_string(), 0.25)]);
    }
    assert_eq!(lc.aggregator().rows(), train.cases.len() as u64);
    assert!(lc.due(), "a full drifted population is worth a refit");

    // Refit, gate, hot-swap.
    let report = lc.refit();
    assert!(
        report.promoted,
        "gate must pass a legitimate drift refit: {:?}",
        report.rejection.map(|r| r.to_string())
    );
    assert_eq!(report.version, Some(2));
    assert_eq!(lc.active_version(), 2);
    assert_eq!(report.references_checked, 4);
    assert!(report.holdout_cases > 0, "holdout ring was fed");
    let cost_model = lc.learned_cost_model().expect("observed tester seconds");
    assert!((cost_model.cost_of("sw", false) - 0.25).abs() < 1e-9);

    // Isolation accuracy on fleet traffic recovers — at least to the
    // fresh-fit baseline, and materially above the stale model.
    let refit = lc.active();
    let refit_drift_acc = drift::isolation_accuracy(&refit, &eval.cases);
    assert!(
        refit_drift_acc >= fresh_acc - 0.05,
        "refit must reach the fresh-fit baseline: refit {refit_drift_acc:.3} \
         vs fresh {fresh_acc:.3}"
    );
    assert!(
        refit_drift_acc > stale_drift_acc + 0.10,
        "refit must recover materially: refit {refit_drift_acc:.3} \
         vs stale {stale_drift_acc:.3}"
    );
    // ...without giving back the nominal-mix competence.
    let refit_nominal_acc = drift::isolation_accuracy(&refit, &nominal.cases);
    assert!(
        refit_nominal_acc >= stale_nominal_acc - 0.05,
        "refit must not regress on the old mix: {refit_nominal_acc:.3} \
         vs {stale_nominal_acc:.3}"
    );
    // The distribution fit improves the way the holdout gate scores it.
    let stale_ll = mean_log_likelihood(&stale_compiled, &eval.cases);
    let refit_ll = mean_log_likelihood(&refit, &eval.cases);
    assert!(
        refit_ll > stale_ll + 1.0,
        "refit must explain the drifted fleet better: {refit_ll:.3} \
         vs {stale_ll:.3} nats"
    );

    // The unpinned prior tie moved: d5's lone `sw_out` failure no
    // longer convicts the enable gate.
    let d5 = ReplayCase {
        name: "d5".into(),
        observation: case_study_observation("d5"),
        expected_top: None,
    };
    let d5_stale = conformance::replay(&stale_compiled, &d5).expect("stale replay");
    let d5_refit = conformance::replay(&refit, &d5).expect("refit replay");
    assert_eq!(d5_stale.top_candidate.as_deref(), Some("enbsw"));
    assert_ne!(
        d5_refit.top_candidate.as_deref(),
        Some("enbsw"),
        "fleet learning must move the d5 prior tie"
    );

    // Rollback re-activates the stale compile without recompiling...
    assert_eq!(lc.activate(1).expect("rollback"), 1);
    assert!(Arc::ptr_eq(&lc.active(), &stale_compiled));
    // ...and roll-forward restores the refit verbatim.
    assert_eq!(lc.activate(2).expect("roll forward"), 2);
    assert_eq!(
        drift::isolation_accuracy(&lc.active(), &eval.cases),
        refit_drift_acc
    );
}

#[test]
fn corrupted_candidate_never_serves() {
    let rig = regulator::rig();
    let stale = regulator::fit(24, 42, quick_em()).expect("stale fit");
    let stale_compiled = Arc::clone(stale.engine.compiled());
    let references =
        self_references(&stale_compiled, reference_scenarios()).expect("reference corpus");
    let lc = ModelLifecycle::new(
        "regulator",
        Arc::clone(&stale_compiled),
        references,
        RefitPolicy::default(),
    );
    let train = drift::synthesize_drifted(&rig, 8, 777, 10_000).expect("drifted train");
    for case in &train.cases {
        lc.aggregator().record(&Observation::from(case), &[]);
    }

    // Reverse every CPT row: structurally valid, maximally wrong.
    let mut net = stale_compiled.model().network().clone();
    for v in stale_compiled.model().network().variables() {
        let card = stale_compiled.model().network().card(v);
        let scrambled: Vec<f64> = stale_compiled
            .model()
            .network()
            .cpt(v)
            .chunks(card)
            .flat_map(|row| row.iter().rev().copied().collect::<Vec<_>>())
            .collect();
        net.set_cpt_values(v, scrambled).unwrap();
    }
    let candidate = compile_candidate(&stale_compiled, net).expect("compiles");

    let report = lc.submit(candidate, "nightly-batch");
    assert!(!report.promoted, "gate must reject the corrupted candidate");
    let rejection = report.rejection.expect("structured reason");
    assert!(
        matches!(
            rejection,
            GateRejection::ReferenceMismatch { .. } | GateRejection::HoldoutRegression { .. }
        ),
        "unexpected rejection: {rejection}"
    );
    assert_eq!(lc.active_version(), 1, "incumbent keeps serving");
    assert!(Arc::ptr_eq(&lc.active(), &stale_compiled));
    assert_eq!(lc.refits_rejected(), 1);
}
