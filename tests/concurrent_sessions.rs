//! The share-once/serve-many acceptance harness: one `CompiledModel`
//! behind an `Arc`, N threads each running an independent
//! `DiagnosisSession` on it, and three pins —
//!
//! 1. the junction tree is compiled exactly **once** (the thread-local
//!    `jointree_compile_count` stays at 1 on the compiling thread and at
//!    0 on every serving thread);
//! 2. every concurrent session's ranking, closed loop and final
//!    posteriors are **bit-identical** to the same session run
//!    sequentially on the same thread as the compilation;
//! 3. the artifact actually crosses threads as `Send + Sync` (this file
//!    would not compile otherwise).

use abbd::bbn::jointree_compile_count;
use abbd::core::fixtures::toy_compiled_model;
use abbd::core::{
    Action, CompiledModel, DiagnosisSession, Outcome, SequentialOutcome, StoppingPolicy,
};
use std::sync::Arc;
use std::thread;

/// One device's complete serving transcript, built to be comparable with
/// `==` (floats included: bit-identity is the claim, not approximation).
#[derive(Debug, PartialEq)]
struct Transcript {
    gains: Vec<(String, f64, f64, f64)>,
    applied: Vec<(String, usize, bool)>,
    stop: abbd::core::StopReason,
    top: Option<String>,
    posteriors: Vec<(String, Vec<f64>)>,
    log_likelihood: f64,
}

/// Runs one full session for device `i` on the shared compilation:
/// seed the control, rank the mixed candidate set once, then close the
/// loop against a device whose outputs are a function of `i`.
fn serve_device(compiled: &Arc<CompiledModel>, i: usize) -> Transcript {
    let mut session =
        DiagnosisSession::new(Arc::clone(compiled), StoppingPolicy::exhaustive()).unwrap();
    session.observe("pin", i % 2).unwrap();
    session
        .set_actions([
            Action::test("out1"),
            Action::test("out2"),
            Action::test("out3"),
            Action::probe("aux"),
        ])
        .unwrap();
    let gains = session
        .rank_actions()
        .unwrap()
        .iter()
        .map(|c| {
            (
                c.name().to_string(),
                c.expected_information_gain(),
                c.cost(),
                c.score(),
            )
        })
        .collect();
    let outcome: SequentialOutcome = session
        .run(|action: &Action| {
            let state = match action.target() {
                "out1" => i % 2,
                "out2" => (i / 2) % 2,
                "out3" => (i / 4) % 2,
                _ => 1,
            };
            Ok(if state == 0 {
                Outcome::failing(0)
            } else {
                Outcome::passing(1)
            })
        })
        .unwrap();
    Transcript {
        gains,
        applied: outcome
            .applied
            .iter()
            .map(|a| (a.variable.clone(), a.state, a.failing))
            .collect(),
        stop: outcome.stop,
        top: outcome.diagnosis.top_candidate().map(str::to_string),
        posteriors: outcome.diagnosis.posteriors().to_vec(),
        log_likelihood: outcome.diagnosis.log_likelihood(),
    }
}

#[test]
fn concurrent_sessions_share_one_compilation_and_agree_bit_for_bit() {
    const DEVICES: usize = 8;

    let compiles_before = jointree_compile_count();
    let compiled = toy_compiled_model();
    assert_eq!(
        jointree_compile_count() - compiles_before,
        1,
        "compiling the shared model is the one and only compilation"
    );

    // The sequential reference, on the compiling thread.
    let reference: Vec<Transcript> = (0..DEVICES).map(|i| serve_device(&compiled, i)).collect();
    assert_eq!(
        jointree_compile_count() - compiles_before,
        1,
        "sequential serving never recompiles"
    );

    // The same devices, one thread per session, all on the same Arc.
    let handles: Vec<_> = (0..DEVICES)
        .map(|i| {
            let compiled = Arc::clone(&compiled);
            thread::spawn(move || {
                let worker_compiles_before = jointree_compile_count();
                let transcript = serve_device(&compiled, i);
                assert_eq!(
                    jointree_compile_count() - worker_compiles_before,
                    0,
                    "serving threads must never compile"
                );
                transcript
            })
        })
        .collect();
    for (i, handle) in handles.into_iter().enumerate() {
        let concurrent = handle.join().expect("serving thread panicked");
        assert_eq!(
            concurrent, reference[i],
            "device {i}: concurrent session must be bit-identical to sequential"
        );
    }
    assert_eq!(
        jointree_compile_count() - compiles_before,
        1,
        "the whole concurrent run still holds the compile count at 1"
    );

    // Sanity: distinct devices genuinely produced distinct diagnoses
    // (the bit-identity above was not comparing constants).
    assert!(
        reference
            .iter()
            .any(|t| t.posteriors != reference[0].posteriors),
        "workload must vary across devices"
    );
}
