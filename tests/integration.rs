//! Cross-crate integration tests: the full paper pipeline from behavioural
//! simulation through ATE datalogs, case generation, learning and
//! diagnosis.

use abbd::ate::{parse_datalog, write_datalog};
use abbd::baselines::{accuracy_at_k, group_by_device, FaultDictionary, RandomGuess};
use abbd::core::LearnAlgorithm;
use abbd::designs::{hypothetical, regulator};
use abbd::dlog2bbn::generate_cases;

/// The headline reproduction: after the full §IV flow (70 simulated
/// customer returns), the diagnostic engine reproduces the paper's
/// candidate sets for all five Table VI case studies.
#[test]
fn regulator_reproduces_all_five_paper_case_studies() {
    let fitted = regulator::fit(70, 2010, regulator::default_algorithm()).expect("pipeline runs");
    for case in regulator::cases::case_studies() {
        let diagnosis = fitted
            .engine
            .diagnose(&case.observation())
            .expect("diagnosis");
        let mut got: Vec<&str> = diagnosis
            .candidates()
            .iter()
            .map(|c| c.variable.as_str())
            .collect();
        got.sort_unstable();
        let mut want = case.expected_candidates.to_vec();
        want.sort_unstable();
        assert_eq!(got, want, "case {}", case.id);
    }
}

/// The learned model's qualitative posteriors track the paper: in d1 the
/// high-current bandgap stays ambiguous while the supply monitor is
/// implicated; in d3 the intermediate supply exonerates the bandgap.
#[test]
fn regulator_posteriors_track_paper_shape() {
    let fitted = regulator::fit(70, 2010, regulator::default_algorithm()).expect("pipeline runs");
    let studies = regulator::cases::case_studies();
    let d1 = fitted
        .engine
        .diagnose(&studies[0].observation())
        .expect("d1");
    let d3 = fitted
        .engine
        .diagnose(&studies[2].observation())
        .expect("d3");
    let policy = fitted.engine.policy();

    // d1: hcbg ambiguous (paper 42.4%), warnvpst implicated.
    let d1_hcbg = d1.fault_mass()["hcbg"];
    assert_eq!(
        policy.classify(d1_hcbg),
        abbd::core::HealthClass::Ambiguous,
        "d1 hcbg mass {d1_hcbg}"
    );
    // d3: hcbg healthy (paper 29.1%), strictly less suspicious than in d1.
    let d3_hcbg = d3.fault_mass()["hcbg"];
    assert!(
        d3_hcbg < d1_hcbg,
        "supply asymmetry lost: {d3_hcbg} vs {d1_hcbg}"
    );
    assert_eq!(policy.classify(d3_hcbg), abbd::core::HealthClass::Healthy);
    // Both cases implicate warnvpst heavily.
    assert!(d1.fault_mass()["warnvpst"] > 0.8);
    assert!(d3.fault_mass()["warnvpst"] > 0.8);
    // lcbg is exonerated in both (reg2 keeps working).
    assert!(d1.fault_mass()["lcbg"] < 0.1);
}

/// Datalogs survive a disk round-trip and regenerate identical cases.
#[test]
fn datalog_roundtrip_preserves_cases() {
    let population = regulator::synthesize(12, 99, 0).expect("population");
    let rig = regulator::rig();
    let text = write_datalog(&population.logs);
    let parsed = parse_datalog(&text).expect("parse back");
    let (cases, stats) = generate_cases(rig.model.spec(), &rig.mapping, &parsed).expect("cases");
    assert_eq!(stats.cases, population.stats.cases);
    assert_eq!(cases, population.cases);
}

/// The Bayesian diagnosis clearly beats the random floor on held-out
/// devices, and the labelled fault dictionary (which needs ground-truth
/// labels the BBN never sees) remains an upper reference.
#[test]
fn bbn_beats_random_floor() {
    let fitted = regulator::fit(40, 2010, regulator::default_algorithm()).expect("pipeline runs");
    let test = regulator::synthesize(60, 777, 1_000_000).expect("test population");
    let sigs = group_by_device(&test.cases);

    let bbn = abbd_bench_adapter::BbnAdapter(&fitted.engine);
    let random = RandomGuess::new(regulator::model::VARIABLES.iter().copied(), 5);
    let bbn_acc = accuracy_at_k(&bbn, &sigs, 2);
    let random_acc = accuracy_at_k(&random, &sigs, 2);
    assert!(
        bbn_acc > random_acc + 0.3,
        "bbn@2 {bbn_acc} vs random@2 {random_acc}"
    );

    let train_sigs = group_by_device(&fitted.cases);
    let dictionary = FaultDictionary::train(&train_sigs);
    let dict_acc = accuracy_at_k(&dictionary, &sigs, 2);
    assert!(dict_acc > random_acc, "dictionary@2 {dict_acc}");
}

/// A miniature re-implementation of the bench crate's device adapter so
/// the root tests do not depend on the bench crate.
mod abbd_bench_adapter {
    use abbd::baselines::{DeviceSignature, Diagnoser, Ranking};
    use abbd::core::{DiagnosticEngine, Observation};
    use abbd::designs::regulator::program::{suite_plans, OBSERVED_VARS};

    pub struct BbnAdapter<'a>(pub &'a DiagnosticEngine);

    impl Diagnoser for BbnAdapter<'_> {
        fn name(&self) -> &str {
            "bbn"
        }
        fn diagnose(&self, sig: &DeviceSignature) -> Ranking {
            let mut scores: Vec<(String, f64)> = Vec::new();
            for plan in suite_plans() {
                let mut obs = Observation::new();
                let mut failing = false;
                for ((suite, var), &state) in &sig.features {
                    if suite == plan.name {
                        obs.set(var.clone(), state);
                        if let Some(oi) = OBSERVED_VARS.iter().position(|o| o == var) {
                            if state != plan.healthy_states[oi] {
                                obs.mark_failing(var.clone());
                                failing = true;
                            }
                        }
                    }
                }
                if !failing {
                    continue;
                }
                let Ok(d) = self.0.diagnose(&obs) else {
                    continue;
                };
                for c in d.candidates() {
                    match scores.iter_mut().find(|(n, _)| *n == c.variable) {
                        Some(slot) => slot.1 = slot.1.max(c.fault_mass),
                        None => scores.push((c.variable.clone(), c.fault_mass)),
                    }
                }
            }
            scores.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
            scores
        }
    }
}

/// The hypothetical circuit's pipeline diagnoses a latent bandgap failure.
#[test]
fn hypothetical_pipeline_end_to_end() {
    let fitted = hypothetical::fit(
        30,
        7,
        LearnAlgorithm::Em(abbd::bbn::learn::EmConfig {
            max_iterations: 10,
            tolerance: 1e-5,
        }),
    )
    .expect("pipeline runs");
    let mut obs = abbd::core::Observation::new();
    obs.set("block1", 2).set("block2", 1).set("block4", 0);
    obs.mark_failing("block4");
    let diagnosis = fitted.engine.diagnose(&obs).expect("diagnosis");
    assert_eq!(diagnosis.top_candidate(), Some("block3"));
}

/// Every fitted CPT stays a valid distribution after the full pipeline.
#[test]
fn fitted_networks_remain_normalised() {
    let fitted = regulator::fit(30, 11, regulator::default_algorithm()).expect("pipeline runs");
    let net = fitted.engine.model().network();
    for v in net.variables() {
        let card = net.card(v);
        for (r, row) in net.cpt(v).chunks(card).enumerate() {
            let sum: f64 = row.iter().sum();
            assert!(
                (sum - 1.0).abs() < 1e-6,
                "{} row {r} sums to {sum}",
                net.name(v)
            );
            assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }
}

/// Probe planning resolves d1's two-candidate ambiguity: the most
/// informative blocks to open are exactly the competing candidates
/// (ranked through the unified session's probe-action candidates).
#[test]
fn probe_ranking_targets_the_ambiguous_pair() {
    use abbd::core::{Action, DiagnosisSession, StoppingPolicy};
    use std::sync::Arc;

    let fitted = regulator::fit(70, 2010, regulator::default_algorithm()).expect("pipeline runs");
    let d1 = &regulator::cases::case_studies()[0];
    let mut session = DiagnosisSession::new(
        Arc::clone(fitted.engine.compiled()),
        StoppingPolicy::default(),
    )
    .expect("session opens");
    session.observe_all(&d1.observation()).expect("seeds");
    let latents: Vec<Action> = session
        .compiled()
        .latent_names()
        .map(Action::probe)
        .collect();
    session.set_actions(latents).expect("probe menu");
    let probes: Vec<(String, f64)> = session
        .rank_actions()
        .expect("probe ranking")
        .iter()
        .map(|c| (c.name().to_string(), c.expected_information_gain()))
        .collect();
    let top2: Vec<&str> = probes.iter().take(2).map(|(n, _)| n.as_str()).collect();
    assert!(
        top2.contains(&"hcbg") || top2.contains(&"warnvpst"),
        "top probes {top2:?} must include one of the competing candidates"
    );
    // Clearly exonerated blocks carry little information.
    let lcbg_gain = probes
        .iter()
        .find(|(n, _)| n == "lcbg")
        .map(|&(_, g)| g)
        .unwrap_or(0.0);
    assert!(probes[0].1 > lcbg_gain * 2.0, "{probes:?}");
}

/// Finding-impact explanation: in case d4 the always-on regulator's
/// failure (reg2 = 0) is what separates lcbg from every other hypothesis,
/// so it must be the most influential finding for the lcbg verdict.
#[test]
fn explanation_credits_the_discriminating_finding() {
    let fitted = regulator::fit(70, 2010, regulator::default_algorithm()).expect("pipeline runs");
    let d4 = &regulator::cases::case_studies()[3];
    let impacts = fitted
        .engine
        .explain(&d4.observation(), "lcbg")
        .expect("explain");
    assert_eq!(
        impacts[0].variable,
        "reg2",
        "impacts: {:?}",
        impacts
            .iter()
            .map(|i| (&i.variable, i.impact))
            .collect::<Vec<_>>()
    );
    assert!(impacts[0].impact > 0.3);
}

/// The diagnostic engine is deterministic: same pipeline, same verdicts.
#[test]
fn diagnosis_is_reproducible() {
    let a = regulator::fit(20, 3, regulator::default_algorithm()).expect("run a");
    let b = regulator::fit(20, 3, regulator::default_algorithm()).expect("run b");
    let case = &regulator::cases::case_studies()[1];
    let da = a.engine.diagnose(&case.observation()).expect("diagnosis a");
    let db = b.engine.diagnose(&case.observation()).expect("diagnosis b");
    assert_eq!(da.candidates(), db.candidates());
    assert_eq!(da.posteriors(), db.posteriors());
}
